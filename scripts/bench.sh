#!/usr/bin/env bash
# Mission-bench regression record: runs the `missions` harness and appends
# one labelled run (ms/mission per scheme + one Figure-7 sweep point) to a
# JSON file. Dependency-free — cargo plus the repo's own harness, no jq.
#
# Usage: scripts/bench.sh [label] [samples] [json-path]
#   label      stored with the run (default: "run")
#   samples    timed missions per configuration (default: 10)
#   json-path  record to append to (default: BENCH_missions.json at the root)
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-run}"
SAMPLES="${2:-10}"
JSON="${3:-BENCH_missions.json}"
# cargo runs bench binaries with the package directory as cwd; hand the
# harness an absolute path so the record lands where the caller asked.
case "$JSON" in
    /*) ;;
    *) JSON="$PWD/$JSON" ;;
esac

# Stamp the run with the current commit so re-benching the same revision
# replaces its record instead of stacking duplicates.
GIT_REV="${BENCH_GIT_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"

BENCH_LABEL="$LABEL" BENCH_SAMPLES="$SAMPLES" BENCH_JSON="$JSON" \
    BENCH_GIT_REV="$GIT_REV" \
    cargo bench -q --bench missions

# Live-wire throughput: reactor vs thread-per-route on real loopback
# sockets. Appends to the same record's "wire" section. BENCH_WIRE_FRAMES
# (frames per sender, default 100000) trades runtime for stability —
# check.sh smokes it with a small count.
BENCH_LABEL="$LABEL" BENCH_JSON="$JSON" BENCH_GIT_REV="$GIT_REV" \
    BENCH_WIRE_FRAMES="${BENCH_WIRE_FRAMES:-}" \
    cargo bench -q --bench wire

# Fleet scaling: missions/s and latency percentiles at 1/100/1k/10k
# tenants multiplexed over one shared runtime. Appends to the same
# record's "fleet" section. BENCH_FLEET_TENANTS caps the largest scale —
# check.sh smokes it small.
BENCH_LABEL="$LABEL" BENCH_JSON="$JSON" BENCH_GIT_REV="$GIT_REV" \
    BENCH_FLEET_TENANTS="${BENCH_FLEET_TENANTS:-}" \
    cargo bench -q --bench fleet

# Checkpoint formats: stable-write bytes/round and cold-recovery time for
# the legacy full-image store vs the delta chain at k ∈ {1,4,16} on a
# large-state mission. Appends to the same record's "checkpoint" section.
# BENCH_CHECKPOINT_ROUNDS / BENCH_CHECKPOINT_STATE_KIB shrink it — check.sh
# smokes it small.
BENCH_LABEL="$LABEL" BENCH_JSON="$JSON" BENCH_GIT_REV="$GIT_REV" \
    BENCH_CHECKPOINT_ROUNDS="${BENCH_CHECKPOINT_ROUNDS:-}" \
    BENCH_CHECKPOINT_STATE_KIB="${BENCH_CHECKPOINT_STATE_KIB:-}" \
    cargo bench -q --bench checkpoint

# Unmasked regimes: AT detection latency and escape rate across a fixed
# acceptance-test coverage ladder (100% → 0%) at constant bad-message
# pressure. Appends to the same record's "regimes" section.
# BENCH_REGIME_SEEDS (missions per coverage level, default 32) shrinks
# it — check.sh smokes it small.
BENCH_LABEL="$LABEL" BENCH_JSON="$JSON" BENCH_GIT_REV="$GIT_REV" \
    BENCH_REGIME_SEEDS="${BENCH_REGIME_SEEDS:-}" \
    cargo bench -q --bench regimes

# Optional: wall-clock a small deterministic chaos sweep against the live
# three-process cluster. Machines without the cluster binaries (a
# bench-only checkout, or a target dir built before the chaos crate
# existed) skip this cleanly — the mission-bench record above is complete
# without it.
CHAOS_BIN="target/release/synergy-chaos"
NODE_BIN="target/release/synergy-node"
if [[ -x "$CHAOS_BIN" && -x "$NODE_BIN" ]]; then
    echo "==> chaos sweep timing (8 campaigns, base seed 1)"
    time "$CHAOS_BIN" --seeds 8 --base-seed 1 --node-bin "$NODE_BIN" > /dev/null
else
    echo "skip: chaos sweep ($CHAOS_BIN or $NODE_BIN not built; run 'cargo build --release' to enable)"
fi

echo "OK: run '$LABEL' ($SAMPLES samples) recorded in $JSON"
