#!/usr/bin/env bash
# Repo quality gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; everything happens at the workspace root, offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> chaos smoke: 4 fixed-seed campaigns against the live cluster"
# Deterministic and fast (≤30 s even on slow machines): the release build
# above produced the cluster binaries, and base seed 7 is the same fixed
# spec family the chaos crate's own smoke test replays.
./target/release/synergy-chaos --seeds 4 --base-seed 7 --jobs 2

echo "==> archive smoke: delta-chain, wipe-rehydration and archive-fault campaigns"
# Base seed 1's first 8 campaigns draw every archive axis: delta cadences
# k ∈ {1,2,4}, a mid-run wiped data directory rehydrated from the archive
# tier, object-store outages, and faulty PUTs — each run byte-checked
# against the simulator reference like every other campaign.
./target/release/synergy-chaos --seeds 8 --base-seed 1 --jobs 4

echo "==> unmasked-regime smoke: 4 seeds per regime + live Byzantine campaigns"
# Sweeps the four unmasked regimes (caught / escape / resync / byzantine)
# in the simulator and runs the live-cluster Byzantine campaigns, each
# classified into exactly one RegimeVerdict; fails on any silent escape,
# any worse-than-expected verdict, or a non-reproducible row.
./target/release/synergy-chaos --regime --seeds 4 --base-seed 5 --jobs 2

echo "==> chaos smoke: legacy thread-per-route transport"
# The reactor is the default; keep the legacy path honest too while it
# remains the migration fallback.
./target/release/synergy-chaos --seeds 2 --base-seed 7 --jobs 2 --transport threads

echo "==> fleet smoke: 100 seeded tenants, 4 verified against solo runs"
# Deterministic: seeded missions, and --verify re-runs a sample of tenants
# as standalone simulator missions and diffs device streams byte-for-byte.
./target/release/synergy-fleet --tenants 100 --seed 7 --duration-secs 30 --verify 4 > /dev/null

echo "==> benches compile: cargo bench --no-run"
cargo bench --no-run -q

echo "==> bench.sh smoke (1 sample, small wire and fleet runs, throwaway record)"
smoke_json="$(mktemp --suffix=.json)"
trap 'rm -f "$smoke_json"' EXIT
BENCH_WIRE_FRAMES=2000 BENCH_FLEET_TENANTS=100 \
    BENCH_CHECKPOINT_ROUNDS=8 BENCH_CHECKPOINT_STATE_KIB=64 \
    BENCH_REGIME_SEEDS=2 \
    scripts/bench.sh smoke 1 "$smoke_json" > /dev/null
grep -q '"ms_per_mission"' "$smoke_json"
grep -q '"wire"' "$smoke_json"
grep -q '"fleet"' "$smoke_json"
grep -q '"checkpoint"' "$smoke_json"
grep -q '"regimes"' "$smoke_json"

echo "OK: fmt, clippy, tier-1 and bench smoke all passed"
