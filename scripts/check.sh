#!/usr/bin/env bash
# Repo quality gate: formatting, lints, and the tier-1 build/test pass.
# Run from anywhere; everything happens at the workspace root, offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "OK: fmt, clippy and tier-1 all passed"
