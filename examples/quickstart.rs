//! Quickstart: run one guarded mission under the coordinated scheme, inject
//! a software and a hardware fault, and inspect the outcome.
//!
//! ```text
//! cargo run --release -p synergy --example quickstart
//! ```

use synergy::{Mission, Scheme, SystemConfig};

fn main() {
    // A 3-node guarded system: P1act (low-confidence upgrade) escorted by
    // P1sdw, interacting with P2. Modified MDCD handles software faults in
    // volatile storage; the adapted TB protocol persists coordinated
    // checkpoints every 5 seconds.
    let config = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .seed(2024)
        .duration_secs(180.0)
        .internal_rate_per_min(30.0) // component chatter
        .external_rate_per_min(4.0) // acceptance-tested device commands
        .tb_interval_secs(5.0)
        .software_fault_at_secs(60.0) // the upgrade misbehaves...
        .hardware_fault_at_secs(120.0) // ...and later a node crashes
        .build();

    let outcome = Mission::new(config).run();

    println!("== synergy-ft quickstart ==");
    println!(
        "software recoveries: {} (shadow promoted: {})",
        outcome.metrics.software_recoveries, outcome.shadow_promoted
    );
    println!(
        "hardware recoveries: {}",
        outcome.metrics.hardware_recoveries
    );
    println!(
        "volatile checkpoints: {} type-1, {} pseudo, {} type-2",
        outcome.metrics.type1_ckpts, outcome.metrics.pseudo_ckpts, outcome.metrics.type2_ckpts
    );
    println!(
        "stable checkpoints:   {} committed, {} replaced in-flight",
        outcome.metrics.stable_commits, outcome.metrics.stable_replacements
    );
    println!(
        "acceptance tests:     {} run, {} failed",
        outcome.metrics.at_runs, outcome.metrics.at_failures
    );
    println!("device messages:      {}", outcome.device_messages);
    for r in &outcome.metrics.rollbacks {
        println!(
            "  {:?} recovery at {}: {} {} ({:.3}s undone)",
            r.cause,
            r.at,
            synergy::system::process_name(r.process),
            r.decision,
            r.distance_secs
        );
    }
    println!(
        "global-state checks:  {} run, all hold: {}",
        outcome.verdicts.checks_run,
        outcome.verdicts.all_hold()
    );
    assert!(outcome.verdicts.all_hold(), "invariants must hold");
}
