//! Beyond the paper's three-process architecture: guarding two upgraded
//! components in a five-stage processing pipeline with the generalized
//! containment layer (`synergy_mdcd::general`).
//!
//! Topology: `S1act -> filter -> fuse <- S2act`, `fuse -> sink`, where `S1`
//! (a new sensor-filter version) and `S2` (a new planner version) are both
//! low-confidence sources. Taint watermarks propagate transitively, so the
//! sink knows exactly which unvalidated sources its state reflects — and a
//! fault in one source rolls back only what that source contaminated.
//!
//! ```text
//! cargo run --release -p synergy-mdcd --example pipeline_guard
//! ```

use synergy_mdcd::general::{GeneralProcess, GeneralRecovery, SourceId};
use synergy_net::ProcessId;

const S1: SourceId = SourceId(1);
const S2: SourceId = SourceId(2);

fn main() {
    println!("== generalized guarded pipeline (2 sources, 5 processes) ==\n");

    let mut s1_active = GeneralProcess::new(ProcessId(1), 8);
    let mut s2_active = GeneralProcess::new(ProcessId(2), 8);
    let mut filter = GeneralProcess::new(ProcessId(3), 8);
    let mut fuse = GeneralProcess::new(ProcessId(4), 8);
    let mut sink = GeneralProcess::new(ProcessId(5), 8);

    let mut step = 0u8;
    let mut snap = || {
        step += 1;
        vec![step]
    };

    // Round 1: S1 produces, the filter transforms, the fusion node combines.
    let (_, t) = s1_active.on_send(Some(S1));
    filter.on_receive(&t, &mut snap);
    let (_, t) = filter.on_send(None);
    fuse.on_receive(&t, &mut snap);
    println!(
        "after S1's first output:   fuse dirty w.r.t. {:?}",
        fuse.dirty_set()
    );

    // Round 2: S2 produces straight into the fusion node.
    let (_, t) = s2_active.on_send(Some(S2));
    fuse.on_receive(&t, &mut snap);
    let (_, t) = fuse.on_send(None);
    sink.on_receive(&t, &mut snap);
    println!(
        "after S2 joins:             fuse dirty w.r.t. {:?}, sink dirty w.r.t. {:?}",
        fuse.dirty_set(),
        sink.dirty_set()
    );

    // S1's output passes its acceptance test: everyone clears S1.
    for p in [&mut filter, &mut fuse, &mut sink] {
        p.on_validation(S1, 1);
    }
    println!(
        "after S1 validates sn1:     fuse dirty w.r.t. {:?}, sink dirty w.r.t. {:?}",
        fuse.dirty_set(),
        sink.dirty_set()
    );
    assert_eq!(fuse.dirty_set(), vec![S2]);
    assert_eq!(sink.dirty_set(), vec![S2]);

    // S2's acceptance test FAILS: per-source recovery.
    println!("\nS2's acceptance test fails — recovering per source:");
    for (name, p) in [("fuse", &mut fuse), ("sink", &mut sink)] {
        match p.recovery_plan(S2, 0) {
            GeneralRecovery::RollForward => println!("  {name}: roll-forward"),
            GeneralRecovery::RollBackTo(c) => {
                assert_eq!(c.seen.watermark(S2), 0, "restored state is S2-free");
                let app = p.apply_rollback(&c);
                println!(
                    "  {name}: roll-back to snapshot {:?} (S1 exposure preserved: {})",
                    app,
                    c.seen.watermark(S1)
                );
            }
            GeneralRecovery::Unrecoverable => unreachable!("depth 8 suffices here"),
        }
        assert!(!p.dirty_set().contains(&S2));
    }
    // The filter never saw S2 data: it rolls forward untouched.
    assert_eq!(filter.recovery_plan(S2, 0), GeneralRecovery::RollForward);
    println!("  filter: roll-forward (never exposed to S2)");

    println!("\nthe S2 fault cost nothing that S1 or the clean stages had computed");
}
