//! Distributed recovery blocks for industrial process control — the second
//! application pattern the paper names (§2.1, citing Kim's DRB and the
//! Hecht et al. nuclear-plant architecture).
//!
//! A better-performance, less-reliable control routine runs as the primary
//! (`P1act`) while a slower, well-proven routine escorts it (`P1sdw`). The
//! plant-interface component (`P2`) turns their outputs into actuator
//! commands. We compare the protocol-coordination scheme against the
//! write-through baseline on the same fault schedule and report the
//! rollback distance each would suffer from a controller-board failure.
//!
//! ```text
//! cargo run --release -p synergy --example process_control
//! ```

use synergy::{Mission, Scheme, SystemConfig};
use synergy_des::Summary;

fn rollback_distance(scheme: Scheme, seeds: u64) -> Summary {
    let mut s = Summary::new();
    for seed in 0..seeds {
        let outcome = Mission::new(
            SystemConfig::builder()
                .scheme(scheme)
                .seed(seed)
                .duration_secs(600.0)
                // Sensor-driven control messages are sparse; actuator
                // commands (validated by reasonableness checks on setpoints)
                // are comparatively frequent.
                .internal_rate_per_min(1.0)
                .external_rate_per_min(4.0)
                .tb_interval_secs(2.0)
                .hardware_fault_at_secs(380.0 + 11.0 * seed as f64)
                .trace(false)
                .build(),
        )
        .run();
        // The write-through baseline has a rare recoverability gap (see
        // EXPERIMENTS.md); validity must hold for both schemes.
        assert!(
            outcome.verdicts.of("validity-self").is_empty(),
            "{:?}",
            outcome.verdicts.violations
        );
        if scheme == Scheme::Coordinated {
            assert!(
                outcome.verdicts.all_hold(),
                "{:?}",
                outcome.verdicts.violations
            );
        }
        s.extend(outcome.metrics.hardware_rollback_distances());
    }
    s
}

fn main() {
    println!("== DRB-style process control: controller-board failure impact ==\n");
    let co = rollback_distance(Scheme::Coordinated, 10);
    let wt = rollback_distance(Scheme::WriteThrough, 10);
    println!("protocol coordination: {co}");
    println!("write-through baseline: {wt}");
    println!(
        "\nmean control computation lost per failure: {:.2}s vs {:.2}s ({:.1}x better)",
        co.mean(),
        wt.mean(),
        wt.mean() / co.mean().max(1e-9)
    );
    assert!(
        co.mean() < wt.mean(),
        "coordination must lose less computation in this regime"
    );
    println!("every run passed the validity-concerned consistency and recoverability checks");
}
