//! Guarded onboard software upgrading — the scenario that motivated the
//! MDCD protocol (paper §2.1 and [3]).
//!
//! A deep-space probe uplinks an upgraded command & data handling (C&DH)
//! component. During *guarded operation* the old, flight-proven version
//! escorts the upgrade as a shadow. We simulate the escort period three
//! times:
//!
//! 1. a clean upgrade (no faults) — guarded operation costs little;
//! 2. a latent design fault in the upgrade — the shadow takes over and the
//!    mission continues on the old version;
//! 3. a design fault *and* a radiation-induced node crash — both recovery
//!    procedures compose.
//!
//! ```text
//! cargo run --release -p synergy --example spacecraft_upgrade
//! ```

use synergy::{Mission, MissionOutcome, Scheme, SystemConfig};

fn escort_mission(
    label: &str,
    configure: impl FnOnce(synergy::SystemConfigBuilder) -> synergy::SystemConfigBuilder,
) -> MissionOutcome {
    // Attitude-control telemetry flows constantly between the C&DH
    // component (P1) and the guidance component (P2); thruster commands are
    // external, acceptance-tested outputs.
    let base = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .seed(7)
        .duration_secs(600.0)
        .internal_rate_per_min(20.0) // telemetry exchange
        .external_rate_per_min(2.0) // thruster/antenna commands
        .tb_interval_secs(10.0);
    let outcome = Mission::new(configure(base).build()).run();
    println!("--- {label} ---");
    println!(
        "  takeover: {:<5}  sw recoveries: {}  hw recoveries: {}  device cmds: {}",
        outcome.shadow_promoted,
        outcome.metrics.software_recoveries,
        outcome.metrics.hardware_recoveries,
        outcome.device_messages
    );
    println!(
        "  checkpoints: {} volatile / {} stable   blocking: {:.1}ms total",
        outcome.metrics.volatile_total(),
        outcome.metrics.stable_commits,
        outcome.metrics.blocking_total.as_secs_f64() * 1e3
    );
    for r in &outcome.metrics.rollbacks {
        println!(
            "  {:?}: {} {} ({:.2}s of computation undone)",
            r.cause,
            synergy::system::process_name(r.process),
            r.decision,
            r.distance_secs
        );
    }
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    outcome
}

fn main() {
    println!("== guarded onboard software upgrade ==\n");

    let clean = escort_mission("escort period, clean upgrade", |b| b);
    assert!(!clean.shadow_promoted, "no takeover without a fault");

    let sw = escort_mission("upgrade exposes a design fault at t=200s", |b| {
        b.software_fault_at_secs(200.0)
    });
    assert!(sw.shadow_promoted, "old version must take over");
    assert_eq!(sw.metrics.software_recoveries, 1);

    let both = escort_mission(
        "design fault at t=200s + radiation crash of the guidance node at t=400s",
        |b| {
            b.software_fault_at_secs(200.0)
                .hardware_fault_at_secs(400.0)
        },
    );
    assert_eq!(both.metrics.software_recoveries, 1);
    assert_eq!(both.metrics.hardware_recoveries, 1);
    assert!(
        both.device_messages > 0,
        "the probe keeps commanding its devices through both recoveries"
    );

    println!("\nall three escort missions completed with every global-state check green");
}
