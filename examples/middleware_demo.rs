//! The threaded GSU-style middleware in action: real threads, real
//! channels, a live fault injection and shadow takeover.
//!
//! ```text
//! cargo run --release -p synergy-middleware --example middleware_demo
//! ```

use std::time::Duration;

use synergy_middleware::{Middleware, MiddlewareConfig, P1ACT, P1SDW, P2};

fn main() {
    println!("== GSU middleware demo (threaded runtime) ==\n");
    let mw = Middleware::spawn(MiddlewareConfig::default());

    // Normal guarded operation: component traffic plus device commands.
    for round in 0..5 {
        mw.produce(1, false);
        mw.produce(2, false);
        if round % 2 == 0 {
            mw.produce(1, true);
        }
    }
    let mut device_msgs = 0;
    while mw
        .device_rx()
        .recv_timeout(Duration::from_millis(300))
        .is_ok()
    {
        device_msgs += 1;
    }
    println!("guarded operation: {device_msgs} validated device messages delivered");
    for pid in [P1ACT, P1SDW, P2] {
        if let Some(s) = mw.status(pid) {
            println!(
                "  {pid}: role={:?} dirty={} ckpts={} logged={} delivered={}",
                s.role, s.dirty, s.ckpts, s.logged, s.delivered
            );
        }
    }

    // The upgraded version develops a fault; its next acceptance test fails.
    println!("\ninjecting design fault into the active version...");
    mw.inject_fault(true);
    mw.produce(1, true);
    let recoveries = mw.wait_for_recoveries(1, Duration::from_secs(5));
    println!("shadow takeover completed (recoveries: {recoveries})");

    // Service continues on the promoted shadow.
    std::thread::sleep(Duration::from_millis(100));
    mw.produce(1, true);
    let served = mw.device_rx().recv_timeout(Duration::from_secs(2)).is_ok();
    println!(
        "external service after takeover: {}",
        if served { "OK" } else { "FAILED" }
    );

    let report = mw.shutdown();
    println!(
        "\nshutdown: {} software recoveries, {} node reports collected",
        report.software_recoveries,
        report.nodes.len()
    );
    assert_eq!(recoveries, 1);
    assert!(served);
}
