//! Integration-level assertions for every figure scenario, through the
//! public API (the same code paths the `synergy-bench` binaries print).

use synergy::scenario::{
    fig1_original_mdcd, fig2_tb_hazards, fig3_modified_mdcd, fig4_naive_vs_coordinated, fig6_cases,
};

#[test]
fn fig1_checkpoint_trace() {
    let report = fig1_original_mdcd();
    // Every Type-1 checkpoint is taken while handling a delivery: the
    // closest preceding event at the same actor is the `msg.recv` of the
    // contaminating message (the checkpoint guards it before the
    // application sees it).
    let events = report.trace.events();
    for (i, e) in events.iter().enumerate() {
        if e.kind == "ckpt.type-1" {
            let prev_same_actor = events[..i]
                .iter()
                .rev()
                .find(|x| x.actor == e.actor)
                .expect("a delivery precedes the checkpoint");
            assert_eq!(
                prev_same_actor.kind, "msg.recv",
                "Type-1 must directly guard a delivery, found {prev_same_actor}"
            );
        }
    }
    assert_eq!(
        report.counts.pseudo, 0,
        "original protocol has no pseudo ckpts"
    );
    assert!(
        report.counts.type2 > 0,
        "original protocol takes Type-2 ckpts"
    );
    // P1act takes no checkpoints under the original protocol.
    assert_eq!(
        report
            .trace
            .by_actor("P1act")
            .filter(|e| e.kind.starts_with("ckpt"))
            .count(),
        0
    );
}

#[test]
fn fig3_modified_trace() {
    let report = fig3_modified_mdcd();
    assert_eq!(report.counts.type2, 0, "Type-2 establishment is eliminated");
    assert!(report.counts.pseudo >= 2, "P1act takes pseudo checkpoints");
    // The pseudo checkpoint precedes P1act's internal send.
    let events = report.trace.events();
    let pseudo_idx = events
        .iter()
        .position(|e| e.kind == "ckpt.pseudo")
        .expect("pseudo checkpoint exists");
    let send_after = events[pseudo_idx..]
        .iter()
        .find(|e| e.actor == "P1act" && e.kind == "msg.send");
    assert!(send_after.is_some(), "pseudo ckpt guards the next send");
}

#[test]
fn fig2_hazard_analysis() {
    let r = fig2_tb_hazards();
    assert!(r.consistency_violated_without_blocking);
    assert!(r.recoverability_violated_without_log);
    assert!(r.blocking_restores_consistency);
    assert!(r.logging_restores_recoverability);
}

#[test]
fn fig4_simple_combination_fails_where_coordination_succeeds() {
    let r = fig4_naive_vs_coordinated(8);
    assert!(
        r.naive_violations > 0,
        "naive combination must lose non-contaminated states in some runs"
    );
    assert_eq!(r.coordinated_violations, 0);
}

#[test]
fn fig6_checkpoint_content_selection() {
    let r = fig6_cases();
    assert!(r.p2_clean_saves_current);
    assert!(r.p2_dirty_replaces_on_passed_at);
    assert!(r.act_clean_saves_current);
    assert!(r.act_dirty_copies_volatile);
}

#[test]
fn table1_blocking_period_contract() {
    use synergy_clocks::SyncParams;
    use synergy_des::SimDuration;
    use synergy_tb::{blocking_period, TbVariant};
    let sync = SyncParams::new(SimDuration::from_micros(500), 1e-4);
    let tmin = SimDuration::from_micros(200);
    let tmax = SimDuration::from_millis(2);
    let elapsed = SimDuration::from_secs(60);
    let original = blocking_period(TbVariant::Original, sync, elapsed, tmin, tmax, true);
    let clean = blocking_period(TbVariant::Adapted, sync, elapsed, tmin, tmax, false);
    let dirty = blocking_period(TbVariant::Adapted, sync, elapsed, tmin, tmax, true);
    // Table 1 row "blocking period": τ = δ+2ρτ−tmin vs τ(b) = δ+2ρτ+Tm(b).
    assert_eq!(clean, original);
    assert_eq!(dirty - clean, tmax + tmin);
}
