//! Guards for the allocation-lean hot path.
//!
//! Two properties keep the perf work honest:
//!
//! 1. Tracing is observability only: the same seed must produce identical
//!    metrics and verdicts with tracing on and off. Lazy trace closures and
//!    host-side `Record` gating must never leak into simulation state.
//! 2. A short traced-off mission stays within a pinned allocation budget.
//!    The counter is thread-local, so concurrently running tests in this
//!    binary do not perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::cell::Cell;

use synergy::{Mission, MissionOutcome, Scheme, SystemConfig};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// System allocator wrapper counting allocation events on the current
/// thread. `try_with` keeps it safe during TLS teardown.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        SystemAlloc.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        SystemAlloc.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        SystemAlloc.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

fn mission(seed: u64, trace: bool) -> MissionOutcome {
    Mission::new(
        SystemConfig::builder()
            .scheme(Scheme::Coordinated)
            .seed(seed)
            .duration_secs(30.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(2.0)
            .tb_interval_secs(5.0)
            .hardware_fault_at_secs(20.0)
            .trace(trace)
            .build(),
    )
    .run()
}

#[test]
fn tracing_toggle_does_not_change_results() {
    for seed in [1u64, 7, 42, 1001] {
        let traced = mission(seed, true);
        let silent = mission(seed, false);
        assert!(
            !traced.trace.events().is_empty(),
            "traced run recorded nothing (seed {seed})"
        );
        assert!(
            silent.trace.events().is_empty(),
            "disabled trace still recorded events (seed {seed})"
        );
        assert_eq!(
            traced.metrics, silent.metrics,
            "metrics diverged with tracing toggled (seed {seed})"
        );
        assert_eq!(
            traced.verdicts, silent.verdicts,
            "verdicts diverged with tracing toggled (seed {seed})"
        );
        assert_eq!(traced.device_messages, silent.device_messages);
        assert_eq!(traced.shadow_promoted, silent.shadow_promoted);
    }
}

#[test]
fn untraced_mission_stays_within_allocation_budget() {
    // Warm-up: global one-time allocations (lazy statics, first-use buffers)
    // must not count against the budget.
    let _ = mission(3, false);

    let before = allocs_on_this_thread();
    let outcome = mission(3, false);
    let allocs = allocs_on_this_thread() - before;

    assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts);
    eprintln!("untraced 30s mission: {allocs} allocation events");
    // Measured ~1.5k allocation events for this 30 s mission after the
    // Arc-sharing + lazy-trace work (~2.8k before it). The bound leaves
    // headroom for allocator/platform noise while still failing loudly if
    // per-message clones or eager trace formatting come back.
    const BUDGET: u64 = 2_500;
    assert!(
        allocs < BUDGET,
        "untraced mission allocated {allocs} times (budget {BUDGET}); \
         the hot path has regressed"
    );
}
