//! End-to-end integration tests spanning the whole workspace: MDCD + TB
//! engines on the DES, storage, network, checkers.

use synergy::{Mission, Scheme, SystemConfig, SystemConfigBuilder};
use synergy_des::SimDuration;

fn base(scheme: Scheme, seed: u64) -> SystemConfigBuilder {
    SystemConfig::builder()
        .scheme(scheme)
        .seed(seed)
        .duration_secs(240.0)
        .internal_rate_per_min(30.0)
        .external_rate_per_min(4.0)
        .tb_interval_secs(5.0)
}

#[test]
fn every_scheme_survives_a_fault_free_mission() {
    for scheme in [
        Scheme::Coordinated,
        Scheme::WriteThrough,
        Scheme::Naive,
        Scheme::MdcdOnly,
    ] {
        let outcome = Mission::new(base(scheme, 3).build()).run();
        assert!(
            outcome.verdicts.all_hold(),
            "{scheme:?}: {:?}",
            outcome.verdicts.violations
        );
        assert_eq!(outcome.metrics.at_failures, 0, "{scheme:?}");
        assert!(outcome.device_messages > 0, "{scheme:?}");
    }
}

#[test]
fn repeated_hardware_faults_recover_every_time() {
    let outcome = Mission::new(
        base(Scheme::Coordinated, 11)
            .hardware_fault_at_secs(60.0)
            .hardware_fault_at_secs(120.0)
            .hardware_fault_at_secs(180.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.hardware_recoveries, 3);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert_eq!(outcome.verdicts.checks_run, 3);
}

#[test]
fn hardware_fault_before_first_stable_checkpoint_restarts_clean() {
    // Crash at 1s: no TB epoch has committed yet; everyone restarts from
    // the initial state, which is trivially consistent.
    let outcome = Mission::new(
        base(Scheme::Coordinated, 5)
            .hardware_fault_at_secs(1.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    // Progress after the restart still happens.
    assert!(outcome.device_messages > 0);
}

#[test]
fn software_fault_during_every_phase_is_recoverable() {
    // The 230s phase needs an acceptance test to fire in the mission's last
    // ten seconds; seed 1 is one of the (many) seeds whose external
    // schedule does.
    for at in [10.0, 60.0, 150.0, 230.0] {
        let outcome = Mission::new(
            base(Scheme::Coordinated, 1)
                .software_fault_at_secs(at)
                .build(),
        )
        .run();
        assert!(outcome.shadow_promoted, "fault at {at}s");
        assert!(
            outcome.verdicts.all_hold(),
            "fault at {at}s: {:?}",
            outcome.verdicts.violations
        );
    }
}

#[test]
fn hardware_then_software_fault_composes() {
    // Inverse order from the quickstart: crash first, then the design
    // fault — the restored guarded operation must still take over cleanly.
    let outcome = Mission::new(
        base(Scheme::Coordinated, 23)
            .hardware_fault_at_secs(60.0)
            .software_fault_at_secs(150.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert!(outcome.shadow_promoted);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
}

#[test]
fn crash_after_takeover_recovers_without_the_active() {
    let outcome = Mission::new(
        base(Scheme::Coordinated, 29)
            .software_fault_at_secs(50.0)
            .hardware_fault_at_secs(130.0)
            .build(),
    )
    .run();
    assert_eq!(outcome.metrics.software_recoveries, 1);
    assert_eq!(outcome.metrics.hardware_recoveries, 1);
    assert!(
        outcome.verdicts.all_hold(),
        "{:?}",
        outcome.verdicts.violations
    );
    assert!(
        outcome.device_messages > 0,
        "the promoted shadow keeps serving after the crash"
    );
}

#[test]
fn replicas_stay_aligned_without_faults() {
    let mut system = synergy::System::new(base(Scheme::Coordinated, 31).build());
    system.run();
    let act = system.app_state(0);
    let sdw = system.app_state(1);
    // The shadow processes the same input stream; its produced counters and
    // receipt log must match the active's exactly.
    assert_eq!(act.internals_produced, sdw.internals_produced);
    assert_eq!(act.externals_produced, sdw.externals_produced);
    assert_eq!(act.received.len(), sdw.received.len());
}

#[test]
fn coordination_disable_is_seamless_when_clean() {
    // Paper §4.2: with every dirty bit constantly zero the adapted TB
    // algorithm degenerates into the original. With no workload nothing
    // ever contaminates, so the coordinated scheme's blocking trace must
    // match the naive scheme's (same seed, same clocks).
    let run = |scheme| {
        let outcome = Mission::new(
            SystemConfig::builder()
                .scheme(scheme)
                .seed(41)
                .duration_secs(60.0)
                .no_workload()
                .tb_interval_secs(5.0)
                .build(),
        )
        .run();
        let blockings: Vec<String> = outcome
            .trace
            .by_kind("tb.blocking")
            .map(|e| format!("{} {} {}", e.time, e.actor, e.detail))
            .collect();
        // The expected_dirty flag legitimately differs: the original
        // protocol's P1act is constantly dirty, the modified one exposes its
        // pseudo bit. Contents and blocking must match exactly.
        let contents: Vec<String> = outcome
            .trace
            .by_kind("tb.write")
            .map(|e| e.detail.split_whitespace().next().unwrap_or("").to_string())
            .collect();
        (blockings, contents)
    };
    let (coordinated_blocking, coordinated_contents) = run(Scheme::Coordinated);
    let (naive_blocking, naive_contents) = run(Scheme::Naive);
    assert_eq!(coordinated_blocking, naive_blocking);
    assert_eq!(coordinated_contents, naive_contents);
    assert!(coordinated_contents
        .iter()
        .all(|c| c.contains("stable-current")));
}

#[test]
fn rollback_distances_are_bounded_by_checkpoint_age() {
    // Under coordination the restored state is never older than one AT
    // cycle plus one TB interval (plus recovery delay); sanity-check the
    // bound with generous slack.
    let outcome = Mission::new(
        base(Scheme::Coordinated, 43)
            .hardware_fault_at_secs(200.0)
            .build(),
    )
    .run();
    for d in outcome.metrics.hardware_rollback_distances() {
        assert!(d < 120.0, "rollback distance {d}s is implausibly large");
    }
}

#[test]
fn blocking_periods_scale_with_dirty_bit() {
    // Harvest blocking durations per dirty flag from a coordinated run and
    // confirm dirty blocking exceeds clean blocking by exactly tmax+tmin.
    // Drift is pinned to zero so the 2*rho*tau term does not vary between
    // the (differently timed) clean and dirty samples.
    let outcome = Mission::new(
        base(Scheme::Coordinated, 47)
            .sync(synergy_clocks::SyncParams::new(
                SimDuration::from_millis(1),
                0.0,
            ))
            .build(),
    )
    .run();
    let mut last_dirty = None;
    let mut clean = Vec::new();
    let mut dirty = Vec::new();
    for e in outcome.trace.events() {
        if e.kind == "tb.timer" {
            last_dirty = Some(e.detail.contains("dirty=1"));
        } else if e.kind == "tb.blocking" {
            let secs: f64 = e
                .detail
                .trim_start_matches("for ")
                .trim_end_matches('s')
                .parse()
                .unwrap();
            match last_dirty {
                Some(true) => dirty.push(secs),
                Some(false) => clean.push(secs),
                None => {}
            }
        }
    }
    assert!(!clean.is_empty() && !dirty.is_empty(), "need both kinds");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let gap = mean(&dirty) - mean(&clean);
    let expected =
        SimDuration::from_millis(2).as_secs_f64() + SimDuration::from_micros(200).as_secs_f64();
    assert!(
        (gap - expected).abs() < 1e-9,
        "dirty-clean blocking gap {gap} != tmax+tmin {expected}"
    );
}

#[test]
fn mdcd_only_cannot_recover_hardware_progress() {
    // Without stable storage a crash loses all progress: the restored
    // rollback distance equals the fault time.
    let outcome = Mission::new(
        base(Scheme::MdcdOnly, 53)
            .hardware_fault_at_secs(100.0)
            .build(),
    )
    .run();
    let distances = outcome.metrics.hardware_rollback_distances();
    assert!(!distances.is_empty());
    for d in distances {
        assert!(
            d > 99.0,
            "MdcdOnly must lose everything back to t=0, lost only {d}s"
        );
    }
}

#[test]
fn deterministic_outcomes_across_identical_runs() {
    let run = || {
        let o = Mission::new(
            base(Scheme::Coordinated, 61)
                .software_fault_at_secs(77.0)
                .hardware_fault_at_secs(140.0)
                .build(),
        )
        .run();
        (
            o.metrics.messages_sent,
            o.metrics.messages_delivered,
            o.metrics.stable_commits,
            o.metrics.volatile_total(),
            o.device_messages,
            o.trace.events().len(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn delta_accounting_is_behaviour_neutral_and_shrinks_write_volume() {
    // The incremental-checkpoint knob is accounting only: with it on, the
    // mission must be event-for-event identical, and the chain format must
    // write far fewer bytes than the full-image scheme it measures against.
    let run = |delta_k: Option<u32>| {
        let mut b = base(Scheme::Coordinated, 29)
            .software_fault_at_secs(70.0)
            .hardware_fault_at_secs(150.0);
        if let Some(k) = delta_k {
            b = b.checkpoint_delta_k(k);
        }
        Mission::new(b.build()).run()
    };
    let plain = run(None);
    let measured = run(Some(16));
    assert_eq!(plain.device_messages, measured.device_messages);
    assert_eq!(plain.trace.events().len(), measured.trace.events().len());
    let mut m = measured.metrics.clone();
    assert_eq!(plain.metrics.stable_bytes_full, 0, "off by default");
    assert_eq!(plain.metrics.stable_bytes_delta, 0);
    assert!(m.stable_bytes_full > 0, "commits were accounted");
    assert!(
        m.stable_bytes_delta < m.stable_bytes_full,
        "chain format writes less: {} vs {}",
        m.stable_bytes_delta,
        m.stable_bytes_full
    );
    m.stable_bytes_full = 0;
    m.stable_bytes_delta = 0;
    assert_eq!(m, plain.metrics, "all other metrics identical");
}
