//! Property-based tests over randomized workloads, fault schedules and
//! protocol parameters.
//!
//! Randomness comes from the workspace's deterministic RNG ([`DetRng`]) so
//! every case replays identically; assertion messages carry the `case`
//! index of the failing draw.

use synergy::{Mission, Scheme, SystemConfig};
use synergy_des::DetRng;
use synergy_storage::codec::{from_bytes, to_bytes};

/// A short random string mixing ASCII and multi-byte code points, to
/// exercise UTF-8 boundaries in the codec.
fn random_string(rng: &mut DetRng) -> String {
    let len = rng.gen_range(0u64..12);
    (0..len)
        .map(|_| match rng.gen_range(0u64..4) {
            0 => char::from(rng.gen_range(0x20u64..0x7f) as u8),
            1 => char::from_u32(rng.gen_range(0xA0u64..0x250) as u32).unwrap_or('x'),
            2 => char::from_u32(rng.gen_range(0x4E00u64..0x4F00) as u32).unwrap_or('y'),
            _ => '\u{1F600}',
        })
        .collect()
}

/// The headline theorem: under the coordinated scheme, any combination
/// of workload, one software fault and one hardware fault preserves
/// validity-concerned global consistency and recoverability.
#[test]
fn coordinated_scheme_invariants_hold() {
    let mut rng = DetRng::new(0x1A).stream("coordinated-invariants");
    for case in 0..24 {
        let seed = rng.gen_range(0u64..10_000);
        let internal_per_min = rng.gen_range(0.5f64..90.0);
        let external_per_min = rng.gen_range(0.5f64..8.0);
        let tb_interval = rng.gen_range(1.0f64..20.0);
        let hw_at = rng.gen_range(20.0f64..200.0);
        let sw_at = rng.gen_bool(0.5).then(|| rng.gen_range(20.0f64..200.0));
        let mut builder = SystemConfig::builder()
            .scheme(Scheme::Coordinated)
            .seed(seed)
            .duration_secs(240.0)
            .internal_rate_per_min(internal_per_min)
            .external_rate_per_min(external_per_min)
            .tb_interval_secs(tb_interval)
            .hardware_fault_at_secs(hw_at)
            .trace(false);
        if let Some(at) = sw_at {
            builder = builder.software_fault_at_secs(at);
        }
        let outcome = Mission::new(builder.build()).run();
        assert!(
            outcome.verdicts.all_hold(),
            "case={case} seed={seed}: violations: {:?}",
            outcome.verdicts.violations
        );
        assert!(
            outcome.metrics.hardware_recoveries >= 1,
            "case={case} seed={seed}"
        );
    }
}

/// Crashing any node at any time is survivable and every rollback
/// distance is non-negative and bounded by the fault time.
#[test]
fn any_node_crash_is_survivable() {
    let mut rng = DetRng::new(0x1A).stream("any-node-crash");
    for case in 0..24 {
        let seed = rng.gen_range(0u64..1_000);
        let node = rng.gen_range(0u64..3) as usize;
        let hw_at = rng.gen_range(10.0f64..110.0);
        let outcome = Mission::new(
            SystemConfig::builder()
                .scheme(Scheme::Coordinated)
                .seed(seed)
                .duration_secs(120.0)
                .internal_rate_per_min(30.0)
                .external_rate_per_min(4.0)
                .tb_interval_secs(5.0)
                .hardware_fault(synergy::HardwareFault {
                    at: synergy_des::SimTime::from_secs_f64(hw_at),
                    node,
                })
                .trace(false)
                .build(),
        )
        .run();
        assert!(
            outcome.verdicts.all_hold(),
            "case={case} seed={seed} node={node}: {:?}",
            outcome.verdicts.violations
        );
        for d in outcome.metrics.hardware_rollback_distances() {
            assert!(d >= 0.0, "case={case}");
            assert!(
                d <= hw_at + 1.0,
                "case={case}: distance {d} exceeds fault time {hw_at}"
            );
        }
    }
}

/// Missions are replay-deterministic in every observable counter.
#[test]
fn missions_are_deterministic() {
    let mut rng = DetRng::new(0x1A).stream("missions-deterministic");
    for case in 0..24 {
        let seed = rng.gen_range(0u64..500);
        let sw_at = rng.gen_range(20.0f64..100.0);
        let run = || {
            let o = Mission::new(
                SystemConfig::builder()
                    .scheme(Scheme::Coordinated)
                    .seed(seed)
                    .duration_secs(120.0)
                    .internal_rate_per_min(20.0)
                    .external_rate_per_min(3.0)
                    .software_fault_at_secs(sw_at)
                    .trace(false)
                    .build(),
            )
            .run();
            (
                o.metrics.messages_sent,
                o.metrics.messages_delivered,
                o.metrics.stable_commits,
                o.metrics.software_recoveries,
                o.device_messages,
            )
        };
        assert_eq!(run(), run(), "case={case} seed={seed}");
    }
}

/// The binary codec round-trips arbitrary nested data.
#[test]
fn codec_roundtrips_nested_data() {
    let mut rng = DetRng::new(0x1B).stream("codec-roundtrips");
    for case in 0..256 {
        let n = rng.gen_range(0u64..16);
        let v: Vec<(String, u64, Option<i32>, Vec<u8>)> = (0..n)
            .map(|_| {
                let s = random_string(&mut rng);
                let u = rng.next_u64();
                let o = rng.gen_bool(0.5).then(|| rng.next_u32() as i32);
                let blen = rng.gen_range(0u64..32);
                let mut b = vec![0u8; blen as usize];
                rng.fill_bytes(&mut b);
                (s, u, o, b)
            })
            .collect();
        let bytes = to_bytes(&v).unwrap();
        let back: Vec<(String, u64, Option<i32>, Vec<u8>)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, v, "case={case}");
    }
}

/// Decoding arbitrary bytes as a structured type never panics — it
/// either succeeds or errors.
#[test]
fn codec_never_panics_on_garbage() {
    let mut rng = DetRng::new(0x1B).stream("codec-garbage");
    for _ in 0..256 {
        let len = rng.gen_range(0u64..256);
        let mut bytes = vec![0u8; len as usize];
        rng.fill_bytes(&mut bytes);
        let _ = from_bytes::<Vec<(String, u64)>>(&bytes);
        let _ = from_bytes::<Option<Vec<bool>>>(&bytes);
        let _ = from_bytes::<(u8, u16, u32, u64)>(&bytes);
    }
}

/// CRC-verified checkpoints detect arbitrary single-bit corruption.
#[test]
fn checkpoint_corruption_is_detected() {
    let mut rng = DetRng::new(0x1B).stream("checkpoint-corruption");
    for case in 0..256 {
        let counter = rng.next_u64();
        let label = random_string(&mut rng);
        let bit = rng.gen_range(0u64..512) as usize;
        let mut ckpt = synergy_storage::Checkpoint::encode(
            1,
            synergy_des::SimTime::ZERO,
            label,
            &(counter, vec![counter; 4]),
        )
        .unwrap();
        ckpt.corrupt_bit(bit);
        assert!(
            ckpt.decode::<(u64, Vec<u64>)>().is_err(),
            "case={case} bit={bit}"
        );
    }
}

/// Clock fleets never exceed their advertised deviation bound, at any
/// time, with or without resynchronization.
#[test]
fn clock_deviation_bound_holds() {
    use synergy_clocks::{ClockFleet, SyncParams};
    use synergy_des::{SimDuration, SimTime};
    let mut rng = DetRng::new(0x1B).stream("clock-deviation");
    for case in 0..256 {
        let seed = rng.next_u64();
        let delta_us = rng.gen_range(1u64..2_000);
        let rho_ppm = rng.gen_range(0u64..500);
        let probe_secs = rng.gen_range(0.0f64..500.0);
        let resync_at = rng.gen_bool(0.5).then(|| rng.gen_range(0.0f64..400.0));
        let params = SyncParams::new(SimDuration::from_micros(delta_us), rho_ppm as f64 * 1e-6);
        let mut fleet = ClockFleet::generate(3, params, &DetRng::new(seed));
        if let Some(at) = resync_at {
            if at < probe_secs {
                fleet.resync_all(SimTime::from_secs_f64(at));
            }
        }
        let t = SimTime::from_secs_f64(probe_secs);
        assert!(
            fleet.max_pairwise_deviation(t) <= fleet.deviation_bound_at(t),
            "case={case} seed={seed}"
        );
    }
}
