//! Property-based tests over randomized workloads, fault schedules and
//! protocol parameters.

use proptest::prelude::*;
use synergy::{Mission, Scheme, SystemConfig};
use synergy_storage::codec::{from_bytes, to_bytes};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// The headline theorem: under the coordinated scheme, any combination
    /// of workload, one software fault and one hardware fault preserves
    /// validity-concerned global consistency and recoverability.
    #[test]
    fn coordinated_scheme_invariants_hold(
        seed in 0u64..10_000,
        internal_per_min in 0.5f64..90.0,
        external_per_min in 0.5f64..8.0,
        tb_interval in 1.0f64..20.0,
        hw_at in 20.0f64..200.0,
        sw_at in proptest::option::of(20.0f64..200.0),
    ) {
        let mut builder = SystemConfig::builder()
            .scheme(Scheme::Coordinated)
            .seed(seed)
            .duration_secs(240.0)
            .internal_rate_per_min(internal_per_min)
            .external_rate_per_min(external_per_min)
            .tb_interval_secs(tb_interval)
            .hardware_fault_at_secs(hw_at)
            .trace(false);
        if let Some(at) = sw_at {
            builder = builder.software_fault_at_secs(at);
        }
        let outcome = Mission::new(builder.build()).run();
        prop_assert!(
            outcome.verdicts.all_hold(),
            "violations: {:?}",
            outcome.verdicts.violations
        );
        prop_assert!(outcome.metrics.hardware_recoveries >= 1);
    }

    /// Crashing any node at any time is survivable and every rollback
    /// distance is non-negative and bounded by the fault time.
    #[test]
    fn any_node_crash_is_survivable(
        seed in 0u64..1_000,
        node in 0usize..3,
        hw_at in 10.0f64..110.0,
    ) {
        let outcome = Mission::new(
            SystemConfig::builder()
                .scheme(Scheme::Coordinated)
                .seed(seed)
                .duration_secs(120.0)
                .internal_rate_per_min(30.0)
                .external_rate_per_min(4.0)
                .tb_interval_secs(5.0)
                .hardware_fault(synergy::HardwareFault {
                    at: synergy_des::SimTime::from_secs_f64(hw_at),
                    node,
                })
                .trace(false)
                .build(),
        )
        .run();
        prop_assert!(outcome.verdicts.all_hold(), "{:?}", outcome.verdicts.violations);
        for d in outcome.metrics.hardware_rollback_distances() {
            prop_assert!(d >= 0.0);
            prop_assert!(d <= hw_at + 1.0, "distance {d} exceeds fault time {hw_at}");
        }
    }

    /// Missions are replay-deterministic in every observable counter.
    #[test]
    fn missions_are_deterministic(seed in 0u64..500, sw_at in 20.0f64..100.0) {
        let run = || {
            let o = Mission::new(
                SystemConfig::builder()
                    .scheme(Scheme::Coordinated)
                    .seed(seed)
                    .duration_secs(120.0)
                    .internal_rate_per_min(20.0)
                    .external_rate_per_min(3.0)
                    .software_fault_at_secs(sw_at)
                    .trace(false)
                    .build(),
            )
            .run();
            (
                o.metrics.messages_sent,
                o.metrics.messages_delivered,
                o.metrics.stable_commits,
                o.metrics.software_recoveries,
                o.device_messages,
            )
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        .. ProptestConfig::default()
    })]

    /// The binary codec round-trips arbitrary nested data.
    #[test]
    fn codec_roundtrips_nested_data(
        v in proptest::collection::vec(
            (any::<String>(), any::<u64>(), proptest::option::of(any::<i32>()),
             proptest::collection::vec(any::<u8>(), 0..32)),
            0..16,
        )
    ) {
        let bytes = to_bytes(&v).unwrap();
        let back: Vec<(String, u64, Option<i32>, Vec<u8>)> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Decoding arbitrary bytes as a structured type never panics — it
    /// either succeeds or errors.
    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes::<Vec<(String, u64)>>(&bytes);
        let _ = from_bytes::<Option<Vec<bool>>>(&bytes);
        let _ = from_bytes::<(u8, u16, u32, u64)>(&bytes);
    }

    /// CRC-verified checkpoints detect arbitrary single-bit corruption.
    #[test]
    fn checkpoint_corruption_is_detected(
        counter in any::<u64>(),
        label in any::<String>(),
        bit in 0usize..512,
    ) {
        let mut ckpt = synergy_storage::Checkpoint::encode(
            1,
            synergy_des::SimTime::ZERO,
            label,
            &(counter, vec![counter; 4]),
        )
        .unwrap();
        ckpt.corrupt_bit(bit);
        prop_assert!(ckpt.decode::<(u64, Vec<u64>)>().is_err());
    }

    /// Clock fleets never exceed their advertised deviation bound, at any
    /// time, with or without resynchronization.
    #[test]
    fn clock_deviation_bound_holds(
        seed in any::<u64>(),
        delta_us in 1u64..2_000,
        rho_ppm in 0u64..500,
        probe_secs in 0.0f64..500.0,
        resync_at in proptest::option::of(0.0f64..400.0),
    ) {
        use synergy_clocks::{ClockFleet, SyncParams};
        use synergy_des::{DetRng, SimDuration, SimTime};
        let params = SyncParams::new(
            SimDuration::from_micros(delta_us),
            rho_ppm as f64 * 1e-6,
        );
        let mut fleet = ClockFleet::generate(3, params, &DetRng::new(seed));
        if let Some(at) = resync_at {
            if at < probe_secs {
                fleet.resync_all(SimTime::from_secs_f64(at));
            }
        }
        let t = SimTime::from_secs_f64(probe_secs);
        prop_assert!(fleet.max_pairwise_deviation(t) <= fleet.deviation_bound_at(t));
    }
}
