//! The checkpoint chain format shared by simulator, middleware and cluster.
//!
//! A [`CheckpointCodec`] turns a stream of committed [`Checkpoint`]s into a
//! stream of [`ChainRecord`]s: a full image every `k` records, CRC-chained
//! dirty-region deltas between. The codec is the *only* definition of the
//! format — the simulator uses it to account stable-write bytes, the
//! middleware's TB runtime and the cluster nodes persist through it via
//! [`DeltaStable`](crate::DeltaStable), and the archive tier mirrors the
//! records it produces.
//!
//! Chain order is **commit order**, not sequence-number order: after a
//! global rollback the TB protocol reuses epoch numbers, and the chain
//! simply continues from the last committed image (the record's `base_seq`
//! and base CRC pin the base explicitly, so a reload can never splice a
//! delta onto the wrong image).

use std::sync::Arc;

use synergy_codec::{Codec, CodecError, Reader};
use synergy_storage::{crc32, Checkpoint};

use crate::delta::{chain_link, DeltaPatch, CHAIN_SEED};

/// Whether a chain record carries a full image or a delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A complete checkpoint image; restarts the chain.
    Full,
    /// A dirty-region delta against the previous record's image.
    Delta,
}

/// One record of a checkpoint chain, as persisted by the delta store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainRecord {
    /// A complete image. `chain_crc` = link(CHAIN_SEED, crc32(image)).
    Full {
        /// The chain link for this record.
        chain_crc: u32,
        /// The serialized checkpoint state, verbatim.
        image: Arc<[u8]>,
    },
    /// A delta against the previous record in commit order.
    Delta {
        /// Sequence number of the checkpoint whose image is the base.
        base_seq: u64,
        /// link(previous record's chain CRC, patch.image_crc).
        chain_crc: u32,
        /// The dirty regions.
        patch: DeltaPatch,
    },
}

impl ChainRecord {
    /// Which kind of record this is.
    pub fn kind(&self) -> RecordKind {
        match self {
            ChainRecord::Full { .. } => RecordKind::Full,
            ChainRecord::Delta { .. } => RecordKind::Delta,
        }
    }

    /// The chain-link CRC carried by the record.
    pub fn chain_crc(&self) -> u32 {
        match self {
            ChainRecord::Full { chain_crc, .. } | ChainRecord::Delta { chain_crc, .. } => {
                *chain_crc
            }
        }
    }

    /// Exact length of [`synergy_codec::to_bytes`] for this record, computed
    /// without serializing (the simulator accounts bytes through this on
    /// every commit, so it must be allocation-free).
    pub fn encoded_len(&self) -> u64 {
        match self {
            // enum tag + chain_crc + (len prefix + image bytes)
            ChainRecord::Full { image, .. } => 4 + 4 + 8 + image.len() as u64,
            ChainRecord::Delta { patch, .. } => {
                // enum tag + base_seq + chain_crc + base_crc + image_crc +
                // new_len + region count, then per region offset + len
                // prefix + bytes.
                let regions: u64 = patch
                    .regions
                    .iter()
                    .map(|r| 8 + 8 + r.bytes.len() as u64)
                    .sum();
                4 + 8 + 4 + 4 + 4 + 8 + 8 + regions
            }
        }
    }
}

impl Codec for ChainRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChainRecord::Full { chain_crc, image } => {
                0u32.encode(out);
                chain_crc.encode(out);
                image.encode(out);
            }
            ChainRecord::Delta {
                base_seq,
                chain_crc,
                patch,
            } => {
                1u32.encode(out);
                base_seq.encode(out);
                chain_crc.encode(out);
                patch.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(ChainRecord::Full {
                chain_crc: u32::decode(r)?,
                image: Arc::<[u8]>::decode(r)?,
            }),
            1 => Ok(ChainRecord::Delta {
                base_seq: u64::decode(r)?,
                chain_crc: u32::decode(r)?,
                patch: DeltaPatch::decode(r)?,
            }),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

/// What one committed checkpoint cost through the chain format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordCost {
    /// Whether the record was a full image or a delta.
    pub kind: RecordKind,
    /// Bytes the chain format persists for this commit.
    pub encoded_bytes: u64,
    /// Bytes a full-image scheme would have persisted (the state size).
    pub full_bytes: u64,
}

/// The last committed image, as the codec and the walker track it.
#[derive(Clone, Debug)]
struct LastImage {
    seq: u64,
    image: Arc<[u8]>,
    crc: u32,
    chain_crc: u32,
}

/// Stateful encoder for the checkpoint chain: full image every `k`
/// committed records, deltas between.
#[derive(Clone, Debug)]
pub struct CheckpointCodec {
    k: u32,
    deltas_since_full: u32,
    last: Option<LastImage>,
}

impl CheckpointCodec {
    /// Creates a codec emitting a full image every `k` records (`k = 1`
    /// degenerates to the full-image scheme).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "full-image cadence k must be at least 1");
        CheckpointCodec {
            k,
            deltas_since_full: 0,
            last: None,
        }
    }

    /// The full-image cadence.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The kind the *next* committed checkpoint will be encoded as.
    pub fn next_kind(&self) -> RecordKind {
        match &self.last {
            Some(_) if self.deltas_since_full < self.k - 1 => RecordKind::Delta,
            _ => RecordKind::Full,
        }
    }

    /// Encodes `ckpt` as the next chain record **without** advancing the
    /// codec: the adapted-TB write may be replaced or torn before it
    /// commits, so state only moves in
    /// [`note_committed`](Self::note_committed).
    pub fn encode_record(&self, ckpt: &Checkpoint) -> ChainRecord {
        let image = ckpt.shared_data();
        match (self.next_kind(), &self.last) {
            (RecordKind::Delta, Some(last)) => {
                let patch = DeltaPatch::diff(&last.image, &image);
                ChainRecord::Delta {
                    base_seq: last.seq,
                    chain_crc: chain_link(last.chain_crc, patch.image_crc),
                    patch,
                }
            }
            _ => ChainRecord::Full {
                chain_crc: chain_link(CHAIN_SEED, crc32(&image)),
                image,
            },
        }
    }

    /// Advances the codec past a committed checkpoint.
    pub fn note_committed(&mut self, ckpt: &Checkpoint, kind: RecordKind) {
        let image = ckpt.shared_data();
        let crc = crc32(&image);
        let chain_crc = match (kind, &self.last) {
            (RecordKind::Delta, Some(last)) => {
                self.deltas_since_full += 1;
                chain_link(last.chain_crc, crc)
            }
            _ => {
                self.deltas_since_full = 0;
                chain_link(CHAIN_SEED, crc)
            }
        };
        self.last = Some(LastImage {
            seq: ckpt.seq(),
            image,
            crc,
            chain_crc,
        });
    }

    /// Accounts what persisting `ckpt` through the chain format costs, and
    /// advances the codec — the simulator's per-commit hook. Allocation-free
    /// in steady state: the retained image is a refcount bump of the
    /// checkpoint's shared bytes and the delta size is computed from dirty
    /// spans without materializing them.
    pub fn measure_committed(&mut self, ckpt: &Checkpoint) -> RecordCost {
        let image = ckpt.shared_data();
        let full_bytes = image.len() as u64;
        let kind = self.next_kind();
        let encoded_bytes = match (kind, &self.last) {
            (RecordKind::Delta, Some(last)) => {
                let mut regions = 0u64;
                let mut region_bytes = 0u64;
                crate::delta::dirty_spans(&last.image, &image, |_, len| {
                    regions += 1;
                    region_bytes += len as u64;
                });
                4 + 8 + 4 + 4 + 4 + 8 + 8 + regions * 16 + region_bytes
            }
            _ => 4 + 4 + 8 + full_bytes,
        };
        self.note_committed(ckpt, kind);
        RecordCost {
            kind,
            encoded_bytes,
            full_bytes,
        }
    }

    /// Forgets the chain position: the next record will be a full image.
    /// Called after a reload that found orphaned records, so the chain
    /// self-heals instead of extending a damaged suffix.
    pub fn force_full(&mut self) {
        self.last = None;
        self.deltas_since_full = 0;
    }
}

/// Replays chain records in commit order, reconstructing images and
/// refusing — never serving — any record whose links do not verify.
#[derive(Debug, Default)]
pub struct ChainWalker {
    last: Option<LastImage>,
    deltas_since_full: u32,
    orphans: u64,
}

impl ChainWalker {
    /// Creates a walker with no chain position.
    pub fn new() -> Self {
        ChainWalker::default()
    }

    /// Records fed so far that could not be chained (corrupt link, missing
    /// base, wrong base). Orphans are *dropped*, never served: a partial
    /// chain must fall back to the last intact full image.
    pub fn orphans(&self) -> u64 {
        self.orphans
    }

    /// Counts a record that never reached [`feed`](Self::feed) — e.g. one
    /// whose bytes did not decode as a [`ChainRecord`] at all. The chain
    /// position is unchanged, so later deltas orphan on their base check,
    /// and [`into_codec`](Self::into_codec) restarts with a full image.
    pub fn note_orphan(&mut self) {
        self.orphans += 1;
    }

    /// Feeds the next record in commit order. Returns the reconstructed
    /// image when every link verifies, `None` (counting an orphan) when it
    /// does not. After an orphaned delta, later deltas fail their base
    /// check until the next full image restarts the chain.
    pub fn feed(&mut self, seq: u64, record: &ChainRecord) -> Option<Arc<[u8]>> {
        match record {
            ChainRecord::Full { chain_crc, image } => {
                let crc = crc32(image);
                if *chain_crc != chain_link(CHAIN_SEED, crc) {
                    self.orphans += 1;
                    return None;
                }
                self.deltas_since_full = 0;
                self.last = Some(LastImage {
                    seq,
                    image: Arc::clone(image),
                    crc,
                    chain_crc: *chain_crc,
                });
                Some(Arc::clone(image))
            }
            ChainRecord::Delta {
                base_seq,
                chain_crc,
                patch,
            } => {
                let Some(last) = &self.last else {
                    self.orphans += 1;
                    return None;
                };
                if *base_seq != last.seq
                    || patch.base_crc != last.crc
                    || *chain_crc != chain_link(last.chain_crc, patch.image_crc)
                {
                    self.orphans += 1;
                    return None;
                }
                let Ok(image) = patch.apply(&last.image) else {
                    self.orphans += 1;
                    return None;
                };
                let image: Arc<[u8]> = image.into();
                self.deltas_since_full += 1;
                self.last = Some(LastImage {
                    seq,
                    image: Arc::clone(&image),
                    crc: patch.image_crc,
                    chain_crc: *chain_crc,
                });
                Some(image)
            }
        }
    }

    /// Hands the walker's final position to a codec so encoding continues
    /// the chain exactly where the reload left it. If any record was
    /// orphaned the codec restarts with a full image instead — the damaged
    /// suffix is never extended.
    pub fn into_codec(self, k: u32) -> CheckpointCodec {
        let mut codec = CheckpointCodec::new(k);
        if self.orphans == 0 {
            codec.deltas_since_full = self.deltas_since_full.min(k.saturating_sub(1));
            codec.last = self.last;
        }
        codec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_des::SimTime;

    fn ckpt(seq: u64, state: &[u8]) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "t", &state.to_vec()).unwrap()
    }

    fn image(n: usize, tweak: u8) -> Vec<u8> {
        let mut v = vec![0u8; n];
        v[n / 2] = tweak;
        v
    }

    #[test]
    fn cadence_is_full_every_k() {
        let mut codec = CheckpointCodec::new(3);
        let mut kinds = Vec::new();
        for seq in 1..=7u64 {
            let c = ckpt(seq, &image(500, seq as u8));
            kinds.push(codec.measure_committed(&c).kind);
        }
        use RecordKind::{Delta, Full};
        assert_eq!(kinds, [Full, Delta, Delta, Full, Delta, Delta, Full]);
    }

    #[test]
    fn measure_matches_real_encoding() {
        let mut measure = CheckpointCodec::new(4);
        let mut encode = CheckpointCodec::new(4);
        for seq in 1..=9u64 {
            let c = ckpt(seq, &image(2000, seq as u8));
            let record = encode.encode_record(&c);
            let serialized = synergy_codec::to_bytes(&record).unwrap();
            assert_eq!(
                record.encoded_len(),
                serialized.len() as u64,
                "encoded_len exact at seq {seq}"
            );
            let cost = measure.measure_committed(&c);
            assert_eq!(cost.kind, record.kind());
            assert_eq!(
                cost.encoded_bytes,
                serialized.len() as u64,
                "measure matches serialization at seq {seq}"
            );
            encode.note_committed(&c, record.kind());
        }
    }

    #[test]
    fn walker_replays_what_codec_encodes() {
        let mut codec = CheckpointCodec::new(3);
        let mut records = Vec::new();
        let mut images = Vec::new();
        for seq in 1..=8u64 {
            let img = image(700, seq as u8);
            let c = ckpt(seq, &img);
            let record = codec.encode_record(&c);
            codec.note_committed(&c, record.kind());
            records.push((c.seq(), record));
            images.push(c.shared_data());
        }
        let mut walker = ChainWalker::new();
        for ((seq, record), want) in records.iter().zip(&images) {
            let got = walker.feed(*seq, record).expect("intact chain replays");
            assert_eq!(&got, want);
        }
        assert_eq!(walker.orphans(), 0);
    }

    #[test]
    fn orphaned_delta_drops_suffix_until_next_full() {
        let mut codec = CheckpointCodec::new(4);
        let mut records = Vec::new();
        for seq in 1..=8u64 {
            let c = ckpt(seq, &image(600, seq as u8));
            let record = codec.encode_record(&c);
            codec.note_committed(&c, record.kind());
            records.push((c.seq(), record));
        }
        // Drop record 2 (a delta): 3 and 4 are orphaned, 5 (full) recovers.
        let mut walker = ChainWalker::new();
        let mut served = Vec::new();
        for (seq, record) in records.iter().filter(|(seq, _)| *seq != 2) {
            if walker.feed(*seq, record).is_some() {
                served.push(*seq);
            }
        }
        assert_eq!(served, [1, 5, 6, 7, 8]);
        assert_eq!(walker.orphans(), 2);
    }

    #[test]
    fn walker_resumes_codec_midsegment() {
        let mut codec = CheckpointCodec::new(4);
        let mut records = Vec::new();
        for seq in 1..=6u64 {
            let c = ckpt(seq, &image(400, seq as u8));
            let record = codec.encode_record(&c);
            codec.note_committed(&c, record.kind());
            records.push((c.seq(), record));
        }
        let mut walker = ChainWalker::new();
        for (seq, record) in &records {
            walker.feed(*seq, record);
        }
        let mut resumed = walker.into_codec(4);
        // Records 5, 6 were full + delta; 7 and 8 continue the segment.
        assert_eq!(resumed.next_kind(), RecordKind::Delta);
        let c7 = ckpt(7, &image(400, 77));
        let r7 = resumed.encode_record(&c7);
        assert_eq!(r7.kind(), RecordKind::Delta);
        resumed.note_committed(&c7, r7.kind());
        let c8 = ckpt(8, &image(400, 78));
        assert_eq!(resumed.encode_record(&c8).kind(), RecordKind::Delta);
        resumed.note_committed(&c8, RecordKind::Delta);
        let c9 = ckpt(9, &image(400, 79));
        assert_eq!(
            resumed.encode_record(&c9).kind(),
            RecordKind::Full,
            "cadence position survives the reload"
        );
    }

    #[test]
    fn orphaned_reload_forces_full_restart() {
        let mut walker = ChainWalker::new();
        // A lone delta with no base: orphan.
        let patch = DeltaPatch::diff(b"aaaa", b"aaab");
        walker.feed(
            2,
            &ChainRecord::Delta {
                base_seq: 1,
                chain_crc: 0,
                patch,
            },
        );
        assert_eq!(walker.orphans(), 1);
        let codec = walker.into_codec(8);
        assert_eq!(codec.next_kind(), RecordKind::Full);
    }
}
