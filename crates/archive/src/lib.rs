//! Incremental checkpoints and a tiered checkpoint archive.
//!
//! The paper's adapted TB protocol writes a **full** checkpoint image to
//! stable storage every interval. This crate keeps the protocol untouched
//! and changes only what a stable write *costs* and where the bytes *live*:
//!
//! * **Delta checkpoints** ([`delta`], [`codec`], [`store`]) — a full image
//!   every `k` commits, CRC-chained dirty-region deltas between.
//!   [`DeltaStable`] layers the format over any [`Stable`] backend
//!   (in-memory for the simulator, [`DiskStableStore`] for the cluster)
//!   and reconstructs the original checkpoints byte-identically on reload,
//!   falling back past any torn or rotten suffix — a damaged chain
//!   degrades to an older epoch, never to a wrong image.
//! * **Tiered archive** ([`object`], [`tiered`]) — [`TieredStore`] keeps
//!   local disk as tier 0 and mirrors every committed record file to an
//!   object store through a background uploader with unlimited retries.
//!   A node whose local disk is wiped rehydrates entirely from the
//!   archive tier. [`FaultyObjectStore`] puts the whole ladder under a
//!   seeded fault plan — failed PUTs, half-uploaded objects, latency,
//!   outage windows — for the chaos harness.
//!
//! The layers compose: the cluster runs
//! `DeltaStable<TieredStore>` under its disk-fault wrapper, the simulator
//! accounts the same format through [`CheckpointCodec`], and byte-identical
//! recovery is checked across all three levels.
//!
//! [`Stable`]: synergy_storage::Stable
//! [`DiskStableStore`]: synergy_storage::DiskStableStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod delta;
pub mod object;
pub mod store;
pub mod tiered;

pub use codec::{ChainRecord, ChainWalker, CheckpointCodec, RecordCost, RecordKind};
pub use delta::{chain_link, DeltaError, DeltaPatch, DirtyRegion, CHAIN_SEED, REGION_SIZE};
pub use object::{
    ArchiveFaultPlan, DirObjectStore, FaultyObjectStore, MemObjectStore, ObjectStore,
    ObjectStoreError, OutageWindow,
};
pub use store::{DeltaStable, DeltaStats, StableHistory};
pub use tiered::{ArchiveHandle, ArchiveStats, TieredStore};
