//! The archive tier's object-store abstraction and its fault-injected
//! wrapper.
//!
//! The interface is the minimal blob contract a checkpoint archive needs —
//! `put` / `get` / `list` / `delete` over string keys — with two backends:
//! [`MemObjectStore`] for in-process tests and [`DirObjectStore`] for the
//! cluster runtime (a directory of flat files that survives process death).
//! `DirObjectStore::put` is **deliberately non-atomic** (no temp-file +
//! rename): a real object store can expose a half-uploaded blob, and the
//! recovery path must tolerate exactly that, so the simulation does not
//! paper over it.
//!
//! [`FaultyObjectStore`] wraps any backend with a seeded
//! [`ArchiveFaultPlan`]: per-operation failure probabilities, partial PUTs
//! (a prefix lands, the call errors), fixed per-call latency, and wall-clock
//! outage windows during which the whole tier is unreachable. The same seed
//! reproduces the same fault sequence, which is what lets the chaos
//! harness's shrinker re-run a failing campaign minus one axis.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use core::fmt;

use synergy_codec::codec_struct;
use synergy_des::DetRng;

/// Errors from the archive tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectStoreError {
    /// The tier is unreachable (injected outage, injected failure, or a
    /// real connectivity error). Retryable.
    Unavailable(String),
    /// The backend failed at the operating-system level.
    Io(String),
}

impl fmt::Display for ObjectStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectStoreError::Unavailable(e) => write!(f, "archive tier unavailable: {e}"),
            ObjectStoreError::Io(e) => write!(f, "archive tier i/o error: {e}"),
        }
    }
}

impl std::error::Error for ObjectStoreError {}

/// The blob contract the checkpoint archive runs on.
pub trait ObjectStore: Send {
    /// Stores `bytes` under `key`, replacing any previous object.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectStoreError`] on failure; the object may then be
    /// absent **or half-written** — readers must CRC-verify.
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<(), ObjectStoreError>;

    /// Fetches the object under `key`, `None` if absent.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectStoreError`] when the tier cannot answer.
    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ObjectStoreError>;

    /// All keys, ascending.
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectStoreError`] when the tier cannot answer.
    fn list(&mut self) -> Result<Vec<String>, ObjectStoreError>;

    /// Removes the object under `key` (absent is not an error).
    ///
    /// # Errors
    ///
    /// Returns an [`ObjectStoreError`] when the tier cannot answer.
    fn delete(&mut self, key: &str) -> Result<(), ObjectStoreError>;
}

/// In-memory object store for tests and the simulator.
#[derive(Clone, Debug, Default)]
pub struct MemObjectStore {
    objects: BTreeMap<String, Vec<u8>>,
}

impl MemObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemObjectStore::default()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

impl ObjectStore for MemObjectStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<(), ObjectStoreError> {
        self.objects.insert(key.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ObjectStoreError> {
        Ok(self.objects.get(key).cloned())
    }

    fn list(&mut self) -> Result<Vec<String>, ObjectStoreError> {
        Ok(self.objects.keys().cloned().collect())
    }

    fn delete(&mut self, key: &str) -> Result<(), ObjectStoreError> {
        self.objects.remove(key);
        Ok(())
    }
}

/// A directory-of-flat-files object store: the cluster's simulated remote
/// tier, durable across process death. Writes are plain `fs::write` — no
/// temp-file + rename — so a crash or injected partial PUT leaves a
/// half-written object, as a real object store can.
#[derive(Debug)]
pub struct DirObjectStore {
    dir: PathBuf,
}

impl DirObjectStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`ObjectStoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ObjectStoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| ObjectStoreError::Io(format!("create {}: {e}", dir.display())))?;
        Ok(DirObjectStore { dir })
    }

    /// The directory backing this store.
    pub fn path(&self) -> &std::path::Path {
        &self.dir
    }

    fn key_path(&self, key: &str) -> Result<PathBuf, ObjectStoreError> {
        if key.is_empty() || key.contains(['/', '\\']) || key.contains("..") {
            return Err(ObjectStoreError::Io(format!("invalid object key {key:?}")));
        }
        Ok(self.dir.join(key))
    }
}

impl ObjectStore for DirObjectStore {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<(), ObjectStoreError> {
        let path = self.key_path(key)?;
        fs::write(&path, bytes)
            .map_err(|e| ObjectStoreError::Io(format!("put {}: {e}", path.display())))
    }

    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ObjectStoreError> {
        let path = self.key_path(key)?;
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(ObjectStoreError::Io(format!("get {}: {e}", path.display()))),
        }
    }

    fn list(&mut self) -> Result<Vec<String>, ObjectStoreError> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| ObjectStoreError::Io(format!("list {}: {e}", self.dir.display())))?;
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry
                .map_err(|e| ObjectStoreError::Io(format!("list {}: {e}", self.dir.display())))?;
            if let Ok(name) = entry.file_name().into_string() {
                keys.push(name);
            }
        }
        keys.sort();
        Ok(keys)
    }

    fn delete(&mut self, key: &str) -> Result<(), ObjectStoreError> {
        let path = self.key_path(key)?;
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(ObjectStoreError::Io(format!(
                "delete {}: {e}",
                path.display()
            ))),
        }
    }
}

/// A wall-clock window (milliseconds since the faulty store was created)
/// during which the archive tier is unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutageWindow {
    /// Window start, ms since store creation.
    pub start_ms: u64,
    /// Window end (exclusive), ms since store creation.
    pub end_ms: u64,
}

codec_struct!(OutageWindow { start_ms, end_ms });

/// Seeded fault schedule for an archive tier, serializable so the chaos
/// orchestrator can hand it to a node process on the command line.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveFaultPlan {
    /// Seed for the per-operation fault draws.
    pub seed: u64,
    /// Probability a PUT fails outright (nothing lands).
    pub put_fail: f64,
    /// Probability a PUT lands a half-written object and then errors.
    pub put_partial: f64,
    /// Probability a GET fails.
    pub get_fail: f64,
    /// Fixed latency added to every operation, milliseconds.
    pub latency_ms: u64,
    /// Wall-clock windows during which every operation is refused.
    pub outages: Vec<OutageWindow>,
}

codec_struct!(ArchiveFaultPlan {
    seed,
    put_fail,
    put_partial,
    get_fail,
    latency_ms,
    outages
});

impl ArchiveFaultPlan {
    /// A plan that injects nothing.
    pub fn inert() -> Self {
        ArchiveFaultPlan {
            seed: 0,
            put_fail: 0.0,
            put_partial: 0.0,
            get_fail: 0.0,
            latency_ms: 0,
            outages: Vec::new(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.put_fail == 0.0
            && self.put_partial == 0.0
            && self.get_fail == 0.0
            && self.latency_ms == 0
            && self.outages.is_empty()
    }
}

impl Default for ArchiveFaultPlan {
    fn default() -> Self {
        ArchiveFaultPlan::inert()
    }
}

/// An object store wrapped with a seeded [`ArchiveFaultPlan`].
#[derive(Debug)]
pub struct FaultyObjectStore<O: ObjectStore> {
    inner: O,
    plan: ArchiveFaultPlan,
    rng: DetRng,
    started: Instant,
    injected: u64,
}

impl<O: ObjectStore> FaultyObjectStore<O> {
    /// Wraps `inner` under `plan`. Outage windows are measured from this
    /// call.
    pub fn new(inner: O, plan: ArchiveFaultPlan) -> Self {
        let rng = DetRng::new(plan.seed).stream("archive-faults");
        FaultyObjectStore {
            inner,
            plan,
            rng,
            started: Instant::now(),
            injected: 0,
        }
    }

    /// Faults injected so far (failed/partial operations and refusals
    /// inside outage windows).
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// Checks outage windows and applies latency; the common prefix of
    /// every operation.
    fn admit(&mut self, op: &str) -> Result<(), ObjectStoreError> {
        let elapsed_ms = self.started.elapsed().as_millis() as u64;
        for w in &self.plan.outages {
            if elapsed_ms >= w.start_ms && elapsed_ms < w.end_ms {
                self.injected += 1;
                return Err(ObjectStoreError::Unavailable(format!(
                    "injected outage [{}, {}) ms refuses {op} at {elapsed_ms} ms",
                    w.start_ms, w.end_ms
                )));
            }
        }
        if self.plan.latency_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.plan.latency_ms));
        }
        Ok(())
    }

    fn draw(&mut self, p: f64) -> bool {
        p > 0.0 && self.rng.gen_bool(p)
    }
}

impl<O: ObjectStore> ObjectStore for FaultyObjectStore<O> {
    fn put(&mut self, key: &str, bytes: &[u8]) -> Result<(), ObjectStoreError> {
        self.admit("put")?;
        if self.draw(self.plan.put_fail) {
            self.injected += 1;
            return Err(ObjectStoreError::Unavailable(format!(
                "injected put failure for {key}"
            )));
        }
        if self.draw(self.plan.put_partial) {
            // The realistic half-upload: a prefix lands, the call errors.
            self.injected += 1;
            self.inner.put(key, &bytes[..bytes.len() / 2])?;
            return Err(ObjectStoreError::Unavailable(format!(
                "injected partial put for {key}"
            )));
        }
        self.inner.put(key, bytes)
    }

    fn get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ObjectStoreError> {
        self.admit("get")?;
        if self.draw(self.plan.get_fail) {
            self.injected += 1;
            return Err(ObjectStoreError::Unavailable(format!(
                "injected get failure for {key}"
            )));
        }
        self.inner.get(key)
    }

    fn list(&mut self) -> Result<Vec<String>, ObjectStoreError> {
        self.admit("list")?;
        self.inner.list()
    }

    fn delete(&mut self, key: &str) -> Result<(), ObjectStoreError> {
        self.admit("delete")?;
        self.inner.delete(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("syarc-obj-{}-{tag}-{n}", std::process::id()))
    }

    #[test]
    fn mem_store_roundtrips() {
        let mut s = MemObjectStore::new();
        s.put("b", b"two").unwrap();
        s.put("a", b"one").unwrap();
        assert_eq!(s.get("a").unwrap().unwrap(), b"one");
        assert_eq!(s.get("missing").unwrap(), None);
        assert_eq!(s.list().unwrap(), ["a", "b"], "ascending");
        s.delete("a").unwrap();
        s.delete("a").unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn dir_store_survives_reopen_and_rejects_bad_keys() {
        let dir = tmp_dir("reopen");
        {
            let mut s = DirObjectStore::open(&dir).unwrap();
            s.put("ckpt-0000000001.bin", b"payload").unwrap();
            assert!(s.put("../escape", b"x").is_err());
            assert!(s.put("a/b", b"x").is_err());
            assert!(s.put("", b"x").is_err());
        }
        let mut s = DirObjectStore::open(&dir).unwrap();
        assert_eq!(s.list().unwrap(), ["ckpt-0000000001.bin"]);
        assert_eq!(s.get("ckpt-0000000001.bin").unwrap().unwrap(), b"payload");
        s.delete("ckpt-0000000001.bin").unwrap();
        assert!(s.list().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let mut s = FaultyObjectStore::new(MemObjectStore::new(), ArchiveFaultPlan::inert());
        assert!(ArchiveFaultPlan::inert().is_inert());
        for i in 0..50 {
            s.put(&format!("k{i}"), b"v").unwrap();
        }
        assert_eq!(s.injected_faults(), 0);
        assert_eq!(s.list().unwrap().len(), 50);
    }

    #[test]
    fn certain_put_failure_lands_nothing() {
        let plan = ArchiveFaultPlan {
            put_fail: 1.0,
            ..ArchiveFaultPlan::inert()
        };
        let mut s = FaultyObjectStore::new(MemObjectStore::new(), plan);
        for i in 0..10 {
            assert!(s.put(&format!("k{i}"), b"payload").is_err());
        }
        assert!(s.list().unwrap().is_empty(), "failed puts land nothing");
        assert_eq!(s.injected_faults(), 10);
    }

    #[test]
    fn partial_put_lands_a_prefix_and_errors() {
        let plan = ArchiveFaultPlan {
            put_partial: 1.0,
            ..ArchiveFaultPlan::inert()
        };
        let mut s = FaultyObjectStore::new(MemObjectStore::new(), plan);
        assert!(s.put("k", b"0123456789").is_err());
        assert_eq!(
            s.get("k").unwrap().unwrap(),
            b"01234",
            "half the object is visible — readers must CRC-verify"
        );
    }

    #[test]
    fn certain_get_failure_blocks_reads_not_writes() {
        let plan = ArchiveFaultPlan {
            get_fail: 1.0,
            ..ArchiveFaultPlan::inert()
        };
        let mut s = FaultyObjectStore::new(MemObjectStore::new(), plan);
        s.put("k", b"v").unwrap();
        assert!(s.get("k").is_err());
        assert_eq!(s.list().unwrap(), ["k"]);
    }

    #[test]
    fn outage_window_refuses_everything_then_clears() {
        let plan = ArchiveFaultPlan {
            outages: vec![OutageWindow {
                start_ms: 0,
                end_ms: 60,
            }],
            ..ArchiveFaultPlan::inert()
        };
        let mut s = FaultyObjectStore::new(MemObjectStore::new(), plan);
        assert!(matches!(
            s.put("k", b"v"),
            Err(ObjectStoreError::Unavailable(_))
        ));
        assert!(s.list().is_err());
        std::thread::sleep(Duration::from_millis(80));
        s.put("k", b"v").unwrap();
        assert_eq!(s.get("k").unwrap().unwrap(), b"v");
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_sequence() {
        let plan = ArchiveFaultPlan {
            seed: 7,
            put_fail: 0.5,
            ..ArchiveFaultPlan::inert()
        };
        let mut a = FaultyObjectStore::new(MemObjectStore::new(), plan.clone());
        let mut b = FaultyObjectStore::new(MemObjectStore::new(), plan);
        let pattern_a: Vec<bool> = (0..40)
            .map(|i| a.put(&format!("k{i}"), b"v").is_ok())
            .collect();
        let pattern_b: Vec<bool> = (0..40)
            .map(|i| b.put(&format!("k{i}"), b"v").is_ok())
            .collect();
        assert_eq!(pattern_a, pattern_b);
        assert!(pattern_a.iter().any(|ok| *ok) && pattern_a.iter().any(|ok| !*ok));
    }

    #[test]
    fn plan_roundtrips_through_the_codec() {
        let plan = ArchiveFaultPlan {
            seed: 3,
            put_fail: 0.25,
            put_partial: 0.1,
            get_fail: 0.05,
            latency_ms: 2,
            outages: vec![OutageWindow {
                start_ms: 100,
                end_ms: 400,
            }],
        };
        let bytes = synergy_codec::to_bytes(&plan).unwrap();
        let back: ArchiveFaultPlan = synergy_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, plan);
    }
}
