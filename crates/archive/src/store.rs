//! [`DeltaStable`]: the incremental-checkpoint layer over any stable store.
//!
//! The layer is format-only — it persists each checkpoint's state as a
//! [`ChainRecord`] (full image every `k` commits, CRC-chained dirty-region
//! deltas between) while preserving the backend's two-phase write semantics
//! untouched. The inner store still sees ordinary [`Checkpoint`]s with the
//! *original* sequence number, timestamp and label (only the state bytes are
//! the encoded chain record), so on disk the files remain `ckpt-*.bin`
//! frames and every torn-write / bit-rot / retention mechanism of
//! [`DiskStableStore`] keeps working unchanged.
//!
//! On reload the layer walks the backend's committed history **in commit
//! order**, CRC-verifying every chain link, and reconstructs the original
//! checkpoints byte-identically. Any record that fails a link check is an
//! *orphan*: it is dropped — never served — and recovery falls back to the
//! newest intact prefix, exactly like the disk store's handling of a
//! corrupt frame, one layer up.

use synergy_storage::{
    Checkpoint, DiskStableStore, Stable, StableStats, StableStore, StableWriteError,
};

use crate::codec::{ChainRecord, ChainWalker, CheckpointCodec, RecordKind};

/// A stable store whose committed history can be enumerated in commit
/// order — what [`DeltaStable`] needs to rebuild its chain on reload.
///
/// Commit order matters (and differs from sequence-number order): after a
/// global rollback the TB protocol reuses epoch numbers, and the delta
/// chain continues from the most recently *committed* image regardless of
/// its sequence number.
pub trait StableHistory: Stable {
    /// Shared handles to every retained committed checkpoint, oldest first.
    fn committed_records(&self) -> Vec<Checkpoint>;
}

impl StableHistory for StableStore {
    fn committed_records(&self) -> Vec<Checkpoint> {
        self.committed_shared()
    }
}

impl StableHistory for DiskStableStore {
    fn committed_records(&self) -> Vec<Checkpoint> {
        self.committed_shared()
    }
}

/// Counters kept by a [`DeltaStable`] about the chain format itself (the
/// backend's write counters stay in [`StableStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Committed records carrying a full image.
    pub full_records: u64,
    /// Committed records carrying a dirty-region delta.
    pub delta_records: u64,
    /// Records dropped on reload because a chain link failed to verify
    /// (bit-rot in a delta, a missing base, a wrong base).
    pub chain_orphans: u64,
    /// Bytes actually persisted through the chain format.
    pub encoded_bytes: u64,
    /// Bytes a full-image-every-commit scheme would have persisted.
    pub full_image_bytes: u64,
}

/// Incremental-checkpoint layer over a stable store: full image every `k`
/// commits, CRC-chained deltas between, byte-identical reconstruction on
/// reload with fallback past any damaged suffix.
///
/// The backend must retain at least `retain + k - 1` records: evicting a
/// full image while deltas chained on it are still retained orphans those
/// deltas on the next reload (handled gracefully — they are dropped and the
/// chain restarts at the next full image — but it shrinks the usable
/// history).
#[derive(Debug)]
pub struct DeltaStable<S: StableHistory> {
    inner: S,
    codec: CheckpointCodec,
    /// Reconstructed original checkpoints, oldest first, commit order.
    committed: Vec<Checkpoint>,
    /// The original checkpoint and its encoded record for the in-flight
    /// two-phase write.
    pending: Option<(Checkpoint, ChainRecord)>,
    retain: usize,
    delta_stats: DeltaStats,
    scratch: Vec<u8>,
}

impl<S: StableHistory> DeltaStable<S> {
    /// Opens the layer over `inner`, emitting a full image every `k`
    /// commits and retaining the last 8 reconstructed checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn open(inner: S, k: u32) -> Self {
        Self::open_with_retention(inner, k, 8)
    }

    /// Opens the layer over `inner`, replaying the backend's committed
    /// history through the chain walker. Records whose links do not verify
    /// are dropped and counted in [`DeltaStats::chain_orphans`]; if any
    /// were, the next record is forced to be a full image so the damaged
    /// suffix is never extended.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `retain` is zero.
    pub fn open_with_retention(inner: S, k: u32, retain: usize) -> Self {
        assert!(retain > 0, "must retain at least one checkpoint");
        let mut walker = ChainWalker::new();
        let mut committed = Vec::new();
        for wrapped in inner.committed_records() {
            let Ok(record) = wrapped.decode::<ChainRecord>() else {
                walker.note_orphan();
                continue;
            };
            if let Some(image) = walker.feed(wrapped.seq(), &record) {
                committed.push(Checkpoint::from_raw_parts(
                    wrapped.seq(),
                    wrapped.taken_at(),
                    wrapped.label(),
                    image,
                ));
            }
        }
        if committed.len() > retain {
            let excess = committed.len() - retain;
            committed.drain(..excess);
        }
        let orphans = walker.orphans();
        DeltaStable {
            inner,
            codec: walker.into_codec(k),
            committed,
            pending: None,
            retain,
            delta_stats: DeltaStats {
                chain_orphans: orphans,
                ..DeltaStats::default()
            },
            scratch: Vec::new(),
        }
    }

    /// The backend store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the layer, returning the backend store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// Chain-format counters.
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta_stats
    }

    /// The kind the next committed record will be — [`RecordKind::Full`]
    /// after a reload that found orphans, regardless of cadence position.
    pub fn next_record_kind(&self) -> RecordKind {
        self.codec.next_kind()
    }

    /// Wraps `original` as an inner checkpoint whose state bytes are the
    /// encoded chain `record`, preserving seq / timestamp / label.
    fn wrap(
        &mut self,
        original: &Checkpoint,
        record: &ChainRecord,
    ) -> Result<Checkpoint, StableWriteError> {
        Checkpoint::encode_with_scratch(
            original.seq(),
            original.taken_at(),
            original.label(),
            record,
            &mut self.scratch,
        )
        .map_err(|e| StableWriteError::Io(format!("encode chain record: {e}")))
    }
}

impl<S: StableHistory> Stable for DeltaStable<S> {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.pending.is_some() {
            return Err(StableWriteError::WriteAlreadyInProgress);
        }
        let record = self.codec.encode_record(&checkpoint);
        let wrapped = self.wrap(&checkpoint, &record)?;
        self.inner.begin_write(wrapped)?;
        self.pending = Some((checkpoint, record));
        Ok(())
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        if self.pending.is_none() {
            return Err(StableWriteError::NoWriteInProgress);
        }
        // The codec only advances on commit, so the replacement is diffed
        // against the same base as the write it replaces.
        let record = self.codec.encode_record(&checkpoint);
        let wrapped = self.wrap(&checkpoint, &record)?;
        self.inner.replace_in_progress(wrapped)?;
        self.pending = Some((checkpoint, record));
        Ok(())
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        if self.pending.is_none() {
            return Err(StableWriteError::NoWriteInProgress);
        }
        // A failed backend commit keeps the write in flight (the caller may
        // retry), so the pending pair is only consumed on success.
        self.inner.commit_write()?;
        let (original, record) = self.pending.take().expect("checked above");
        match record.kind() {
            RecordKind::Full => self.delta_stats.full_records += 1,
            RecordKind::Delta => self.delta_stats.delta_records += 1,
        }
        self.delta_stats.encoded_bytes += record.encoded_len();
        self.delta_stats.full_image_bytes += original.size_bytes() as u64;
        self.codec.note_committed(&original, record.kind());
        self.committed.push(original);
        if self.committed.len() > self.retain {
            let excess = self.committed.len() - self.retain;
            self.committed.drain(..excess);
        }
        Ok(())
    }

    fn abort_write(&mut self) -> bool {
        self.pending = None;
        self.inner.abort_write()
    }

    fn crash(&mut self) {
        self.pending = None;
        self.inner.crash();
    }

    fn is_writing(&self) -> bool {
        self.inner.is_writing()
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        self.committed.last().cloned()
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        self.committed
            .iter()
            .rev()
            .find(|c| c.seq() <= seq)
            .cloned()
    }

    fn stats(&self) -> StableStats {
        self.inner.stats()
    }
}

impl<S: StableHistory> StableHistory for DeltaStable<S> {
    fn committed_records(&self) -> Vec<Checkpoint> {
        self.committed.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use synergy_des::SimTime;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("syarc-store-{}-{tag}-{n}", std::process::id()))
    }

    /// A checkpoint whose state is a sizeable buffer with a small mutation
    /// per epoch — the shape delta encoding exists for.
    fn ckpt(seq: u64, tweak: u8) -> Checkpoint {
        let mut state = vec![0u8; 2048];
        state[100] = tweak;
        state[1900] = tweak.wrapping_add(1);
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "epoch", &state).unwrap()
    }

    fn commit(store: &mut impl Stable, c: Checkpoint) {
        store.begin_write(c).unwrap();
        store.commit_write().unwrap();
    }

    #[test]
    fn roundtrip_over_memory_store_is_byte_identical() {
        let mut s = DeltaStable::open(StableStore::with_retention(32), 4);
        let originals: Vec<_> = (1..=10).map(|seq| ckpt(seq, seq as u8)).collect();
        for c in &originals {
            commit(&mut s, c.clone());
        }
        assert_eq!(s.latest_shared().unwrap(), originals[9]);
        assert_eq!(s.latest_at_or_before_shared(7).unwrap(), originals[6]);
        let ds = s.delta_stats();
        assert_eq!(ds.full_records, 3, "seqs 1, 5, 9 at k=4");
        assert_eq!(ds.delta_records, 7);
        assert!(
            ds.encoded_bytes < ds.full_image_bytes / 2,
            "deltas must shrink the write volume: {ds:?}"
        );
    }

    #[test]
    fn reload_from_disk_reconstructs_chain_byte_identically() {
        let dir = tmp_dir("reload");
        let originals: Vec<_> = (1..=6).map(|seq| ckpt(seq, seq as u8)).collect();
        {
            let mut s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 3);
            for c in &originals {
                commit(&mut s, c.clone());
            }
        }
        let s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 3);
        assert_eq!(s.delta_stats().chain_orphans, 0);
        assert_eq!(s.latest_shared().unwrap(), originals[5]);
        assert_eq!(s.latest_at_or_before_shared(2).unwrap(), originals[1]);
        assert_eq!(s.committed_records(), originals);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_delta_falls_back_to_previous_checkpoint() {
        // Regression: a crash between begin and commit of a *delta* record
        // must fall back to the last committed checkpoint, exactly like a
        // torn full-image write — never load a partial chain.
        let dir = tmp_dir("torn-tail");
        let originals: Vec<_> = (1..=3).map(|seq| ckpt(seq, seq as u8)).collect();
        {
            let mut s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 4);
            for c in &originals {
                commit(&mut s, c.clone());
            }
            s.begin_write(ckpt(4, 44)).unwrap();
            assert_eq!(s.pending.as_ref().unwrap().1.kind(), RecordKind::Delta);
            // Dropped mid-write: inflight.tmp stays behind, like a SIGKILL.
        }
        let s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 4);
        assert_eq!(s.stats().torn_writes, 1, "backend detects the torn delta");
        assert_eq!(s.delta_stats().chain_orphans, 0, "committed chain intact");
        assert_eq!(s.latest_shared().unwrap(), originals[2]);
        assert_eq!(
            s.next_record_kind(),
            RecordKind::Delta,
            "intact chain resumes mid-segment"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_mid_chain_delta_falls_back_never_serves_partial_chain() {
        // Regression: bit-rot in a *mid-chain* delta must drop that record
        // and everything chained on it — recovery serves the intact prefix,
        // never a partially-reconstructed image.
        let dir = tmp_dir("rot-mid");
        let originals: Vec<_> = (1..=5).map(|seq| ckpt(seq, seq as u8)).collect();
        {
            let mut s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 8);
            for c in &originals {
                commit(&mut s, c.clone());
            }
        }
        // File index 2 holds the third record: the seq-3 delta.
        let victim = dir.join(DiskStableStore::record_file_name(2));
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&victim, &bytes).unwrap();
        let s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 8);
        assert_eq!(s.stats().corrupt_records, 1, "backend CRC catches the rot");
        assert_eq!(
            s.delta_stats().chain_orphans,
            2,
            "seq 4 and 5 chained on the rotted record are dropped"
        );
        assert_eq!(s.latest_shared().unwrap(), originals[1], "intact prefix");
        assert_eq!(s.committed_records(), originals[..2]);
        assert_eq!(
            s.next_record_kind(),
            RecordKind::Full,
            "damaged suffix is never extended"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_chain_link_is_refused_one_layer_above_frame_crc() {
        // A record whose frame and checkpoint CRCs verify but whose chain
        // link is wrong (tampering between layers) must still be orphaned.
        let mut s = DeltaStable::open(StableStore::with_retention(8), 4);
        commit(&mut s, ckpt(1, 1));
        let mut inner = s.into_inner();
        let bad = ChainRecord::Full {
            chain_crc: 0xDEAD_BEEF,
            image: ckpt(2, 2).shared_data(),
        };
        inner
            .begin_write(Checkpoint::encode(2, SimTime::from_nanos(2), "epoch", &bad).unwrap())
            .unwrap();
        inner.commit_write().unwrap();
        let s = DeltaStable::open(inner, 4);
        assert_eq!(s.delta_stats().chain_orphans, 1);
        assert_eq!(s.latest_shared().unwrap().seq(), 1);
    }

    #[test]
    fn replace_in_progress_rediffs_against_the_same_base() {
        let mut s = DeltaStable::open(StableStore::with_retention(8), 2);
        commit(&mut s, ckpt(1, 1));
        s.begin_write(ckpt(2, 2)).unwrap();
        s.replace_in_progress(ckpt(2, 99)).unwrap();
        s.commit_write().unwrap();
        assert_eq!(s.latest_shared().unwrap(), ckpt(2, 99));
        assert_eq!(s.stats().replacements, 1);
        assert_eq!(
            s.delta_stats().delta_records,
            1,
            "replacement stayed a delta"
        );
    }

    #[test]
    fn post_rollback_seq_reuse_chains_in_commit_order() {
        // After a global rollback the protocol reuses epoch numbers; the
        // chain must base each delta on the previously *committed* image,
        // not the previous sequence number, and a reload must reproduce it.
        let dir = tmp_dir("seq-reuse");
        {
            let mut s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 4);
            for seq in 1..=3u64 {
                commit(&mut s, ckpt(seq, seq as u8));
            }
            // Rollback to epoch 1, then re-establish epochs 2 and 3.
            commit(&mut s, ckpt(2, 102));
            commit(&mut s, ckpt(3, 103));
            assert_eq!(s.latest_at_or_before_shared(2).unwrap(), ckpt(2, 102));
        }
        let s = DeltaStable::open(DiskStableStore::open(&dir).unwrap(), 4);
        assert_eq!(s.delta_stats().chain_orphans, 0);
        assert_eq!(s.latest_shared().unwrap(), ckpt(3, 103));
        assert_eq!(
            s.latest_at_or_before_shared(2).unwrap(),
            ckpt(2, 102),
            "newest committed record at or before the line wins"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_tears_pending_delta_without_orphaning_committed_chain() {
        let mut s = DeltaStable::open(StableStore::with_retention(8), 4);
        commit(&mut s, ckpt(1, 1));
        s.begin_write(ckpt(2, 2)).unwrap();
        s.crash();
        assert_eq!(s.stats().torn_writes, 1);
        assert!(!s.is_writing());
        // The codec never advanced: the next write re-diffs against seq 1.
        s.begin_write(ckpt(2, 22)).unwrap();
        s.commit_write().unwrap();
        assert_eq!(s.latest_shared().unwrap(), ckpt(2, 22));
        assert_eq!(s.delta_stats().delta_records, 1);
    }

    #[test]
    fn abort_write_is_not_torn_and_keeps_chain_position() {
        let mut s = DeltaStable::open(StableStore::with_retention(8), 4);
        commit(&mut s, ckpt(1, 1));
        s.begin_write(ckpt(2, 2)).unwrap();
        assert!(s.abort_write());
        assert!(!s.abort_write());
        assert_eq!(s.stats().torn_writes, 0);
        assert_eq!(s.next_record_kind(), RecordKind::Delta);
    }

    #[test]
    fn backend_eviction_of_a_full_image_orphans_its_deltas_gracefully() {
        // The backend retains fewer records than retain + k - 1: the oldest
        // full image is evicted while deltas chained on it survive. Those
        // deltas are dropped on reload; the chain restarts at the next full.
        let mut s = DeltaStable::open_with_retention(StableStore::with_retention(3), 4, 8);
        for seq in 1..=6u64 {
            commit(&mut s, ckpt(seq, seq as u8));
        }
        // Inner retains records 4 (delta), 5 (full), 6 (delta).
        let s = DeltaStable::open(s.into_inner(), 4);
        assert_eq!(s.delta_stats().chain_orphans, 1, "the baseless seq-4 delta");
        assert_eq!(s.latest_shared().unwrap(), ckpt(6, 6));
        assert_eq!(
            s.committed_records(),
            vec![ckpt(5, 5), ckpt(6, 6)],
            "usable history restarts at the surviving full image"
        );
        assert_eq!(s.next_record_kind(), RecordKind::Full);
    }

    #[test]
    fn overlapping_and_unpaired_writes_rejected_at_the_layer() {
        let mut s = DeltaStable::open(StableStore::with_retention(8), 2);
        assert!(matches!(
            s.commit_write(),
            Err(StableWriteError::NoWriteInProgress)
        ));
        assert!(matches!(
            s.replace_in_progress(ckpt(1, 1)),
            Err(StableWriteError::NoWriteInProgress)
        ));
        s.begin_write(ckpt(1, 1)).unwrap();
        assert!(matches!(
            s.begin_write(ckpt(2, 2)),
            Err(StableWriteError::WriteAlreadyInProgress)
        ));
    }
}
