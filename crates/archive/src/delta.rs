//! Dirty-region delta patches between checkpoint images.
//!
//! A delta records only the byte regions of the new image that differ from
//! the base image, at a fixed [`REGION_SIZE`] granularity (adjacent dirty
//! regions are merged). Integrity is layered: the patch carries the CRC of
//! the base it was diffed against (applying to the wrong base is refused,
//! not silently wrong) and the CRC of the image it must reconstruct
//! (a bad apply is refused, not served).

use synergy_codec::codec_struct;
use synergy_storage::crc32;

use core::fmt;

/// Dirty-region granularity in bytes. Small enough that a few mutated
/// counters do not drag whole kilobytes into the patch, large enough that
/// region bookkeeping (16 bytes per region) stays a fraction of the payload.
pub const REGION_SIZE: usize = 64;

/// One contiguous run of bytes that differs from the base image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirtyRegion {
    /// Byte offset into the new image.
    pub offset: u64,
    /// The new bytes at that offset.
    pub bytes: Vec<u8>,
}

codec_struct!(DirtyRegion { offset, bytes });

/// Why applying a [`DeltaPatch`] was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The base image is not the one the patch was diffed against.
    BaseMismatch {
        /// CRC of the base the patch expects.
        expected: u32,
        /// CRC of the base supplied.
        actual: u32,
    },
    /// The reconstructed image failed its CRC — the patch is corrupt.
    ImageMismatch {
        /// CRC the reconstructed image must have.
        expected: u32,
        /// CRC the reconstruction actually produced.
        actual: u32,
    },
    /// A region reaches past the declared image length (corrupt patch).
    RegionOutOfBounds {
        /// Offset of the offending region.
        offset: u64,
        /// Length of the offending region.
        len: u64,
        /// Declared length of the new image.
        image_len: u64,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::BaseMismatch { expected, actual } => write!(
                f,
                "delta base mismatch: patch expects base crc {expected:#010x}, got {actual:#010x}"
            ),
            DeltaError::ImageMismatch { expected, actual } => write!(
                f,
                "delta image mismatch: expected crc {expected:#010x}, rebuilt {actual:#010x}"
            ),
            DeltaError::RegionOutOfBounds {
                offset,
                len,
                image_len,
            } => write!(
                f,
                "delta region [{offset}, {offset}+{len}) exceeds image length {image_len}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// A dirty-region delta from one checkpoint image to the next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaPatch {
    /// CRC-32 of the base image this patch applies to.
    pub base_crc: u32,
    /// CRC-32 of the image the patch reconstructs.
    pub image_crc: u32,
    /// Length of the reconstructed image (images may grow or shrink).
    pub new_len: u64,
    /// The differing regions, ascending by offset, non-overlapping.
    pub regions: Vec<DirtyRegion>,
}

codec_struct!(DeltaPatch {
    base_crc,
    image_crc,
    new_len,
    regions
});

/// Walks the dirty spans between `base` and `new` at [`REGION_SIZE`]
/// granularity, calling `f(offset, len)` for each merged span of `new`.
/// Spans cover every byte of `new` that differs from `base` (including the
/// tail when `new` is longer), so `base → apply` reconstructs exactly.
pub(crate) fn dirty_spans(base: &[u8], new: &[u8], mut f: impl FnMut(usize, usize)) {
    let pages = new.len().div_ceil(REGION_SIZE);
    let mut span_start: Option<usize> = None;
    for page in 0..pages {
        let start = page * REGION_SIZE;
        let end = (start + REGION_SIZE).min(new.len());
        let dirty = base.get(start..end) != Some(&new[start..end]);
        match (dirty, span_start) {
            (true, None) => span_start = Some(start),
            (false, Some(s)) => {
                f(s, start - s);
                span_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = span_start {
        f(s, new.len() - s);
    }
}

impl DeltaPatch {
    /// Diffs `new` against `base`.
    pub fn diff(base: &[u8], new: &[u8]) -> DeltaPatch {
        let mut regions = Vec::new();
        dirty_spans(base, new, |offset, len| {
            regions.push(DirtyRegion {
                offset: offset as u64,
                bytes: new[offset..offset + len].to_vec(),
            });
        });
        DeltaPatch {
            base_crc: crc32(base),
            image_crc: crc32(new),
            new_len: new.len() as u64,
            regions,
        }
    }

    /// Applies the patch to `base`, verifying the base CRC before and the
    /// image CRC after.
    ///
    /// # Errors
    ///
    /// Returns a [`DeltaError`] when the base is not the diffed-against
    /// image, a region is out of bounds, or the reconstruction fails its
    /// CRC — the caller must fall back rather than serve the result.
    pub fn apply(&self, base: &[u8]) -> Result<Vec<u8>, DeltaError> {
        let actual = crc32(base);
        if actual != self.base_crc {
            return Err(DeltaError::BaseMismatch {
                expected: self.base_crc,
                actual,
            });
        }
        // Growth sanity bound before allocating: every byte past the base's
        // length differs from the (absent) base, so a well-formed patch
        // carries it in a region. A `new_len` exceeding base + region bytes
        // is corrupt — refuse it here rather than attempt the allocation.
        if self.new_len > base.len() as u64 + self.region_bytes() {
            return Err(DeltaError::RegionOutOfBounds {
                offset: 0,
                len: 0,
                image_len: self.new_len,
            });
        }
        let new_len = usize::try_from(self.new_len).map_err(|_| DeltaError::RegionOutOfBounds {
            offset: 0,
            len: 0,
            image_len: self.new_len,
        })?;
        let mut image = base.to_vec();
        image.resize(new_len, 0);
        for region in &self.regions {
            let offset = region.offset as usize;
            let end = offset.checked_add(region.bytes.len());
            match end {
                Some(end) if end <= image.len() => {
                    image[offset..end].copy_from_slice(&region.bytes);
                }
                _ => {
                    return Err(DeltaError::RegionOutOfBounds {
                        offset: region.offset,
                        len: region.bytes.len() as u64,
                        image_len: self.new_len,
                    })
                }
            }
        }
        let rebuilt = crc32(&image);
        if rebuilt != self.image_crc {
            return Err(DeltaError::ImageMismatch {
                expected: self.image_crc,
                actual: rebuilt,
            });
        }
        Ok(image)
    }

    /// Total payload bytes carried by the regions.
    pub fn region_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes.len() as u64).sum()
    }
}

/// Seed value for the first link of a chain (a full image restarts the
/// chain from this constant rather than from a predecessor).
pub const CHAIN_SEED: u32 = 0x5943_4B43; // "CKCY"

/// Chains a record onto its predecessor: the link CRC binds the previous
/// link's CRC to this record's image CRC, so one flipped bit anywhere in a
/// chain breaks that link and every later link.
pub fn chain_link(prev_chain_crc: u32, image_crc: u32) -> u32 {
    let mut buf = [0u8; 8];
    buf[..4].copy_from_slice(&prev_chain_crc.to_le_bytes());
    buf[4..].copy_from_slice(&image_crc.to_le_bytes());
    crc32(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_of_identical_images_is_empty() {
        let img = vec![7u8; 1000];
        let patch = DeltaPatch::diff(&img, &img);
        assert!(patch.regions.is_empty());
        assert_eq!(patch.apply(&img).unwrap(), img);
    }

    #[test]
    fn single_byte_change_costs_one_region() {
        let base = vec![0u8; 4096];
        let mut new = base.clone();
        new[1000] = 0xFF;
        let patch = DeltaPatch::diff(&base, &new);
        assert_eq!(patch.regions.len(), 1);
        assert!(patch.region_bytes() as usize <= REGION_SIZE);
        assert_eq!(patch.apply(&base).unwrap(), new);
    }

    #[test]
    fn adjacent_dirty_pages_merge() {
        let base = vec![0u8; 4096];
        let mut new = base.clone();
        // Dirty a run crossing three page boundaries.
        for b in new.iter_mut().take(300).skip(100) {
            *b = 1;
        }
        let patch = DeltaPatch::diff(&base, &new);
        assert_eq!(patch.regions.len(), 1, "one merged region: {patch:?}");
        assert_eq!(patch.apply(&base).unwrap(), new);
    }

    #[test]
    fn growth_and_shrink_roundtrip() {
        let base = vec![3u8; 500];
        let grown = vec![4u8; 900];
        let patch = DeltaPatch::diff(&base, &grown);
        assert_eq!(patch.apply(&base).unwrap(), grown);
        let shrunk = base[..120].to_vec();
        let patch = DeltaPatch::diff(&base, &shrunk);
        assert_eq!(patch.apply(&base).unwrap(), shrunk);
        let empty: Vec<u8> = Vec::new();
        let patch = DeltaPatch::diff(&base, &empty);
        assert_eq!(patch.apply(&base).unwrap(), empty);
    }

    #[test]
    fn wrong_base_is_refused() {
        let base = vec![0u8; 256];
        let mut new = base.clone();
        new[0] = 1;
        let patch = DeltaPatch::diff(&base, &new);
        let other = vec![9u8; 256];
        assert!(matches!(
            patch.apply(&other),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_region_is_refused_by_image_crc() {
        let base = vec![0u8; 256];
        let mut new = base.clone();
        new[10] = 1;
        let mut patch = DeltaPatch::diff(&base, &new);
        patch.regions[0].bytes[0] ^= 0x80;
        assert!(matches!(
            patch.apply(&base),
            Err(DeltaError::ImageMismatch { .. })
        ));
    }

    #[test]
    fn out_of_bounds_region_is_refused() {
        let base = vec![0u8; 64];
        let mut new = base.clone();
        new[0] = 1;
        let mut patch = DeltaPatch::diff(&base, &new);
        patch.regions[0].offset = 1000;
        assert!(matches!(
            patch.apply(&base),
            Err(DeltaError::RegionOutOfBounds { .. })
        ));
    }

    #[test]
    fn chain_link_is_order_sensitive() {
        let a = chain_link(CHAIN_SEED, 1);
        let b = chain_link(a, 2);
        let b_swapped = chain_link(chain_link(CHAIN_SEED, 2), 1);
        assert_ne!(b, b_swapped, "links must bind position, not just content");
    }
}
