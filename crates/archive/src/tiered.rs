//! [`TieredStore`]: local disk as tier 0, an object store as the archive
//! tier.
//!
//! Writes follow the neon `remote_storage` / `wal_backup` split: the
//! two-phase stable write commits **locally first** (tier 0 is the
//! durability the TB protocol reasons about), and every committed record
//! file is then mirrored to the archive tier by a background uploader with
//! unlimited exponential-backoff retries — an archive outage slows the
//! mirror down, it never blocks or fails a checkpoint commit.
//!
//! Recovery ladder on [`open`](TieredStore::open):
//!
//! 1. Local record files present → open tier 0 as usual (a reachable
//!    archive is then *resynced*: local records it is missing are queued).
//! 2. Local disk empty (wiped node) but the archive has records →
//!    **rehydrate**: fetch every object, write it verbatim as a local
//!    record file, then open tier 0 — its CRC verification drops any
//!    half-uploaded or rotten object, so a damaged archive degrades to an
//!    older checkpoint, never a wrong one.
//! 3. Both empty (or archive unreachable and disk empty) → fresh node.
//!
//! The caller keeps an [`ArchiveHandle`] for status reporting and
//! quiescing; the store itself stays a plain [`Stable`] so it slots under
//! [`DeltaStable`](crate::DeltaStable) or directly under the middleware.

use std::collections::VecDeque;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synergy_net::retry::Backoff;
use synergy_storage::{Checkpoint, DiskStableStore, Stable, StableStats, StableWriteError};

use crate::object::ObjectStore;
use crate::store::StableHistory;

/// How long `open` keeps retrying an unreachable archive tier before
/// proceeding without it (rehydration and resync are skipped; uploads still
/// retry forever in the background).
const OPEN_RETRY_BUDGET: Duration = Duration::from_secs(3);

/// Counters for the archive tier, readable through an [`ArchiveHandle`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Record files successfully mirrored to the archive tier.
    pub uploads: u64,
    /// Upload attempts that failed (each is retried until it lands).
    pub upload_failures: u64,
    /// Objects fetched from the archive to rebuild a wiped local disk.
    pub rehydrated: u64,
    /// Local record files queued on open because the archive was missing
    /// them (e.g. a crash beheaded the upload queue).
    pub resynced: u64,
}

struct UploadQueue {
    pending: VecDeque<(String, Vec<u8>)>,
    stats: ArchiveStats,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<UploadQueue>,
    cond: Condvar,
}

/// A cloneable view of a [`TieredStore`]'s archive state, usable after the
/// store itself has moved into the runtime.
#[derive(Clone)]
pub struct ArchiveHandle(Arc<Shared>);

impl ArchiveHandle {
    /// Record files queued but not yet mirrored to the archive.
    pub fn pending(&self) -> usize {
        self.0
            .queue
            .lock()
            .expect("archive queue poisoned")
            .pending
            .len()
    }

    /// Archive-tier counters.
    pub fn stats(&self) -> ArchiveStats {
        self.0.queue.lock().expect("archive queue poisoned").stats
    }

    /// Blocks until the upload queue is empty or `timeout` elapses; returns
    /// whether it drained. The quiesce path of choice before killing or
    /// wiping a node whose archive copy must be complete.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut q = self.0.queue.lock().expect("archive queue poisoned");
        while !q.pending.is_empty() {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .0
                .cond
                .wait_timeout(q, left)
                .expect("archive queue poisoned");
            q = guard;
        }
        true
    }
}

/// Local [`DiskStableStore`] mirrored to an archive tier by a background
/// uploader. See the module docs for the write path and recovery ladder.
pub struct TieredStore {
    disk: DiskStableStore,
    shared: Arc<Shared>,
    uploader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TieredStore")
            .field("disk", &self.disk)
            .field("pending", &self.handle().pending())
            .finish()
    }
}

/// Lists the archive's record keys, retrying within the open budget.
/// `None` means the tier stayed unreachable.
fn list_with_retry(archive: &mut dyn ObjectStore) -> Option<Vec<String>> {
    let deadline = Instant::now() + OPEN_RETRY_BUDGET;
    let mut backoff =
        Backoff::exponential(Duration::from_millis(5), Duration::from_millis(250), None);
    loop {
        match archive.list() {
            Ok(keys) => {
                return Some(
                    keys.into_iter()
                        .filter(|k| DiskStableStore::parse_record_file_name(k).is_some())
                        .collect(),
                )
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(backoff.next_delay().expect("unlimited schedule"));
            }
            Err(_) => return None,
        }
    }
}

/// Fetches one object, retrying within the open budget.
fn get_with_retry(archive: &mut dyn ObjectStore, key: &str) -> Option<Vec<u8>> {
    let deadline = Instant::now() + OPEN_RETRY_BUDGET;
    let mut backoff =
        Backoff::exponential(Duration::from_millis(5), Duration::from_millis(250), None);
    loop {
        match archive.get(key) {
            Ok(bytes) => return bytes,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(backoff.next_delay().expect("unlimited schedule"));
            }
            Err(_) => return None,
        }
    }
}

fn local_record_names(dir: &Path) -> Vec<String> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| DiskStableStore::parse_record_file_name(n).is_some())
        .collect();
    names.sort();
    names
}

impl TieredStore {
    /// Opens tier 0 at `dir` (retaining `retain` records locally) mirrored
    /// to `archive`, running the recovery ladder described in the module
    /// docs, and spawns the background uploader. Wrap the archive in a
    /// [`FaultyObjectStore`](crate::FaultyObjectStore) *before* passing it
    /// here to put the whole ladder — rehydration, resync, uploads — under
    /// an injected fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`StableWriteError::Io`] if tier 0 cannot be opened. An
    /// unreachable archive is not an open error.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero.
    pub fn open(
        dir: impl Into<PathBuf>,
        retain: usize,
        mut archive: Box<dyn ObjectStore>,
    ) -> Result<Self, StableWriteError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| StableWriteError::Io(format!("create {}: {e}", dir.display())))?;
        let mut stats = ArchiveStats::default();
        let local = local_record_names(&dir);
        let archived = list_with_retry(archive.as_mut());

        if local.is_empty() {
            // A wiped (or brand-new) node: rebuild tier 0 from the archive.
            // Objects are written verbatim; DiskStableStore's CRC checks
            // below drop anything half-uploaded or rotten.
            if let Some(keys) = &archived {
                for key in keys {
                    if let Some(bytes) = get_with_retry(archive.as_mut(), key) {
                        let path = dir.join(key);
                        fs::write(&path, &bytes).map_err(|e| {
                            StableWriteError::Io(format!("rehydrate {}: {e}", path.display()))
                        })?;
                        stats.rehydrated += 1;
                    }
                }
            }
        }

        let disk = DiskStableStore::open_with_retention(&dir, retain)?;

        // Resync: any local record the archive is missing (mid-upload crash
        // beheaded the queue, or the archive was down when it committed)
        // goes back on the queue.
        let mut pending = VecDeque::new();
        if let Some(keys) = &archived {
            for name in local_record_names(&dir) {
                if !keys.contains(&name) {
                    if let Ok(bytes) = fs::read(dir.join(&name)) {
                        pending.push_back((name, bytes));
                        stats.resynced += 1;
                    }
                }
            }
        }

        let shared = Arc::new(Shared {
            queue: Mutex::new(UploadQueue {
                pending,
                stats,
                shutdown: false,
            }),
            cond: Condvar::new(),
        });
        let uploader = std::thread::Builder::new()
            .name("archive-uploader".into())
            .spawn({
                let shared = Arc::clone(&shared);
                move || upload_loop(&shared, archive)
            })
            .map_err(|e| StableWriteError::Io(format!("spawn uploader: {e}")))?;
        if !shared
            .queue
            .lock()
            .expect("archive queue poisoned")
            .pending
            .is_empty()
        {
            shared.cond.notify_all();
        }
        Ok(TieredStore {
            disk,
            shared,
            uploader: Some(uploader),
        })
    }

    /// A cloneable handle for status and quiescing.
    pub fn handle(&self) -> ArchiveHandle {
        ArchiveHandle(Arc::clone(&self.shared))
    }

    /// The local (tier 0) store.
    pub fn disk(&self) -> &DiskStableStore {
        &self.disk
    }
}

fn upload_loop(shared: &Shared, mut archive: Box<dyn ObjectStore>) {
    let mut backoff =
        Backoff::exponential(Duration::from_millis(5), Duration::from_millis(250), None);
    loop {
        // Take (a copy of) the head without popping: the record only leaves
        // the queue once it has landed.
        let (key, bytes) = {
            let mut q = shared.queue.lock().expect("archive queue poisoned");
            loop {
                if q.shutdown {
                    return;
                }
                if let Some(head) = q.pending.front() {
                    break head.clone();
                }
                q = shared.cond.wait(q).expect("archive queue poisoned");
            }
        };
        match archive.put(&key, &bytes) {
            Ok(()) => {
                backoff.reset();
                let mut q = shared.queue.lock().expect("archive queue poisoned");
                q.pending.pop_front();
                q.stats.uploads += 1;
                // Wake any wait_drained caller.
                shared.cond.notify_all();
            }
            Err(_) => {
                let delay = backoff.next_delay().expect("unlimited schedule");
                let mut q = shared.queue.lock().expect("archive queue poisoned");
                q.stats.upload_failures += 1;
                // Sleep on the condvar so shutdown interrupts the backoff.
                let _ = shared
                    .cond
                    .wait_timeout(q, delay)
                    .expect("archive queue poisoned");
            }
        }
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("archive queue poisoned");
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        if let Some(h) = self.uploader.take() {
            let _ = h.join();
        }
        // Records still pending are not lost: tier 0 has them, and the next
        // open's resync re-queues whatever the archive is missing.
    }
}

impl Stable for TieredStore {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        self.disk.begin_write(checkpoint)
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        self.disk.replace_in_progress(checkpoint)
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        self.disk.commit_write()?;
        // Mirror the freshly committed record file. Failure to *read back*
        // the local file is not a commit failure — tier 0 is durable; the
        // record is simply picked up by the next resync.
        if let Some((_, path)) = self.disk.newest_record_file() {
            if let (Some(name), Ok(bytes)) = (
                path.file_name().and_then(|n| n.to_str()).map(String::from),
                fs::read(&path),
            ) {
                let mut q = self.shared.queue.lock().expect("archive queue poisoned");
                q.pending.push_back((name, bytes));
                drop(q);
                self.shared.cond.notify_all();
            }
        }
        Ok(())
    }

    fn abort_write(&mut self) -> bool {
        self.disk.abort_write()
    }

    fn crash(&mut self) {
        self.disk.crash();
    }

    fn is_writing(&self) -> bool {
        self.disk.is_writing()
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        self.disk.latest_shared()
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        self.disk.latest_at_or_before_shared(seq)
    }

    fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        // Byzantine-lite injection corrupts the *local* tier only: the
        // archive keeps its clean mirror (an independent replica does not
        // follow a node's silent corruption).
        self.disk.replace_latest(checkpoint)
    }

    fn stats(&self) -> StableStats {
        self.disk.stats()
    }
}

impl StableHistory for TieredStore {
    fn committed_records(&self) -> Vec<Checkpoint> {
        self.disk.committed_shared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ArchiveFaultPlan, DirObjectStore, FaultyObjectStore, OutageWindow};
    use std::sync::atomic::{AtomicU64, Ordering};
    use synergy_des::SimTime;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("syarc-tier-{}-{tag}-{n}", std::process::id()))
    }

    fn ckpt(seq: u64, value: u64) -> Checkpoint {
        Checkpoint::encode(seq, SimTime::from_nanos(seq), "epoch", &value).unwrap()
    }

    fn commit(store: &mut TieredStore, c: Checkpoint) {
        store.begin_write(c).unwrap();
        store.commit_write().unwrap();
    }

    fn archive_over(dir: &Path, plan: ArchiveFaultPlan) -> Box<dyn ObjectStore> {
        Box::new(FaultyObjectStore::new(
            DirObjectStore::open(dir).unwrap(),
            plan,
        ))
    }

    fn assert_mirrored(local: &Path, remote: &Path) {
        let names = local_record_names(local);
        assert!(!names.is_empty());
        assert_eq!(names, local_record_names(remote), "same record set");
        for name in names {
            assert_eq!(
                fs::read(local.join(&name)).unwrap(),
                fs::read(remote.join(&name)).unwrap(),
                "record {name} must mirror byte-for-byte"
            );
        }
    }

    #[test]
    fn committed_records_mirror_to_the_archive_byte_for_byte() {
        let (local, remote) = (tmp_dir("mirror-l"), tmp_dir("mirror-r"));
        let mut s =
            TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert())).unwrap();
        let handle = s.handle();
        for seq in 1..=4 {
            commit(&mut s, ckpt(seq, seq * 10));
        }
        assert!(handle.wait_drained(Duration::from_secs(5)), "queue drains");
        assert_eq!(handle.stats().uploads, 4);
        assert_mirrored(&local, &remote);
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn wiped_disk_rehydrates_from_the_archive() {
        let (local, remote) = (tmp_dir("wipe-l"), tmp_dir("wipe-r"));
        {
            let mut s =
                TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert()))
                    .unwrap();
            for seq in 1..=3 {
                commit(&mut s, ckpt(seq, seq * 100));
            }
            assert!(s.handle().wait_drained(Duration::from_secs(5)));
        }
        fs::remove_dir_all(&local).unwrap();
        let s =
            TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert())).unwrap();
        assert_eq!(s.handle().stats().rehydrated, 3);
        assert_eq!(s.latest_shared().unwrap(), ckpt(3, 300));
        assert_eq!(s.latest_at_or_before_shared(2).unwrap(), ckpt(2, 200));
        assert_mirrored(&local, &remote);
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn archive_outage_defers_uploads_then_drains() {
        let (local, remote) = (tmp_dir("outage-l"), tmp_dir("outage-r"));
        // The window opens *after* `open`'s initial archive listing (which
        // runs at ~0 ms) and closes well before the drain deadline.
        let plan = ArchiveFaultPlan {
            outages: vec![OutageWindow {
                start_ms: 100,
                end_ms: 700,
            }],
            ..ArchiveFaultPlan::inert()
        };
        let mut s = TieredStore::open(&local, 8, archive_over(&remote, plan)).unwrap();
        let handle = s.handle();
        std::thread::sleep(Duration::from_millis(150));
        commit(&mut s, ckpt(1, 1));
        commit(&mut s, ckpt(2, 2));
        assert!(
            !handle.wait_drained(Duration::from_millis(50)),
            "outage holds the queue"
        );
        assert!(
            handle.wait_drained(Duration::from_secs(5)),
            "then it drains"
        );
        let stats = handle.stats();
        assert!(stats.upload_failures >= 1, "the outage was felt: {stats:?}");
        assert_eq!(stats.uploads, 2);
        assert_mirrored(&local, &remote);
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn flaky_puts_retry_until_every_record_lands_intact() {
        let (local, remote) = (tmp_dir("flaky-l"), tmp_dir("flaky-r"));
        let plan = ArchiveFaultPlan {
            seed: 11,
            put_fail: 0.4,
            put_partial: 0.3,
            ..ArchiveFaultPlan::inert()
        };
        let mut s = TieredStore::open(&local, 8, archive_over(&remote, plan)).unwrap();
        let handle = s.handle();
        for seq in 1..=6 {
            commit(&mut s, ckpt(seq, seq));
        }
        assert!(handle.wait_drained(Duration::from_secs(10)));
        // Partial PUTs left prefixes along the way; the retries must have
        // overwritten every one with the full record.
        assert_mirrored(&local, &remote);
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn mid_upload_crash_is_resynced_on_reopen() {
        let (local, remote) = (tmp_dir("resync-l"), tmp_dir("resync-r"));
        {
            // An archive that is down for far longer than the test runs:
            // commits land locally, the queue never drains, and dropping
            // the store is the mid-upload crash.
            let plan = ArchiveFaultPlan {
                outages: vec![OutageWindow {
                    start_ms: 0,
                    end_ms: 3_600_000,
                }],
                ..ArchiveFaultPlan::inert()
            };
            let mut s = TieredStore::open(&local, 8, archive_over(&remote, plan)).unwrap();
            for seq in 1..=3 {
                commit(&mut s, ckpt(seq, seq));
            }
            assert!(s.handle().pending() > 0, "uploads still queued at crash");
        }
        assert!(
            local_record_names(&remote).len() < 3,
            "the archive is missing records"
        );
        let s =
            TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert())).unwrap();
        let handle = s.handle();
        assert!(handle.stats().resynced >= 1, "missing records re-queued");
        assert!(handle.wait_drained(Duration::from_secs(5)));
        assert_mirrored(&local, &remote);
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn rehydration_drops_damaged_archive_objects_via_crc() {
        let (local, remote) = (tmp_dir("damaged-l"), tmp_dir("damaged-r"));
        {
            let mut s =
                TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert()))
                    .unwrap();
            for seq in 1..=3 {
                commit(&mut s, ckpt(seq, seq * 7));
            }
            assert!(s.handle().wait_drained(Duration::from_secs(5)));
        }
        // Rot the newest archived object and truncate the middle one — a
        // half-uploaded PUT frozen by the outage that killed the node.
        let names = local_record_names(&remote);
        let newest = remote.join(&names[2]);
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        let middle = remote.join(&names[1]);
        let bytes = fs::read(&middle).unwrap();
        fs::write(&middle, &bytes[..bytes.len() / 3]).unwrap();
        fs::remove_dir_all(&local).unwrap();
        let s =
            TieredStore::open(&local, 8, archive_over(&remote, ArchiveFaultPlan::inert())).unwrap();
        assert_eq!(s.handle().stats().rehydrated, 3, "all objects fetched");
        assert_eq!(s.stats().corrupt_records, 2, "damaged objects rejected");
        assert_eq!(
            s.latest_shared().unwrap(),
            ckpt(1, 7),
            "recovery degrades to the oldest intact record, never a wrong one"
        );
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }

    #[test]
    fn unreachable_archive_does_not_block_a_fresh_node() {
        let (local, remote) = (tmp_dir("down-l"), tmp_dir("down-r"));
        let plan = ArchiveFaultPlan {
            outages: vec![OutageWindow {
                start_ms: 0,
                end_ms: 3_600_000,
            }],
            ..ArchiveFaultPlan::inert()
        };
        let started = Instant::now();
        let mut s = TieredStore::open(&local, 8, archive_over(&remote, plan)).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "open is bounded by the retry budget"
        );
        commit(&mut s, ckpt(1, 1));
        assert_eq!(s.latest_shared().unwrap(), ckpt(1, 1), "tier 0 unaffected");
        drop(s);
        fs::remove_dir_all(&local).unwrap();
        fs::remove_dir_all(&remote).unwrap();
    }
}
