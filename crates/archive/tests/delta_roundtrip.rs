//! Property tests for the delta format and the CRC chain.
//!
//! Two claims, checked over seeded-random inputs:
//!
//! 1. **Round-trip**: for arbitrary base/new image pairs — random contents,
//!    random mutation patterns, growth, shrinkage, emptiness — diff → apply
//!    reconstructs the new image exactly, and the patch survives the wire
//!    codec.
//! 2. **Single-bit integrity**: flipping any one bit anywhere in any
//!    serialized chain record never makes the chain serve a wrong image.
//!    The flipped record (and anything chained on it, up to the next full
//!    image) is dropped; every record the walker *does* serve is
//!    byte-identical to the original.

use synergy_archive::{ChainRecord, ChainWalker, CheckpointCodec, DeltaPatch};
use synergy_des::{DetRng, SimTime};
use synergy_storage::Checkpoint;

fn random_image(rng: &mut DetRng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Mutates `base` into a new image: a random number of random-length dirty
/// spans, plus an occasional grow / shrink / wipe.
fn mutate(rng: &mut DetRng, base: &[u8]) -> Vec<u8> {
    let mut new = base.to_vec();
    match rng.next_u64() % 10 {
        // Grow by up to 2x.
        0 => {
            let extra = (rng.next_u64() % (base.len() as u64 + 64)) as usize;
            let mut tail = vec![0u8; extra];
            rng.fill_bytes(&mut tail);
            new.extend_from_slice(&tail);
        }
        // Shrink (possibly to empty).
        1 => {
            let keep = (rng.next_u64() % (base.len() as u64 + 1)) as usize;
            new.truncate(keep);
        }
        // Unchanged.
        2 => {}
        // Dirty 1..=6 random spans.
        _ => {
            if !new.is_empty() {
                let spans = 1 + rng.next_u64() % 6;
                for _ in 0..spans {
                    let start = (rng.next_u64() % new.len() as u64) as usize;
                    let len = 1 + (rng.next_u64() % 200) as usize;
                    let end = (start + len).min(new.len());
                    rng.fill_bytes(&mut new[start..end]);
                }
            }
        }
    }
    new
}

#[test]
fn arbitrary_dirty_region_sets_roundtrip() {
    let mut rng = DetRng::new(0xA5C1).stream("delta-roundtrip");
    let mut base = random_image(&mut rng, 1500);
    for case in 0..300 {
        let new = mutate(&mut rng, &base);
        let patch = DeltaPatch::diff(&base, &new);
        assert_eq!(
            patch.apply(&base).expect("clean patch applies"),
            new,
            "case {case}: diff → apply must reconstruct exactly"
        );
        // The patch survives the wire codec byte-identically.
        let bytes = synergy_codec::to_bytes(&patch).unwrap();
        let back: DeltaPatch = synergy_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, patch, "case {case}: codec round-trip");
        assert_eq!(back.apply(&base).unwrap(), new, "case {case}");
        base = new;
    }
}

/// Builds a chain of `n` records over randomly mutating state (images of
/// roughly `image_len` bytes), returning each record with its seq and the
/// original image it must reconstruct.
fn build_chain(
    rng: &mut DetRng,
    k: u32,
    n: u64,
    image_len: usize,
) -> Vec<(u64, ChainRecord, Vec<u8>)> {
    let mut codec = CheckpointCodec::new(k);
    let mut state = random_image(rng, image_len);
    let mut out = Vec::new();
    for seq in 1..=n {
        state = mutate(rng, &state);
        let ckpt = Checkpoint::encode(seq, SimTime::from_nanos(seq), "epoch", &state).unwrap();
        let record = codec.encode_record(&ckpt);
        codec.note_committed(&ckpt, record.kind());
        // The chained image is the *serialized* state (the checkpoint's
        // data bytes), which is what the stable layer persists.
        out.push((seq, record, ckpt.shared_data().to_vec()));
    }
    out
}

#[test]
fn chains_over_random_states_replay_byte_identically() {
    let root = DetRng::new(0xC4A1);
    for (i, k) in [1u32, 2, 3, 5, 8].iter().enumerate() {
        let mut rng = root.stream_indexed("chain-replay", i as u64);
        let chain = build_chain(&mut rng, *k, 24, 800);
        let mut walker = ChainWalker::new();
        for (seq, record, want) in &chain {
            let got = walker.feed(*seq, record).expect("intact chain replays");
            assert_eq!(got.as_ref(), &want[..], "k={k} seq={seq}");
        }
        assert_eq!(walker.orphans(), 0, "k={k}");
    }
}

#[test]
fn single_bit_flip_anywhere_never_serves_a_wrong_image() {
    // Small images keep the exhaustive every-bit-of-every-record sweep
    // fast; the format has no size-dependent code paths above REGION_SIZE.
    let mut rng = DetRng::new(0xB17F).stream("bit-flip");
    let chain = build_chain(&mut rng, 3, 6, 96);
    let serialized: Vec<Vec<u8>> = chain
        .iter()
        .map(|(_, record, _)| synergy_codec::to_bytes(record).unwrap())
        .collect();

    for victim in 0..chain.len() {
        for bit in 0..serialized[victim].len() * 8 {
            let mut bytes = serialized[victim].clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            // A flip may make the record undecodable — that is a legal
            // outcome (the layer below would have dropped it); the walker
            // then simply never sees record `victim`.
            let flipped: Option<ChainRecord> = synergy_codec::from_bytes(&bytes).ok();
            let mut walker = ChainWalker::new();
            let mut served_flipped_position = false;
            for (i, (seq, record, want)) in chain.iter().enumerate() {
                let got = if i == victim {
                    match &flipped {
                        Some(r) => walker.feed(*seq, r),
                        None => {
                            walker.note_orphan();
                            None
                        }
                    }
                } else {
                    walker.feed(*seq, record)
                };
                // THE property: whatever the walker serves is the original
                // image for that position — a flipped record either drops
                // out (with its chained suffix) or, in the one benign case
                // (the flip produced the identical record back), matches.
                if let Some(image) = got {
                    assert_eq!(
                        image.as_ref(),
                        &want[..],
                        "record {victim} bit {bit}: served a wrong image at position {i}"
                    );
                    if i == victim {
                        served_flipped_position = true;
                    }
                }
            }
            assert!(
                !served_flipped_position || flipped.as_ref() == Some(&chain[victim].1),
                "record {victim} bit {bit}: a *changed* record must never be served"
            );
        }
    }
}

#[test]
fn prefix_before_a_flipped_record_survives_and_next_full_recovers() {
    let mut rng = DetRng::new(0x5EED).stream("prefix");
    let chain = build_chain(&mut rng, 3, 9, 400);
    // Corrupt the image CRC of the seq-5 record (mid-chain, k=3 ⇒ seqs 4-6
    // form the second segment; 5 is a delta).
    let victim = 4usize;
    let mut bytes = synergy_codec::to_bytes(&chain[victim].1).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let flipped: Option<ChainRecord> = synergy_codec::from_bytes(&bytes).ok();

    let mut walker = ChainWalker::new();
    let mut served = Vec::new();
    for (i, (seq, record, want)) in chain.iter().enumerate() {
        let fed = if i == victim {
            flipped.as_ref().and_then(|r| walker.feed(*seq, r))
        } else {
            walker.feed(*seq, record)
        };
        if let Some(image) = fed {
            assert_eq!(image.as_ref(), &want[..]);
            served.push(*seq);
        }
    }
    assert!(
        served.contains(&4) && !served.contains(&5),
        "prefix survives, flipped record does not: {served:?}"
    );
    assert!(
        served.contains(&7) && served.contains(&9),
        "the next full image restarts the chain: {served:?}"
    );
}
