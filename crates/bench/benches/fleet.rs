//! Fleet-scaling benchmark: missions/s and mission-latency percentiles as
//! the tenant count climbs 1 → 100 → 1 000 → 10 000 over one shared
//! runtime. Every scale runs the same mission mix as the `synergy-fleet`
//! driver — fault-free tenants plus scheduled hardware faults (every 7th)
//! and activated design faults (every 11th) — so the numbers include
//! rollback traffic, not just quiet missions.
//!
//! A plain timing harness (`harness = false`).
//!
//! Environment knobs (all optional, used by `scripts/bench.sh`):
//!
//! - `BENCH_FLEET_TENANTS`: cap on the largest scale (default 10000).
//! - `BENCH_JSON`: path of the JSON regression record; the run is
//!   appended to its `"fleet"` section.
//! - `BENCH_LABEL`, `BENCH_GIT_REV`: label and revision stored with the run.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use synergy::{Scheme, SystemConfig};
use synergy_bench::record::{sanitize, BenchRecord};
use synergy_fleet::{FleetConfig, FleetManager, MissionId, NullSink};

const DURATION_SECS: f64 = 60.0;
const QUANTUM: usize = 256;

fn cap_from_env() -> u64 {
    std::env::var("BENCH_FLEET_TENANTS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000)
}

fn mission_cfg(i: u64) -> SystemConfig {
    let mut builder = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(MissionId(i))
        .seed(i)
        .duration_secs(DURATION_SECS)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
        .trace(false);
    if i.is_multiple_of(7) {
        builder = builder.hardware_fault_at_secs(DURATION_SECS * 0.5);
    }
    if i.is_multiple_of(11) {
        builder = builder.software_fault_at_secs(DURATION_SECS * 0.33);
    }
    builder.build()
}

struct ScaleResult {
    tenants: u64,
    missions_per_sec: f64,
    wall_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    rollbacks_sw: u64,
    rollbacks_hw: u64,
}

fn bench_scale(tenants: u64, workers: usize) -> ScaleResult {
    let fleet = FleetManager::new(
        FleetConfig::default()
            .with_slots(tenants as usize)
            .with_workers(workers)
            .with_quantum(QUANTUM),
        Arc::new(NullSink::new()),
    );
    for i in 1..=tenants {
        fleet.attach(mission_cfg(i)).expect("attach within budget");
    }
    let started = Instant::now();
    let completed = fleet.run_until_idle();
    let wall = started.elapsed();
    assert_eq!(completed, tenants, "every mission must complete");
    let stats = fleet.stats();
    let (rollbacks_sw, rollbacks_hw) = stats.rollbacks();
    ScaleResult {
        tenants,
        missions_per_sec: completed as f64 / wall.as_secs_f64().max(1e-9),
        wall_secs: wall.as_secs_f64(),
        p50_ms: stats.latency_percentile_ms(50.0).unwrap_or(0.0),
        p99_ms: stats.latency_percentile_ms(99.0).unwrap_or(0.0),
        rollbacks_sw,
        rollbacks_hw,
    }
}

fn run_json(label: &str, git_rev: Option<&str>, workers: usize, results: &[ScaleResult]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "        \"label\": \"{}\",", sanitize(label));
    if let Some(rev) = git_rev {
        let _ = writeln!(s, "        \"git_rev\": \"{}\",", sanitize(rev));
    }
    let _ = writeln!(s, "        \"workers\": {workers},");
    let _ = writeln!(s, "        \"quantum_events\": {QUANTUM},");
    let _ = writeln!(s, "        \"mission_duration_secs\": {DURATION_SECS},");
    let _ = writeln!(s, "        \"scales\": {{");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "          \"{}\": {{ \"missions_per_sec\": {:.0}, \"wall_secs\": {:.3}, \
             \"latency_p50_ms\": {:.1}, \"latency_p99_ms\": {:.1}, \
             \"software_rollbacks\": {}, \"hardware_rollbacks\": {}, \
             \"rollbacks_per_tenant\": {:.3} }}{comma}",
            r.tenants,
            r.missions_per_sec,
            r.wall_secs,
            r.p50_ms,
            r.p99_ms,
            r.rollbacks_sw,
            r.rollbacks_hw,
            (r.rollbacks_sw + r.rollbacks_hw) as f64 / r.tenants as f64,
        );
    }
    let _ = writeln!(s, "        }},");
    let peak = results.last().expect("at least one scale");
    let _ = writeln!(s, "        \"peak_tenants\": {},", peak.tenants);
    let _ = writeln!(
        s,
        "        \"peak_missions_per_sec\": {:.0}",
        peak.missions_per_sec
    );
    let _ = write!(s, "      }}");
    s
}

fn main() {
    let cap = cap_from_env();
    let workers = FleetConfig::default().workers;
    let mut results = Vec::new();
    for tenants in [1u64, 100, 1_000, 10_000] {
        if tenants > cap {
            break;
        }
        let r = bench_scale(tenants, workers);
        println!(
            "fleet/{}: {:.0} missions/s in {:.2}s, latency p50 {:.1} ms p99 {:.1} ms, \
             rollbacks sw={} hw={}",
            r.tenants,
            r.missions_per_sec,
            r.wall_secs,
            r.p50_ms,
            r.p99_ms,
            r.rollbacks_sw,
            r.rollbacks_hw
        );
        results.push(r);
    }

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "run".into());
        let git_rev = std::env::var("BENCH_GIT_REV").ok();
        let mut record = BenchRecord::load(&path);
        let replaced =
            record.push_fleet_run(&run_json(&label, git_rev.as_deref(), workers, &results));
        record.save(&path);
        if replaced > 0 {
            println!("fleet record appended to {path} (replaced {replaced} same-rev run)");
        } else {
            println!("fleet record appended to {path}");
        }
    }
}
