//! Unmasked-regime benchmark: detection latency and escape rate as a
//! function of acceptance-test coverage, at a fixed bad-message plan.
//!
//! Every point holds the fault pressure constant — bad messages from
//! t=30 s at rate 0.6 on a 120-second mission — and sweeps only the AT
//! coverage knob across a fixed ladder (1.0 → 0.0). Each coverage level
//! runs the same deterministic seed set through the simulator's regime
//! pipeline (`run_regime_mission`, DESIGN.md §15), so the numbers answer
//! one question: how fast does the AT catch, and how much leaks past it,
//! as coverage degrades?
//!
//! Escapes are counted against the oracle run the regime pipeline diffs
//! internally; a seed whose report under-documents its escapes
//! (`escapes.len() < at_escapes`) aborts the bench — a silent escape is
//! a bug, not a data point.
//!
//! A plain timing harness (`harness = false`).
//!
//! Environment knobs (all optional, used by `scripts/bench.sh`):
//!
//! - `BENCH_REGIME_SEEDS`: missions per coverage level (default 32).
//! - `BENCH_JSON`: path of the JSON regression record; the run is
//!   appended to its `"regimes"` section.
//! - `BENCH_LABEL`, `BENCH_GIT_REV`: label and revision stored with the run.

use std::fmt::Write as _;

use synergy::{run_regime_mission, SystemConfig};
use synergy_bench::record::{sanitize, BenchRecord};

/// Base mission seed of the sweep; seed `BASE_SEED + i` runs at every
/// coverage level, so the fault arrival pattern is identical across the
/// ladder and only the AT knob moves.
const BASE_SEED: u64 = 9000;

/// Bad messages start this far into the 120-second mission.
const BAD_AFTER_SECS: f64 = 30.0;

/// Per-external probability that the active's computation is corrupted.
const BAD_RATE: f64 = 0.6;

/// The coverage ladder, full AT down to no AT, in percent (exact f64
/// values 1.0, 0.75, 0.5, 0.25, 0.0 — integer percent keeps JSON keys
/// stable).
const COVERAGE_PCT: [u32; 5] = [100, 75, 50, 25, 0];

fn env_or(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

struct CoveragePoint {
    coverage_pct: u32,
    at_catches: u64,
    at_escapes: u64,
    escapes_documented: u64,
    device_messages: u64,
    /// Mean over the seeds that detected at all.
    mean_detection_latency_s: Option<f64>,
    escape_rate: f64,
}

/// Runs the fixed seed set at one coverage level and aggregates.
fn bench_coverage(coverage_pct: u32, seeds: u64) -> CoveragePoint {
    let coverage = f64::from(coverage_pct) / 100.0;
    let mut point = CoveragePoint {
        coverage_pct,
        at_catches: 0,
        at_escapes: 0,
        escapes_documented: 0,
        device_messages: 0,
        mean_detection_latency_s: None,
        escape_rate: 0.0,
    };
    let mut latencies = Vec::new();
    for i in 0..seeds {
        let cfg = SystemConfig::builder()
            .seed(BASE_SEED + i)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(6.0)
            .trace(false)
            .bad_messages(BAD_AFTER_SECS, BAD_RATE)
            .at_coverage(coverage)
            .build();
        let report = run_regime_mission(&cfg);
        assert!(
            report.escapes.len() as u64 >= report.at_escapes,
            "seed {} at coverage {coverage_pct}%: {} AT misses but only {} documented — \
             silent escapes invalidate the bench",
            BASE_SEED + i,
            report.at_escapes,
            report.escapes.len(),
        );
        point.at_catches += report.at_catches;
        point.at_escapes += report.at_escapes;
        point.escapes_documented += report.escapes.len() as u64;
        point.device_messages += report.device_messages as u64;
        if let Some(lat) = report.detection_latency_secs {
            latencies.push(lat);
        }
    }
    if !latencies.is_empty() {
        point.mean_detection_latency_s =
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64);
    }
    if point.device_messages > 0 {
        point.escape_rate = point.at_escapes as f64 / point.device_messages as f64;
    }
    point
}

fn run_json(label: &str, git_rev: Option<&str>, seeds: u64, points: &[CoveragePoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "        \"label\": \"{}\",", sanitize(label));
    if let Some(rev) = git_rev {
        let _ = writeln!(s, "        \"git_rev\": \"{}\",", sanitize(rev));
    }
    let _ = writeln!(s, "        \"seeds\": {seeds},");
    let _ = writeln!(s, "        \"base_seed\": {BASE_SEED},");
    let _ = writeln!(s, "        \"bad_after_s\": {BAD_AFTER_SECS},");
    let _ = writeln!(s, "        \"bad_rate\": {BAD_RATE},");
    let _ = writeln!(s, "        \"coverage\": {{");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let latency = match p.mean_detection_latency_s {
            Some(l) => format!("{l:.3}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            s,
            "          \"cov_{}\": {{ \"catches\": {}, \"misses\": {}, \
             \"documented\": {}, \"detection_latency_s\": {latency}, \
             \"escape_rate\": {:.5} }}{comma}",
            p.coverage_pct, p.at_catches, p.at_escapes, p.escapes_documented, p.escape_rate,
        );
    }
    let _ = writeln!(s, "        }}");
    let _ = write!(s, "      }}");
    s
}

fn main() {
    let seeds = env_or("BENCH_REGIME_SEEDS", 32);

    let mut points = Vec::new();
    for pct in COVERAGE_PCT {
        let p = bench_coverage(pct, seeds);
        let latency = match p.mean_detection_latency_s {
            Some(l) => format!("{l:.3} s"),
            None => "n/a".to_string(),
        };
        println!(
            "regimes/cov_{pct}: {} catches, {} misses ({} documented), \
             detection latency {latency}, escape rate {:.5} ({seeds} seeds)",
            p.at_catches, p.at_escapes, p.escapes_documented, p.escape_rate,
        );
        points.push(p);
    }
    let full = &points[0];
    let none = points.last().expect("cov_0 ran");
    println!(
        "regimes: escape rate {:.5} at full coverage vs {:.5} with the AT off",
        full.escape_rate, none.escape_rate
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "run".into());
        let git_rev = std::env::var("BENCH_GIT_REV").ok();
        let mut record = BenchRecord::load(&path);
        let replaced =
            record.push_regimes_run(&run_json(&label, git_rev.as_deref(), seeds, &points));
        record.save(&path);
        if replaced > 0 {
            println!("regimes record appended to {path} (replaced {replaced} same-rev run)");
        } else {
            println!("regimes record appended to {path}");
        }
    }
}
