//! Checkpoint-format benchmark: stable-write bytes per round and reload
//! (recovery) time for the legacy full-image store against the delta
//! chain at k ∈ {1, 4, 16}, on a large-state mission — a 1 MiB state
//! image of which each round dirties ~4 KiB, the shape the incremental
//! format exists for (DESIGN.md §14).
//!
//! Every configuration commits the same checkpoint sequence through the
//! real two-phase disk store, then reopens the directory cold and walks
//! the chain back, asserting byte-identical reconstruction before timing
//! is trusted.
//!
//! A plain timing harness (`harness = false`).
//!
//! Environment knobs (all optional, used by `scripts/bench.sh`):
//!
//! - `BENCH_CHECKPOINT_ROUNDS`: committed rounds per configuration
//!   (default 64).
//! - `BENCH_CHECKPOINT_STATE_KIB`: state-image size (default 1024).
//! - `BENCH_JSON`: path of the JSON regression record; the run is
//!   appended to its `"checkpoint"` section.
//! - `BENCH_LABEL`, `BENCH_GIT_REV`: label and revision stored with the run.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use synergy_archive::DeltaStable;
use synergy_bench::record::{sanitize, BenchRecord};
use synergy_des::SimTime;
use synergy_storage::{Checkpoint, DiskStableStore, Stable};

/// Dirty bytes per round: one page-sized region at a round-dependent
/// offset, so consecutive states differ in exactly one small window.
const DIRTY_BYTES: usize = 4096;

fn env_or(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

fn bench_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("synergy-bench-ckpt-{}-{tag}", std::process::id()))
}

/// Mutates one 4 KiB window of the state for `round`, offset striding so
/// successive rounds never touch the same page.
fn mutate(state: &mut [u8], round: u64) {
    let pages = (state.len() / DIRTY_BYTES).max(1) as u64;
    let offset = ((round * 37) % pages) as usize * DIRTY_BYTES;
    let end = (offset + DIRTY_BYTES).min(state.len());
    for (i, b) in state[offset..end].iter_mut().enumerate() {
        *b = (round as u8).wrapping_add(i as u8);
    }
}

struct ConfigResult {
    /// `0` is the legacy full-image store.
    k: u32,
    bytes_per_round: f64,
    recover_ms: f64,
}

/// Commits `rounds` checkpoints of the evolving state through the given
/// store shape, measures persisted bytes per round, then reopens the
/// directory cold and times the reload (chain walk + reconstruction),
/// asserting the recovered image matches the final state byte-for-byte.
fn bench_config(k: u32, rounds: u64, state_bytes: usize) -> ConfigResult {
    let dir = bench_dir(&format!("k{k}"));
    let _ = std::fs::remove_dir_all(&dir);
    let retain = rounds as usize + 1;
    let mut state = vec![0u8; state_bytes];

    let commit_all = |store: &mut dyn Stable, state: &mut Vec<u8>| -> Checkpoint {
        let mut last = None;
        for round in 1..=rounds {
            mutate(state, round);
            let ckpt = Checkpoint::encode(round, SimTime::from_nanos(round), "bench", state)
                .expect("encode checkpoint");
            store.begin_write(ckpt.clone()).expect("begin");
            store.commit_write().expect("commit");
            last = Some(ckpt);
        }
        last.expect("at least one round")
    };

    let (bytes_per_round, final_ckpt) = if k == 0 {
        let mut store = DiskStableStore::open_with_retention(&dir, retain).expect("open disk");
        let last = commit_all(&mut store, &mut state);
        // The legacy store persists the full image every round.
        (last.size_bytes() as f64, last)
    } else {
        let disk = DiskStableStore::open_with_retention(&dir, retain).expect("open disk");
        let mut store = DeltaStable::open_with_retention(disk, k, retain);
        let last = commit_all(&mut store, &mut state);
        let ds = store.delta_stats();
        (ds.encoded_bytes as f64 / rounds as f64, last)
    };

    // Cold reload: reopen the directory and rebuild the latest image.
    let started = Instant::now();
    let recovered = if k == 0 {
        let store = DiskStableStore::open_with_retention(&dir, retain).expect("reopen disk");
        store.latest_shared()
    } else {
        let disk = DiskStableStore::open_with_retention(&dir, retain).expect("reopen disk");
        let store = DeltaStable::open_with_retention(disk, k, retain);
        assert_eq!(store.delta_stats().chain_orphans, 0, "chain intact");
        store.latest_shared()
    };
    let recover_ms = started.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        recovered.expect("a committed checkpoint survives"),
        final_ckpt,
        "recovery must be byte-identical before its timing is trusted"
    );

    let _ = std::fs::remove_dir_all(&dir);
    ConfigResult {
        k,
        bytes_per_round,
        recover_ms,
    }
}

fn config_key(k: u32) -> String {
    if k == 0 {
        "full".to_string()
    } else {
        format!("delta_k{k}")
    }
}

fn run_json(
    label: &str,
    git_rev: Option<&str>,
    rounds: u64,
    state_bytes: usize,
    results: &[ConfigResult],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "        \"label\": \"{}\",", sanitize(label));
    if let Some(rev) = git_rev {
        let _ = writeln!(s, "        \"git_rev\": \"{}\",", sanitize(rev));
    }
    let _ = writeln!(s, "        \"rounds\": {rounds},");
    let _ = writeln!(s, "        \"state_bytes\": {state_bytes},");
    let _ = writeln!(s, "        \"dirty_bytes_per_round\": {DIRTY_BYTES},");
    let _ = writeln!(s, "        \"configs\": {{");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "          \"{}\": {{ \"bytes_per_round\": {:.0}, \"recover_ms\": {:.3} }}{comma}",
            config_key(r.k),
            r.bytes_per_round,
            r.recover_ms,
        );
    }
    let _ = writeln!(s, "        }},");
    let full = &results[0];
    let best = results.last().expect("at least one config");
    let _ = writeln!(
        s,
        "        \"write_reduction_at_k{}\": {:.1}",
        best.k,
        full.bytes_per_round / best.bytes_per_round.max(1.0),
    );
    let _ = write!(s, "      }}");
    s
}

fn main() {
    let rounds = env_or("BENCH_CHECKPOINT_ROUNDS", 64);
    let state_bytes = env_or("BENCH_CHECKPOINT_STATE_KIB", 1024) as usize * 1024;

    let mut results = Vec::new();
    for k in [0u32, 1, 4, 16] {
        let r = bench_config(k, rounds, state_bytes);
        println!(
            "checkpoint/{}: {:.0} bytes/round, cold recovery {:.3} ms ({} rounds, {} KiB state)",
            config_key(r.k),
            r.bytes_per_round,
            r.recover_ms,
            rounds,
            state_bytes / 1024,
        );
        results.push(r);
    }
    let full = results[0].bytes_per_round;
    let k16 = results.last().expect("k=16 ran").bytes_per_round;
    println!(
        "checkpoint: stable-write volume down {:.1}x at k=16 vs full-image",
        full / k16.max(1.0)
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "run".into());
        let git_rev = std::env::var("BENCH_GIT_REV").ok();
        let mut record = BenchRecord::load(&path);
        let replaced = record.push_checkpoint_run(&run_json(
            &label,
            git_rev.as_deref(),
            rounds,
            state_bytes,
            &results,
        ));
        record.save(&path);
        if replaced > 0 {
            println!("checkpoint record appended to {path} (replaced {replaced} same-rev run)");
        } else {
            println!("checkpoint record appended to {path}");
        }
    }
}
