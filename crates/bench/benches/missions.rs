//! End-to-end mission benchmarks: one per scheme, plus a single Figure-7
//! sweep point, so `cargo bench` exercises every table/figure pipeline and
//! prints a compact summary of the experiment outputs alongside the timing
//! numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use synergy::{Mission, Scheme, SystemConfig};
use synergy_bench::{rollback_distances, Fig7Params};

fn mission(scheme: Scheme, seed: u64) -> synergy::MissionOutcome {
    Mission::new(
        SystemConfig::builder()
            .scheme(scheme)
            .seed(seed)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(2.0)
            .tb_interval_secs(5.0)
            .hardware_fault_at_secs(80.0)
            .trace(false)
            .build(),
    )
    .run()
}

fn bench_missions(c: &mut Criterion) {
    let mut group = c.benchmark_group("mission_120s");
    group.sample_size(10);
    for scheme in [
        Scheme::Coordinated,
        Scheme::WriteThrough,
        Scheme::Naive,
        Scheme::MdcdOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{scheme:?}")),
            &scheme,
            |b, &scheme| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(mission(scheme, seed))
                })
            },
        );
    }
    group.finish();
}

fn bench_fig7_point(c: &mut Criterion) {
    // One sweep point with few seeds: times the experiment pipeline and
    // prints the measured means so bench logs double as experiment records.
    let params = Fig7Params {
        seeds: 3,
        duration_secs: 300.0,
        external_per_min: 2.0,
        tb_interval_secs: 2.0,
    };
    let co = rollback_distances(Scheme::Coordinated, 120.0, params);
    let wt = rollback_distances(Scheme::WriteThrough, 120.0, params);
    eprintln!(
        "fig7@120msg/h (3 seeds): E[Dco]={:.2}s E[Dwt]={:.2}s",
        co.mean(),
        wt.mean()
    );
    let mut group = c.benchmark_group("fig7_sweep_point");
    group.sample_size(10);
    group.bench_function("coordinated_120_per_hour", |b| {
        b.iter(|| black_box(rollback_distances(Scheme::Coordinated, 120.0, params)))
    });
    group.finish();
}

criterion_group!(benches, bench_missions, bench_fig7_point);
criterion_main!(benches);
