//! End-to-end mission benchmarks: one per scheme, plus a single Figure-7
//! sweep point, so `cargo bench` exercises every table/figure pipeline and
//! prints a compact summary of the experiment outputs alongside the timing
//! numbers.
//!
//! A plain timing harness (`harness = false`): each configuration runs a
//! small number of full missions and reports the mean wall-clock per
//! mission.

use std::hint::black_box;
use std::time::Instant;

use synergy::{Mission, Scheme, SystemConfig};
use synergy_bench::{rollback_distances, Fig7Params};

fn mission(scheme: Scheme, seed: u64) -> synergy::MissionOutcome {
    Mission::new(
        SystemConfig::builder()
            .scheme(scheme)
            .seed(seed)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(2.0)
            .tb_interval_secs(5.0)
            .hardware_fault_at_secs(80.0)
            .trace(false)
            .build(),
    )
    .run()
}

fn bench_missions() {
    for scheme in [
        Scheme::Coordinated,
        Scheme::WriteThrough,
        Scheme::Naive,
        Scheme::MdcdOnly,
    ] {
        let samples = 10u64;
        let mut seed = 0u64;
        // warm-up
        seed += 1;
        black_box(mission(scheme, seed));
        let start = Instant::now();
        for _ in 0..samples {
            seed += 1;
            black_box(mission(scheme, seed));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / samples as f64;
        println!("mission_120s/{scheme:?}: {ms:.2} ms/mission ({samples} samples)");
    }
}

fn bench_fig7_point() {
    // One sweep point with few seeds: times the experiment pipeline and
    // prints the measured means so bench logs double as experiment records.
    let params = Fig7Params {
        seeds: 3,
        duration_secs: 300.0,
        external_per_min: 2.0,
        tb_interval_secs: 2.0,
    };
    let co = rollback_distances(Scheme::Coordinated, 120.0, params);
    let wt = rollback_distances(Scheme::WriteThrough, 120.0, params);
    eprintln!(
        "fig7@120msg/h (3 seeds): E[Dco]={:.2}s E[Dwt]={:.2}s",
        co.mean(),
        wt.mean()
    );
    let samples = 10u64;
    black_box(rollback_distances(Scheme::Coordinated, 120.0, params));
    let start = Instant::now();
    for _ in 0..samples {
        black_box(rollback_distances(Scheme::Coordinated, 120.0, params));
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / samples as f64;
    println!("fig7_sweep_point/coordinated_120_per_hour: {ms:.2} ms/run ({samples} samples)");
}

fn main() {
    bench_missions();
    bench_fig7_point();
}
