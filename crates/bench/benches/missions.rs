//! End-to-end mission benchmarks: one per scheme, plus a single Figure-7
//! sweep point, so `cargo bench` exercises every table/figure pipeline and
//! prints a compact summary of the experiment outputs alongside the timing
//! numbers.
//!
//! A plain timing harness (`harness = false`): each configuration runs a
//! small number of full missions and reports the mean wall-clock per
//! mission.
//!
//! Environment knobs (all optional, used by `scripts/bench.sh`):
//!
//! - `BENCH_SAMPLES`: timed missions per configuration (default 10).
//! - `BENCH_JSON`: path of a JSON regression record; the run is appended to
//!   its `"runs"` array (the file is created on first use).
//! - `BENCH_LABEL`: label stored with the run (default `"run"`).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use synergy::{Mission, Scheme, SystemConfig};
use synergy_bench::record::{sanitize, BenchRecord};
use synergy_bench::{rollback_distances, Fig7Params};

fn mission(scheme: Scheme, seed: u64) -> synergy::MissionOutcome {
    Mission::new(
        SystemConfig::builder()
            .scheme(scheme)
            .seed(seed)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(2.0)
            .tb_interval_secs(5.0)
            .hardware_fault_at_secs(80.0)
            .trace(false)
            .build(),
    )
    .run()
}

fn samples_from_env() -> u64 {
    std::env::var("BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10)
}

fn bench_missions(samples: u64) -> Vec<(&'static str, f64)> {
    let mut results = Vec::new();
    for (scheme, name) in [
        (Scheme::Coordinated, "Coordinated"),
        (Scheme::WriteThrough, "WriteThrough"),
        (Scheme::Naive, "Naive"),
        (Scheme::MdcdOnly, "MdcdOnly"),
    ] {
        let mut seed = 0u64;
        // warm-up
        seed += 1;
        black_box(mission(scheme, seed));
        let start = Instant::now();
        for _ in 0..samples {
            seed += 1;
            black_box(mission(scheme, seed));
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / samples as f64;
        println!("mission_120s/{name}: {ms:.2} ms/mission ({samples} samples)");
        results.push((name, ms));
    }
    results
}

struct Fig7Point {
    e_dco_s: f64,
    e_dwt_s: f64,
    sweep_ms: f64,
}

fn bench_fig7_point(samples: u64) -> Fig7Point {
    // One sweep point with few seeds: times the experiment pipeline and
    // prints the measured means so bench logs double as experiment records.
    let params = Fig7Params {
        seeds: 3,
        duration_secs: 300.0,
        external_per_min: 2.0,
        tb_interval_secs: 2.0,
    };
    let co = rollback_distances(Scheme::Coordinated, 120.0, params);
    let wt = rollback_distances(Scheme::WriteThrough, 120.0, params);
    eprintln!(
        "fig7@120msg/h (3 seeds): E[Dco]={:.2}s E[Dwt]={:.2}s",
        co.mean(),
        wt.mean()
    );
    black_box(rollback_distances(Scheme::Coordinated, 120.0, params));
    let start = Instant::now();
    for _ in 0..samples {
        black_box(rollback_distances(Scheme::Coordinated, 120.0, params));
    }
    let ms = start.elapsed().as_secs_f64() * 1e3 / samples as f64;
    println!("fig7_sweep_point/coordinated_120_per_hour: {ms:.2} ms/run ({samples} samples)");
    Fig7Point {
        e_dco_s: co.mean(),
        e_dwt_s: wt.mean(),
        sweep_ms: ms,
    }
}

/// One run as a JSON object, indented to sit inside the `"runs"` array.
fn run_json(
    label: &str,
    git_rev: Option<&str>,
    samples: u64,
    schemes: &[(&'static str, f64)],
    fig7: &Fig7Point,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "    {{");
    let _ = writeln!(s, "      \"label\": \"{}\",", sanitize(label));
    if let Some(rev) = git_rev {
        let _ = writeln!(s, "      \"git_rev\": \"{}\",", sanitize(rev));
    }
    let _ = writeln!(s, "      \"samples\": {samples},");
    let _ = writeln!(s, "      \"ms_per_mission\": {{");
    for (i, (name, ms)) in schemes.iter().enumerate() {
        let comma = if i + 1 < schemes.len() { "," } else { "" };
        let _ = writeln!(s, "        \"{name}\": {ms:.3}{comma}");
    }
    let _ = writeln!(s, "      }},");
    let _ = writeln!(s, "      \"fig7\": {{");
    let _ = writeln!(s, "        \"e_dco_s\": {:.3},", fig7.e_dco_s);
    let _ = writeln!(s, "        \"e_dwt_s\": {:.3},", fig7.e_dwt_s);
    let _ = writeln!(s, "        \"sweep_point_ms\": {:.3}", fig7.sweep_ms);
    let _ = writeln!(s, "      }}");
    let _ = write!(s, "    }}");
    s
}

fn main() {
    let samples = samples_from_env();
    let schemes = bench_missions(samples);
    let fig7 = bench_fig7_point(samples);
    if let Ok(path) = std::env::var("BENCH_JSON") {
        let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "run".into());
        let git_rev = std::env::var("BENCH_GIT_REV").ok();
        let mut record = BenchRecord::load(&path);
        let replaced = record.push_mission_run(&run_json(
            &label,
            git_rev.as_deref(),
            samples,
            &schemes,
            &fig7,
        ));
        record.save(&path);
        if replaced > 0 {
            println!("bench record appended to {path} (replaced {replaced} same-rev run)");
        } else {
            println!("bench record appended to {path}");
        }
    }
}
