//! Microbenchmarks of the protocol building blocks: engine event handling,
//! blocking-period arithmetic, checkpoint serialization, and the DES core.
//!
//! A plain timing harness (`harness = false`): each benchmark runs a short
//! warm-up, then a measured batch, and prints mean ns/iter plus throughput
//! where meaningful. No statistics beyond the mean — these numbers are for
//! spotting order-of-magnitude regressions, not for publication.

use std::hint::black_box;
use std::time::Instant;

use synergy::app::{Application, CounterApp};
use synergy::payload::CheckpointPayload;
use synergy_clocks::SyncParams;
use synergy_des::{DetRng, SimDuration, SimTime, Simulator};
use synergy_mdcd::{Event, MdcdConfig, PeerEngine};
use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
use synergy_storage::crc32;
use synergy_tb::{blocking_period, TbVariant};

/// Times `iters` runs of `f` after `warmup` unmeasured runs; returns mean ns.
fn time_ns(warmup: u64, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn report(name: &str, ns: f64, bytes_per_iter: Option<u64>) {
    match bytes_per_iter {
        Some(b) => {
            let gib_s = b as f64 / ns; // bytes/ns == GB/s
            println!("{name:<40} {ns:>12.1} ns/iter  {gib_s:>8.2} GB/s");
        }
        None => println!("{name:<40} {ns:>12.1} ns/iter"),
    }
}

fn bench_engine_handling() {
    let mut engine = PeerEngine::new(
        MdcdConfig::modified(),
        ProcessId(3),
        ProcessId(1),
        ProcessId(2),
    );
    let mut seq = 0u64;
    let ns = time_ns(1_000, 50_000, || {
        seq += 1;
        let env = Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(3),
            MessageBody::Application {
                payload: vec![1, 2, 3, 4],
                dirty: true,
            },
        );
        black_box(engine.handle(Event::Deliver(env)));
    });
    report("mdcd_engine/peer_deliver_app_message", ns, None);
}

fn bench_blocking_period() {
    let sync = SyncParams::new(SimDuration::from_micros(500), 1e-4);
    let ns = time_ns(10_000, 1_000_000, || {
        black_box(blocking_period(
            black_box(TbVariant::Adapted),
            sync,
            SimDuration::from_secs(60),
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
            black_box(true),
        ));
    });
    report("tb_blocking_period", ns, None);
}

fn bench_checkpoint_codec() {
    let mut app = CounterApp::new(7);
    for i in 0..200 {
        app.on_message(ProcessId(1), MsgSeqNo(i), &[i as u8; 16]);
    }
    let payload = CheckpointPayload::new(
        app.snapshot(),
        synergy_mdcd::EngineSnapshot::default(),
        Vec::new(),
        Vec::new(),
        SimTime::from_secs_f64(1.0),
    );
    let encoded = payload
        .clone()
        .into_checkpoint(1, "bench")
        .expect("encodes");
    let bytes = encoded.size_bytes() as u64;
    let ns = time_ns(100, 5_000, || {
        black_box(
            payload
                .clone()
                .into_checkpoint(1, "bench")
                .expect("encodes"),
        );
    });
    report("checkpoint_codec/encode", ns, Some(bytes));
    let ns = time_ns(100, 5_000, || {
        black_box(CheckpointPayload::from_checkpoint(&encoded).expect("decodes"));
    });
    report("checkpoint_codec/decode", ns, Some(bytes));
}

fn bench_crc32() {
    let data = vec![0xABu8; 64 * 1024];
    let ns = time_ns(50, 2_000, || {
        black_box(crc32(&data));
    });
    report("crc32/64KiB", ns, Some(data.len() as u64));
}

fn bench_des_scheduling() {
    let ns = time_ns(20, 500, || {
        let mut sim: Simulator<u32> = Simulator::new(0);
        let a = sim.register_actor("a");
        let mut rng = DetRng::new(1).stream("bench");
        for i in 0..1000 {
            let at: u64 = rng.gen_range(0..1_000_000);
            sim.schedule_at(SimTime::from_nanos(at), a, i);
        }
        let mut n = 0;
        while sim.step().is_some() {
            n += 1;
        }
        black_box(n);
    });
    report("des/schedule_and_drain_1000", ns / 1000.0, None);
}

fn main() {
    bench_engine_handling();
    bench_blocking_period();
    bench_checkpoint_codec();
    bench_crc32();
    bench_des_scheduling();
}
