//! Microbenchmarks of the protocol building blocks: engine event handling,
//! blocking-period arithmetic, checkpoint serialization, and the DES core.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use synergy::app::{Application, CounterApp};
use synergy::payload::CheckpointPayload;
use synergy_clocks::SyncParams;
use synergy_des::{DetRng, SimDuration, SimTime, Simulator};
use synergy_mdcd::{Event, MdcdConfig, PeerEngine};
use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
use synergy_storage::crc32;
use synergy_tb::{blocking_period, TbVariant};

fn bench_engine_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mdcd_engine");
    group.throughput(Throughput::Elements(1));
    group.bench_function("peer_deliver_app_message", |b| {
        let mut engine = PeerEngine::new(
            MdcdConfig::modified(),
            ProcessId(3),
            ProcessId(1),
            ProcessId(2),
        );
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            let env = Envelope::new(
                MsgId {
                    from: ProcessId(1),
                    seq: MsgSeqNo(seq),
                },
                ProcessId(3),
                MessageBody::Application {
                    payload: vec![1, 2, 3, 4],
                    dirty: true,
                },
            );
            black_box(engine.handle(Event::Deliver(env)))
        });
    });
    group.finish();
}

fn bench_blocking_period(c: &mut Criterion) {
    let sync = SyncParams::new(SimDuration::from_micros(500), 1e-4);
    c.bench_function("tb_blocking_period", |b| {
        b.iter(|| {
            blocking_period(
                black_box(TbVariant::Adapted),
                sync,
                SimDuration::from_secs(60),
                SimDuration::from_micros(200),
                SimDuration::from_millis(2),
                black_box(true),
            )
        })
    });
}

fn bench_checkpoint_codec(c: &mut Criterion) {
    let mut app = CounterApp::new(7);
    for i in 0..200 {
        app.on_message(ProcessId(1), MsgSeqNo(i), &[i as u8; 16]);
    }
    let payload = CheckpointPayload::new(
        app.snapshot(),
        synergy_mdcd::EngineSnapshot::default(),
        Vec::new(),
        Vec::new(),
        SimTime::from_secs_f64(1.0),
    );
    let encoded = payload
        .clone()
        .into_checkpoint(1, "bench")
        .expect("encodes");
    let mut group = c.benchmark_group("checkpoint_codec");
    group.throughput(Throughput::Bytes(encoded.size_bytes() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            black_box(
                payload
                    .clone()
                    .into_checkpoint(1, "bench")
                    .expect("encodes"),
            )
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(CheckpointPayload::from_checkpoint(&encoded).expect("decodes")))
    });
    group.finish();
}

fn bench_crc32(c: &mut Criterion) {
    let data = vec![0xABu8; 64 * 1024];
    let mut group = c.benchmark_group("crc32");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("64KiB", |b| b.iter(|| black_box(crc32(&data))));
    group.finish();
}

fn bench_des_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("schedule_and_drain_1000", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new(0);
            let a = sim.register_actor("a");
            let mut rng = DetRng::new(1).stream("bench");
            for i in 0..1000 {
                use rand::Rng;
                let at: u64 = rng.gen_range(0..1_000_000);
                sim.schedule_at(SimTime::from_nanos(at), a, i);
            }
            let mut n = 0;
            while sim.step().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_handling,
    bench_blocking_period,
    bench_checkpoint_codec,
    bench_crc32,
    bench_des_scheduling
);
criterion_main!(benches);
