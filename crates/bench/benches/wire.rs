//! Live-wire throughput benchmarks: frames/sec and bytes/sec over real
//! loopback sockets, comparing the sharded reactor against the legacy
//! thread-per-route transport on the two topologies the cluster runtime
//! actually uses — a 3-node full mesh (one-way streams) and a 16-route
//! request/ack fan-out (every envelope acknowledged back to the sender,
//! as the cluster ack protocol does).
//!
//! A plain timing harness (`harness = false`): each configuration moves a
//! fixed number of framed envelopes end-to-end (enqueue → syscall → decode
//! → delivery) and reports the sustained rate.
//!
//! Environment knobs (all optional, used by `scripts/bench.sh`):
//!
//! - `BENCH_WIRE_FRAMES`: frames per sender per configuration
//!   (default 100000 — sized so connection ramp-up does not dominate).
//! - `BENCH_JSON`: path of the JSON regression record; the run is appended
//!   to its `"wire"` section (the missions harness owns the top-level
//!   `"runs"` array).
//! - `BENCH_LABEL`, `BENCH_GIT_REV`: label and revision stored with the run.

use std::fmt::Write as _;
use std::sync::mpsc::Receiver;
use std::time::{Duration, Instant};

use synergy_bench::record::{sanitize, BenchRecord};
use synergy_net::{
    DeviceId, Endpoint, Envelope, LiveWire, MessageBody, MsgId, MsgSeqNo, ProcessId, Transport,
    WireKind, WirePolicy,
};

const PAYLOAD_BYTES: usize = 32;

fn frames_from_env() -> u64 {
    std::env::var("BENCH_WIRE_FRAMES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(100_000)
}

/// A policy that never drops under sustained load: the bench measures
/// throughput, so senders must block on a full ring, not shed frames.
fn bench_policy() -> WirePolicy {
    WirePolicy {
        send_stall: Duration::from_secs(60),
        ..WirePolicy::default()
    }
}

fn envelope(from: u32, to: Endpoint, seq: u64) -> Envelope {
    Envelope::new(
        MsgId {
            from: ProcessId(from),
            seq: MsgSeqNo(seq),
        },
        to,
        MessageBody::External {
            payload: vec![0u8; PAYLOAD_BYTES],
        },
    )
}

fn drain(rx: Receiver<Envelope>, expect: u64) -> std::thread::JoinHandle<u64> {
    std::thread::spawn(move || {
        let mut got = 0u64;
        while got < expect {
            // Deliveries arrive in coalesced bursts: drain each burst with
            // cheap non-blocking receives, park only when it runs dry.
            match rx.try_recv() {
                Ok(_) => got += 1,
                Err(_) => match rx.recv_timeout(Duration::from_secs(60)) {
                    Ok(_) => got += 1,
                    Err(_) => break,
                },
            }
        }
        got
    })
}

struct Rate {
    frames_per_sec: f64,
    mbytes_per_sec: f64,
}

fn rate(total_frames: u64, payload_frames: u64, elapsed: Duration) -> Rate {
    let secs = elapsed.as_secs_f64().max(1e-9);
    Rate {
        frames_per_sec: total_frames as f64 / secs,
        mbytes_per_sec: (payload_frames * PAYLOAD_BYTES as u64) as f64 / secs / 1e6,
    }
}

/// 3-node full mesh: every node sends `frames` envelopes round-robin to
/// its two peers while receiving from both. Total traffic `3 × frames`.
fn bench_mesh3(kind: WireKind, frames: u64) -> Rate {
    let wires: Vec<LiveWire> = (0..3)
        .map(|_| LiveWire::bind_with(kind, "127.0.0.1:0", bench_policy()).expect("bind"))
        .collect();
    let rxs: Vec<Receiver<Envelope>> = wires
        .iter()
        .enumerate()
        .map(|(i, w)| w.register(Endpoint::Process(ProcessId(i as u32 + 1))))
        .collect();
    for w in &wires {
        for (i, peer) in wires.iter().enumerate() {
            w.set_route(
                Endpoint::Process(ProcessId(i as u32 + 1)),
                peer.local_addr(),
            );
        }
    }
    // Each node receives `frames` total: its two peers each split their
    // own `frames` sends evenly across two destinations.
    let drains: Vec<_> = rxs.into_iter().map(|rx| drain(rx, frames)).collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for (i, w) in wires.iter().enumerate() {
            scope.spawn(move || {
                let me = i as u32 + 1;
                let peers: Vec<Endpoint> = (1..=3)
                    .filter(|&p| p != me)
                    .map(|p| Endpoint::Process(ProcessId(p)))
                    .collect();
                for seq in 0..frames {
                    w.send(envelope(me, peers[(seq % 2) as usize], seq));
                }
            });
        }
    });
    let delivered: u64 = drains.into_iter().map(|d| d.join().expect("drain")).sum();
    let elapsed = started.elapsed();
    assert_eq!(delivered, 3 * frames, "mesh3/{kind}: frames lost in flight");
    for w in &wires {
        w.shutdown();
    }
    rate(delivered, delivered, elapsed)
}

/// 16-route request/ack fan-out: one sender, sixteen single-endpoint
/// receivers on distinct addresses, each acknowledging every envelope back
/// to the sender — the shape of orchestrator traffic, where every
/// application message is transport-acked. This is the topology where
/// thread-per-route pays a thread and a frame-sized syscall per message
/// *in each direction*, while the reactor coalesces data writes and rides
/// up to [`WirePolicy::max_piggy_acks`] acks per carrier frame. The rate
/// counts frames moved end-to-end in both directions (`2 × frames`).
fn bench_fan_out(kind: WireKind, routes: u32, frames: u64) -> Rate {
    let receivers: Vec<LiveWire> = (0..routes)
        .map(|_| LiveWire::bind_with(kind, "127.0.0.1:0", bench_policy()).expect("bind"))
        .collect();
    let sender = LiveWire::bind_with(kind, "127.0.0.1:0", bench_policy()).expect("bind");
    let me = Endpoint::Process(ProcessId(99));
    let ack_rx = sender.register(me);
    let mut rxs = Vec::new();
    for (i, r) in receivers.iter().enumerate() {
        let endpoint = Endpoint::Device(DeviceId(i as u32));
        rxs.push(r.register(endpoint));
        sender.set_route(endpoint, r.local_addr());
        r.set_route(me, sender.local_addr());
    }

    let started = Instant::now();
    let acked = std::thread::scope(|scope| {
        for (i, rx) in rxs.into_iter().enumerate() {
            let r = &receivers[i];
            let per_route =
                frames / u64::from(routes) + u64::from((frames % u64::from(routes)) > i as u64);
            scope.spawn(move || {
                let from = ProcessId(100 + i as u32);
                for seq in 0..per_route {
                    let env = match rx.try_recv() {
                        Ok(env) => env,
                        Err(_) => match rx.recv_timeout(Duration::from_secs(60)) {
                            Ok(env) => env,
                            Err(_) => break,
                        },
                    };
                    r.send(Envelope::new(
                        MsgId {
                            from,
                            seq: MsgSeqNo(seq),
                        },
                        me,
                        MessageBody::Ack { of: env.id },
                    ));
                }
            });
        }
        let acks = drain(ack_rx, frames);
        for seq in 0..frames {
            let endpoint = Endpoint::Device(DeviceId((seq % u64::from(routes)) as u32));
            sender.send(envelope(99, endpoint, seq));
        }
        acks.join().expect("ack drain")
    });
    let elapsed = started.elapsed();
    assert_eq!(
        acked, frames,
        "routes{routes}/{kind}: frames lost in flight"
    );
    sender.shutdown();
    for r in &receivers {
        r.shutdown();
    }
    rate(2 * frames, frames, elapsed)
}

fn run_json(label: &str, git_rev: Option<&str>, frames: u64, results: &[(String, Rate)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "        \"label\": \"{}\",", sanitize(label));
    if let Some(rev) = git_rev {
        let _ = writeln!(s, "        \"git_rev\": \"{}\",", sanitize(rev));
    }
    let _ = writeln!(s, "        \"frames_per_sender\": {frames},");
    let _ = writeln!(s, "        \"payload_bytes\": {PAYLOAD_BYTES},");
    let _ = writeln!(s, "        \"topologies\": {{");
    for (i, (name, r)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "          \"{name}\": {{ \"frames_per_sec\": {:.0}, \"mbytes_per_sec\": {:.2} }}{comma}",
            r.frames_per_sec, r.mbytes_per_sec
        );
    }
    let _ = writeln!(s, "        }},");
    let speedup = speedup_16(results);
    let _ = writeln!(s, "        \"reactor_speedup_routes16\": {speedup:.2}");
    let _ = write!(s, "      }}");
    s
}

/// Reactor-over-threads frames/sec ratio on the 16-route topology — the
/// headline number the reactor migration is judged on.
fn speedup_16(results: &[(String, Rate)]) -> f64 {
    let fps = |name: &str| {
        results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.frames_per_sec)
            .unwrap_or(0.0)
    };
    fps("routes16_reactor") / fps("routes16_threads").max(1e-9)
}

fn main() {
    let frames = frames_from_env();
    let mut results: Vec<(String, Rate)> = Vec::new();
    for kind in [WireKind::Threads, WireKind::Reactor] {
        let r = bench_mesh3(kind, frames);
        println!(
            "wire/mesh3/{kind}: {:.0} frames/s, {:.2} MB/s ({frames} frames/sender)",
            r.frames_per_sec, r.mbytes_per_sec
        );
        results.push((format!("mesh3_{kind}"), r));
    }
    for kind in [WireKind::Threads, WireKind::Reactor] {
        let r = bench_fan_out(kind, 16, frames);
        println!(
            "wire/routes16/{kind}: {:.0} frames/s, {:.2} MB/s ({frames} frames total)",
            r.frames_per_sec, r.mbytes_per_sec
        );
        results.push((format!("routes16_{kind}"), r));
    }
    println!(
        "wire/routes16 reactor speedup over thread-per-route: {:.2}x",
        speedup_16(&results)
    );

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "run".into());
        let git_rev = std::env::var("BENCH_GIT_REV").ok();
        let mut record = BenchRecord::load(&path);
        let replaced =
            record.push_wire_run(&run_json(&label, git_rev.as_deref(), frames, &results));
        record.save(&path);
        if replaced > 0 {
            println!("wire record appended to {path} (replaced {replaced} same-rev run)");
        } else {
            println!("wire record appended to {path}");
        }
    }
}
