//! Regenerates **Figure 6**: the four coordinated stable-checkpoint
//! establishment cases — contents chosen by the dirty bit, adjusted by
//! `passed_AT` notifications inside the blocking period.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig6_cases
//! ```

use synergy::scenario::fig6_cases;

fn main() {
    let r = fig6_cases();
    println!("Figure 6 — stable-storage checkpoint establishment under coordination\n");
    println!(
        "(a) clean P2 saves its current state:                       {}",
        r.p2_clean_saves_current
    );
    println!(
        "(b) dirty P2 replaces the in-flight copy on passed_AT:      {}",
        r.p2_dirty_replaces_on_passed_at
    );
    println!(
        "(c) pseudo-clean P1act saves its current state:             {}",
        r.act_clean_saves_current
    );
    println!(
        "(d) pseudo-dirty P1act copies its pseudo checkpoint:        {}",
        r.act_dirty_copies_volatile
    );
    for (name, trace) in &r.traces {
        println!("\n--- scenario {name} ---");
        for e in trace.events() {
            if e.kind.starts_with("tb.") || e.kind.starts_with("ckpt") || e.kind.starts_with("at.")
            {
                println!("{e}");
            }
        }
    }
}
