//! Bounded model checking of the MDCD error-containment layer — the
//! paper's stated "formal validation" direction (§5), made executable.
//!
//! Exhaustively enumerates every network interleaving of several scripted
//! workloads and checks dirty-bit truthfulness, checkpoint cleanliness and
//! recovery safety in every reachable state.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin explore_interleavings
//! ```

use synergy::explorer::{default_scenario, explore, Step};
use synergy_bench::render_table;

fn main() {
    println!("Bounded exhaustive exploration of MDCD interleavings\n");
    let scenarios: Vec<(&str, Vec<Step>)> = vec![
        ("figure 1/3 pattern", default_scenario()),
        (
            "two validation cycles + trailing traffic",
            vec![
                Step::Component1 { external: false },
                Step::Component2 { external: false },
                Step::Component1 { external: true },
                Step::Component2 { external: false },
                Step::Component1 { external: false },
                Step::Component2 { external: true },
                Step::Component1 { external: false },
            ],
        ),
        (
            "peer-led contamination",
            vec![
                Step::Component2 { external: false },
                Step::Component2 { external: false },
                Step::Component1 { external: false },
                Step::Component1 { external: false },
                Step::Component2 { external: true },
                Step::Component1 { external: true },
            ],
        ),
        (
            "validation storm",
            vec![
                Step::Component1 { external: true },
                Step::Component1 { external: true },
                Step::Component1 { external: false },
                Step::Component2 { external: true },
                Step::Component1 { external: true },
            ],
        ),
    ];
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (name, scenario) in &scenarios {
        let report = explore(scenario, 5_000_000);
        all_ok &= report.all_hold();
        rows.push(vec![
            name.to_string(),
            scenario.len().to_string(),
            report.states.to_string(),
            report.transitions.to_string(),
            report.violations.len().to_string(),
            if report.truncated { "yes" } else { "no" }.to_string(),
        ]);
        for v in report.violations.iter().take(3) {
            println!("  VIOLATION in '{name}': {v}");
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "steps",
                "states",
                "transitions",
                "violations",
                "truncated"
            ],
            &rows,
        )
    );
    println!(
        "verdict: {}",
        if all_ok {
            "every reachable state of every scenario satisfies all invariants"
        } else {
            "VIOLATIONS FOUND"
        }
    );
    assert!(all_ok);
}
