//! Beyond-paper ablations called out in DESIGN.md:
//!
//! 1. rollback distance vs TB interval `Δ` (the model's crossover
//!    `Δ = 2/(λi+λv)` separates where coordination wins);
//! 2. rollback distance vs external (validation) rate;
//! 3. blocking overhead vs internal message rate.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin ablations
//! ```

use synergy::{Mission, Scheme, SystemConfig};
use synergy_bench::{par_seed_map, render_table};
use synergy_des::Summary;

fn distances(scheme: Scheme, delta: f64, ext_per_min: f64, int_per_min: f64) -> Summary {
    let seeds: Vec<u64> = (0..12).collect();
    let per_seed = par_seed_map(&seeds, |seed| {
        let fault = 300.0 + 37.0 * (seed as f64 % 5.0);
        let o = Mission::new(
            SystemConfig::builder()
                .scheme(scheme)
                .seed(seed)
                .duration_secs(600.0)
                .internal_rate_per_min(int_per_min)
                .external_rate_per_min(ext_per_min)
                .tb_interval_secs(delta)
                .hardware_fault_at_secs(fault)
                .trace(false)
                .build(),
        )
        .run();
        o.metrics.hardware_rollback_distances()
    });
    let mut s = Summary::new();
    for d in per_seed {
        s.extend(d);
    }
    s
}

fn main() {
    println!("Ablation 1 — rollback distance vs TB interval Δ (λi=1/min, λext=2/min)\n");
    let lambda_i = 1.0 / 60.0;
    let lambda_v = 2.0 * 2.0 / 60.0;
    let crossover = synergy::model::crossover_interval(lambda_v, lambda_i);
    println!("  model crossover: Δ = 2/(λi+λv) = {crossover:.1}s\n");
    let mut rows = Vec::new();
    for delta in [1.0, 2.0, 5.0, 10.0, 20.0, 40.0] {
        let co = distances(Scheme::Coordinated, delta, 2.0, 1.0);
        let wt = distances(Scheme::WriteThrough, delta, 2.0, 1.0);
        rows.push(vec![
            format!("{delta:.0}"),
            format!("{:.2}", co.mean()),
            format!("{:.2}", wt.mean()),
            format!("{:.2}x", wt.mean() / co.mean().max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(&["Δ (s)", "E[Dco] (s)", "E[Dwt] (s)", "improvement"], &rows)
    );

    println!("\nAblation 2 — rollback distance vs external (validation) rate (Δ=2s, λi=1/min)\n");
    let mut rows = Vec::new();
    for ext in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let co = distances(Scheme::Coordinated, 2.0, ext, 1.0);
        let wt = distances(Scheme::WriteThrough, 2.0, ext, 1.0);
        rows.push(vec![
            format!("{ext:.1}"),
            format!("{:.2}", co.mean()),
            format!("{:.2}", wt.mean()),
            format!("{:.2}x", wt.mean() / co.mean().max(1e-9)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["ext rate (/min)", "E[Dco] (s)", "E[Dwt] (s)", "improvement"],
            &rows,
        )
    );

    println!("\nAblation 3 — blocking overhead vs internal rate (coordinated, Δ=10s, 300s)\n");
    let mut rows = Vec::new();
    for int_rate in [1.0, 10.0, 60.0, 120.0] {
        let o = Mission::new(
            SystemConfig::builder()
                .scheme(Scheme::Coordinated)
                .seed(5)
                .duration_secs(300.0)
                .internal_rate_per_min(int_rate)
                .external_rate_per_min(2.0)
                .tb_interval_secs(10.0)
                .trace(false)
                .build(),
        )
        .run();
        let m = o.metrics;
        rows.push(vec![
            format!("{int_rate:.0}"),
            format!("{}", m.blocking_periods),
            format!("{:.2}", m.blocking_total.as_secs_f64() * 1e3),
            format!("{:.4}%", 100.0 * m.blocking_total.as_secs_f64() / 300.0),
            format!("{}", m.stable_replacements),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "int rate (/min)",
                "blocking periods",
                "total blocked (ms)",
                "% of mission",
                "replacements",
            ],
            &rows,
        )
    );
}
