//! Regenerates **Figure 2**: the two hazards of time-based checkpointing —
//! consistency violation by a post-checkpoint send, recoverability
//! violation by an in-transit message — and the mechanisms that fix them.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig2_violations
//! ```

use synergy::scenario::fig2_tb_hazards;

fn main() {
    let r = fig2_tb_hazards();
    println!("Figure 2 — global-state hazards of time-based checkpointing\n");
    println!("(a) without countermeasures:");
    println!(
        "    m1 (sent after Pa's checkpoint, read before Pb's) violates consistency: {}",
        r.consistency_violated_without_blocking
    );
    println!(
        "    m2 (in transit across the checkpoint line) violates recoverability:   {}",
        r.recoverability_violated_without_log
    );
    println!("\n(b) with the Neves-Fuchs countermeasures:");
    println!(
        "    post-checkpoint blocking period restores consistency:   {}",
        r.blocking_restores_consistency
    );
    println!(
        "    unacknowledged-message logging restores recoverability: {}",
        r.logging_restores_recoverability
    );
}
