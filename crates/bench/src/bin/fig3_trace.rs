//! Regenerates **Figure 3**: the modified MDCD protocol on the same message
//! pattern as Figure 1 — pseudo checkpoints appear at `P1act`, Type-2
//! checkpoints disappear.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig3_trace
//! ```

use synergy::scenario::{fig1_original_mdcd, fig3_modified_mdcd};

fn main() {
    let modified = fig3_modified_mdcd();
    println!("Figure 3 — modified MDCD protocol (coordination-ready)\n");
    for e in modified.trace.events() {
        if e.kind.starts_with("ckpt")
            || e.kind.starts_with("msg.send")
            || e.kind.starts_with("msg.recv")
            || e.kind.starts_with("at.")
        {
            println!("{e}");
        }
    }
    let original = fig1_original_mdcd();
    println!("\nside-by-side counts (same message schedule):");
    println!("  original (Fig. 1): {:?}", original.counts);
    println!("  modified (Fig. 3): {:?}", modified.counts);
    println!("\nmodification: P1act gains pseudo checkpoints (driven by its pseudo dirty");
    println!("bit), Type-2 checkpoints are eliminated, knowledge updates are preserved.");
}
