//! Regenerates **Figure 4**: the consequence of naively combining the
//! original MDCD and TB protocols, versus the coordinated scheme, under
//! identical workloads and hardware faults.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig4_naive_combination
//! ```

use synergy::scenario::fig4_naive_vs_coordinated;

fn main() {
    println!("Figure 4 — consequence of simple combination (20 seeded runs/scheme)\n");
    let r = fig4_naive_vs_coordinated(20);
    println!(
        "  naive combination:  {}/{} runs violated a global-state property",
        r.naive_violations, r.runs
    );
    println!(
        "  coordinated scheme: {}/{} runs violated a global-state property",
        r.coordinated_violations, r.runs
    );
    println!();
    println!("the naive TB timer persists whatever state it finds — often potentially");
    println!("contaminated (Fig. 4(a)) — so after a hardware fault the system can no");
    println!("longer recover from a subsequent software error; coordination always");
    println!("restores non-contaminated, mutually consistent states.");
    assert!(r.naive_violations > 0, "expected naive violations");
    assert_eq!(r.coordinated_violations, 0, "coordination must stay clean");
}
