//! Regenerates **Figure 1**: message-driven confidence-driven checkpoint
//! establishment under the original MDCD protocol, as a per-process
//! timeline.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig1_trace
//! ```

use synergy::scenario::fig1_original_mdcd;

fn main() {
    let report = fig1_original_mdcd();
    println!("Figure 1 — original MDCD checkpoint establishment\n");
    for e in report.trace.events() {
        if e.kind.starts_with("ckpt")
            || e.kind.starts_with("msg.send")
            || e.kind.starts_with("msg.recv")
            || e.kind.starts_with("at.")
        {
            println!("{e}");
        }
    }
    println!("\ncounts: {:?}", report.counts);
    println!("Type-1 checkpoints before contamination, Type-2 after validation;");
    println!("P1act (original protocol) takes no checkpoints; AT on external messages only.");
}
