//! Regenerates **Figure 7**: expected rollback distance `E[D_co]` vs
//! `E[D_wt]` as a function of the internal message rate.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin fig7_rollback
//! ```

use synergy_bench::{fig7_sweep, render_table, Fig7Params};

fn main() {
    let params = Fig7Params::default();
    println!("Figure 7 — expected rollback distance vs internal message rate");
    println!(
        "  parameters: Δ={}s, external rate {}/min/component, {} seeds/point, {}s missions",
        params.tb_interval_secs, params.external_per_min, params.seeds, params.duration_secs
    );
    println!();
    let points = fig7_sweep(params);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.internal_per_hour),
                format!("{:.2}", p.coordinated.mean()),
                format!("±{:.2}", p.coordinated.ci95_half_width()),
                format!("{:.2}", p.write_through.mean()),
                format!("±{:.2}", p.write_through.ci95_half_width()),
                format!("{:.2}", p.model_co),
                format!("{:.2}", p.model_wt),
                format!(
                    "{:.1}x",
                    p.write_through.mean() / p.coordinated.mean().max(1e-9)
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "rate/h",
                "E[Dco] (s)",
                "ci95",
                "E[Dwt] (s)",
                "ci95",
                "model co",
                "model wt",
                "improvement",
            ],
            &rows,
        )
    );
    println!("paper claim: E[Dco] significantly below E[Dwt] across the sweep;");
    println!(
        "E[Dwt] is set by the (external) validation rate, E[Dco] by Δ and the dirty fraction."
    );
}
