//! Command-line mission runner: configure a guarded mission, inject faults,
//! and print the outcome (optionally the full event trace).
//!
//! ```text
//! cargo run --release -p synergy-bench --bin mission -- \
//!     --scheme coordinated --seed 7 --duration 120 \
//!     --internal 30 --external 4 --interval 5 \
//!     --sw-fault 40 --hw-fault 80 --trace
//! ```

use std::process::exit;

use synergy::{Mission, Scheme, SystemConfig};

const USAGE: &str = "\
usage: mission [options]
  --scheme S       coordinated | write-through | naive | mdcd-only  (default coordinated)
  --seed N         random seed                                      (default 0)
  --duration SECS  mission length in seconds                        (default 120)
  --internal R     internal messages per minute per component       (default 30)
  --external R     external messages per minute per component       (default 4)
  --interval SECS  TB checkpoint interval                           (default 5)
  --sw-fault SECS  activate the design fault at this time
  --hw-fault SECS  crash P2's node at this time (repeatable)
  --node N         node for subsequent --hw-fault flags (0|1|2)     (default 2)
  --trace          print the full event trace
  --help           this text";

fn parse_f64(args: &mut std::slice::Iter<'_, String>, flag: &str) -> f64 {
    match args.next().map(|s| s.parse::<f64>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("error: {flag} expects a number\n{USAGE}");
            exit(2);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = argv.iter();
    let mut builder = SystemConfig::builder();
    let mut duration = 120.0;
    let mut print_trace = false;
    let mut node = 2usize;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scheme" => {
                let scheme = match args.next().map(String::as_str) {
                    Some("coordinated") => Scheme::Coordinated,
                    Some("write-through") => Scheme::WriteThrough,
                    Some("naive") => Scheme::Naive,
                    Some("mdcd-only") => Scheme::MdcdOnly,
                    other => {
                        eprintln!("error: unknown scheme {other:?}\n{USAGE}");
                        exit(2);
                    }
                };
                builder = builder.scheme(scheme);
            }
            "--seed" => builder = builder.seed(parse_f64(&mut args, "--seed") as u64),
            "--duration" => {
                duration = parse_f64(&mut args, "--duration");
                builder = builder.duration_secs(duration);
            }
            "--internal" => {
                builder = builder.internal_rate_per_min(parse_f64(&mut args, "--internal"));
            }
            "--external" => {
                builder = builder.external_rate_per_min(parse_f64(&mut args, "--external"));
            }
            "--interval" => {
                builder = builder.tb_interval_secs(parse_f64(&mut args, "--interval"));
            }
            "--sw-fault" => {
                builder = builder.software_fault_at_secs(parse_f64(&mut args, "--sw-fault"));
            }
            "--hw-fault" => {
                let at = parse_f64(&mut args, "--hw-fault");
                builder = builder.hardware_fault(synergy::HardwareFault {
                    at: synergy_des::SimTime::from_secs_f64(at),
                    node,
                });
            }
            "--node" => {
                node = parse_f64(&mut args, "--node") as usize;
                if node > 2 {
                    eprintln!("error: --node must be 0, 1 or 2");
                    exit(2);
                }
            }
            "--trace" => print_trace = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                exit(2);
            }
        }
    }

    let outcome = Mission::new(builder.build()).run();
    if print_trace {
        for e in outcome.trace.events() {
            println!("{e}");
        }
        println!();
    }
    let m = &outcome.metrics;
    println!("mission: {duration:.0}s");
    println!(
        "  messages: {} sent, {} delivered, {} re-sent",
        m.messages_sent, m.messages_delivered, m.messages_resent
    );
    println!(
        "  checkpoints: {} type-1, {} type-2, {} pseudo, {} stable ({} replaced)",
        m.type1_ckpts, m.type2_ckpts, m.pseudo_ckpts, m.stable_commits, m.stable_replacements
    );
    println!(
        "  acceptance tests: {} run, {} failed",
        m.at_runs, m.at_failures
    );
    println!(
        "  recoveries: {} software, {} hardware (shadow promoted: {})",
        m.software_recoveries, m.hardware_recoveries, outcome.shadow_promoted
    );
    for r in &m.rollbacks {
        println!(
            "    {:?} @ {}: {} {} ({:.3}s undone)",
            r.cause,
            r.at,
            synergy::system::process_name(r.process),
            r.decision,
            r.distance_secs
        );
    }
    println!(
        "  blocking: {} periods, {:.3}s total",
        m.blocking_periods,
        m.blocking_total.as_secs_f64()
    );
    println!("  device messages: {}", outcome.device_messages);
    println!(
        "  global-state checks: {} run; verdict: {}",
        outcome.verdicts.checks_run,
        if outcome.verdicts.all_hold() {
            "ALL PROPERTIES HOLD".to_string()
        } else {
            format!("{} VIOLATIONS", outcome.verdicts.violations.len())
        }
    );
    for v in outcome.verdicts.violations.iter().take(10) {
        println!("    {v}");
    }
    if !outcome.verdicts.all_hold() {
        exit(1);
    }
}
