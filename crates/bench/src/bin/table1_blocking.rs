//! Regenerates **Table 1**: original vs adapted TB protocol — blocking
//! period lengths, checkpoint contents, messages blocked, purpose — with
//! both the closed-form values and durations measured from simulation.
//!
//! ```text
//! cargo run --release -p synergy-bench --bin table1_blocking
//! ```

use synergy::{Mission, Scheme, SystemConfig};
use synergy_bench::render_table;
use synergy_clocks::SyncParams;
use synergy_des::{SimDuration, Summary};
use synergy_tb::{blocking_period, TbVariant};

fn measured_blocking(scheme: Scheme, seeds: u64) -> (Summary, Summary, u64, u64) {
    // Returns (clean blocking, dirty blocking, replacements, commits).
    let mut clean = Summary::new();
    let mut dirty = Summary::new();
    let mut replacements = 0;
    let mut commits = 0;
    for seed in 0..seeds {
        let outcome = Mission::new(
            SystemConfig::builder()
                .scheme(scheme)
                .seed(seed)
                .duration_secs(300.0)
                .internal_rate_per_min(2.0)
                .external_rate_per_min(2.0)
                .tb_interval_secs(10.0)
                .build(),
        )
        .run();
        replacements += outcome.metrics.stable_replacements;
        commits += outcome.metrics.stable_commits;
        let mut last_dirty: Option<bool> = None;
        for e in outcome.trace.events() {
            if e.kind == "tb.timer" {
                last_dirty = Some(e.detail.contains("dirty=1"));
            } else if e.kind == "tb.blocking" {
                let secs: f64 = e
                    .detail
                    .trim_start_matches("for ")
                    .trim_end_matches('s')
                    .parse()
                    .unwrap_or(0.0);
                match last_dirty {
                    Some(true) => dirty.push(secs * 1e3),
                    Some(false) => clean.push(secs * 1e3),
                    None => {}
                }
            }
        }
    }
    (clean, dirty, replacements, commits)
}

fn main() {
    let sync = SyncParams::new(SimDuration::from_micros(500), 1e-4);
    let tmin = SimDuration::from_micros(200);
    let tmax = SimDuration::from_millis(2);
    let elapsed = SimDuration::from_secs(60);

    println!("Table 1 — original vs adapted TB protocol");
    println!("  (δ=500µs, ρ=1e-4, tmin=200µs, tmax=2ms, τ=60s since resync)\n");

    let bp = |variant, dirty| {
        let d = blocking_period(variant, sync, elapsed, tmin, tmax, dirty);
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    };
    let rows = vec![
        vec![
            "blocking period (formula)".to_string(),
            format!("τ = δ+2ρτ−tmin = {}", bp(TbVariant::Original, true)),
            format!(
                "τ(0) = {} / τ(1) = δ+2ρτ+tmax = {}",
                bp(TbVariant::Adapted, false),
                bp(TbVariant::Adapted, true)
            ),
        ],
        vec![
            "checkpoint contents".to_string(),
            "current state".to_string(),
            "current state (clean) or most recent volatile checkpoint (dirty)".to_string(),
        ],
        vec![
            "messages blocked".to_string(),
            "all".to_string(),
            "all but passed_AT notifications".to_string(),
        ],
        vec![
            "purpose of blocking".to_string(),
            "consistency".to_string(),
            "consistency and recoverability".to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(&["attribute", "original TB", "adapted TB"], &rows)
    );

    println!("measured from simulation (5 seeds, Δ=10s):");
    let (clean_n, dirty_n, repl_n, commits_n) = measured_blocking(Scheme::Naive, 5);
    let (clean_c, dirty_c, repl_c, commits_c) = measured_blocking(Scheme::Coordinated, 5);
    let rows = vec![
        vec![
            "original TB (naive scheme)".to_string(),
            format!("{:.3} ms", clean_n.mean()),
            format!("{:.3} ms", dirty_n.mean()),
            format!("{repl_n}"),
            format!("{commits_n}"),
        ],
        vec![
            "adapted TB (coordinated)".to_string(),
            format!("{:.3} ms", clean_c.mean()),
            format!("{:.3} ms", dirty_c.mean()),
            format!("{repl_c}"),
            format!("{commits_c}"),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "variant",
                "blocking (clean)",
                "blocking (dirty)",
                "replacements",
                "commits",
            ],
            &rows,
        )
    );
    println!("note: original TB blocks the same duration regardless of the dirty bit;");
    println!(
        "adapted TB lengthens dirty-process blocking by tmax+tmin to catch in-flight passed_AT."
    );
}
