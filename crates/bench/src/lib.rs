//! Shared experiment harness code for the `synergy-ft` tables and figures.
//!
//! Every table and figure of the DSN 2001 paper has a corresponding binary
//! in `src/bin/` that regenerates it (see DESIGN.md §4 for the index);
//! the sweep logic they share lives here so integration tests can assert on
//! the same numbers the binaries print.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod record;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use synergy::{Mission, Scheme, SystemConfig};
use synergy_des::Summary;

/// Runs `f(seed)` for every seed on scoped worker threads and returns the
/// results **in seed order**.
///
/// Missions are deterministic per seed and share no state, so the parallel
/// sweep produces results identical to the serial loop — workers claim
/// seeds from a shared cursor but write each result into its seed's slot,
/// keeping the output ordering stable regardless of scheduling.
pub fn par_seed_map<T: Send>(seeds: &[u64], f: impl Fn(u64) -> T + Sync) -> Vec<T> {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(seeds.len())
        .max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&seed) = seeds.get(i) else { break };
                let result = f(seed);
                *slots[i].lock().expect("no panics while holding slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker did not panic")
                .expect("every slot filled")
        })
        .collect()
}

/// One x-axis point of the Figure 7 sweep.
#[derive(Clone, Debug)]
pub struct Fig7Point {
    /// Internal message rate, in messages per hour per component.
    pub internal_per_hour: f64,
    /// Measured rollback distances under coordination (seconds).
    pub coordinated: Summary,
    /// Measured rollback distances under write-through (seconds).
    pub write_through: Summary,
    /// Analytic `E[D_co]` prediction.
    pub model_co: f64,
    /// Analytic `E[D_wt]` prediction.
    pub model_wt: f64,
}

/// Parameters of the Figure 7 sweep (shared by the binary, the timing
/// bench and the integration test).
#[derive(Clone, Copy, Debug)]
pub struct Fig7Params {
    /// Seeds per point (more = tighter confidence intervals).
    pub seeds: u64,
    /// Mission length in seconds.
    pub duration_secs: f64,
    /// External (validated) message rate per component, per minute.
    pub external_per_min: f64,
    /// TB checkpoint interval in seconds.
    pub tb_interval_secs: f64,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            seeds: 20,
            duration_secs: 900.0,
            external_per_min: 2.0,
            tb_interval_secs: 2.0,
        }
    }
}

/// One seed's mission of the Figure 7 sweep: run, check invariants, return
/// the hardware rollback distances.
fn rollback_distances_for_seed(
    scheme: Scheme,
    internal_per_hour: f64,
    params: Fig7Params,
    seed: u64,
) -> Vec<f64> {
    // Spread the fault over the middle of the mission so distances are
    // sampled at many phases of the checkpoint/validation cycles.
    let fault_at = params.duration_secs * (0.55 + 0.3 * (seed as f64 / params.seeds as f64));
    let outcome = Mission::new(
        SystemConfig::builder()
            .scheme(scheme)
            .seed(seed)
            .duration_secs(params.duration_secs)
            .internal_rate_per_min(internal_per_hour / 60.0)
            .external_rate_per_min(params.external_per_min)
            .tb_interval_secs(params.tb_interval_secs)
            .hardware_fault_at_secs(fault_at)
            .trace(false)
            .build(),
    )
    .run();
    if scheme == Scheme::WriteThrough {
        // The write-through baseline's per-validation checkpoints are
        // not taken simultaneously across processes, so rare
        // interleavings violate recoverability (a message acked between
        // the receiver's and the sender's Type-2 writes is reflected as
        // sent but neither received nor restorable). The paper
        // criticizes write-through only on cost; this reproduction
        // additionally observes the correctness gap (EXPERIMENTS.md).
        // Validity must still hold: restored states are never
        // contaminated.
        assert!(
            outcome.verdicts.of("validity-self").is_empty()
                && outcome.verdicts.of("validity-ground-truth").is_empty(),
            "{scheme:?} violated validity: {:?}",
            outcome.verdicts.violations
        );
    } else {
        assert!(
            outcome.verdicts.all_hold(),
            "{scheme:?} violated invariants: {:?}",
            outcome.verdicts.violations
        );
    }
    outcome.metrics.hardware_rollback_distances()
}

/// Runs one scheme at one internal rate over `params.seeds` seeded missions
/// (in parallel, one mission per worker) and collects every hardware
/// rollback distance in seed order.
pub fn rollback_distances(scheme: Scheme, internal_per_hour: f64, params: Fig7Params) -> Summary {
    let seeds: Vec<u64> = (0..params.seeds).collect();
    let per_seed = par_seed_map(&seeds, |seed| {
        rollback_distances_for_seed(scheme, internal_per_hour, params, seed)
    });
    let mut summary = Summary::new();
    for distances in per_seed {
        summary.extend(distances);
    }
    summary
}

/// The full Figure 7 sweep: internal rate 60..=200 messages/hour.
pub fn fig7_sweep(params: Fig7Params) -> Vec<Fig7Point> {
    let lambda_v = 2.0 * params.external_per_min / 60.0; // both components validate
    (60..=200)
        .step_by(20)
        .map(|rate| {
            let rate = rate as f64;
            let lambda_i = rate / 3600.0;
            Fig7Point {
                internal_per_hour: rate,
                coordinated: rollback_distances(Scheme::Coordinated, rate, params),
                write_through: rollback_distances(Scheme::WriteThrough, rate, params),
                model_co: synergy::model::expected_rollback_coordinated(
                    lambda_v,
                    lambda_i,
                    params.tb_interval_secs,
                ),
                model_wt: synergy::model::expected_rollback_write_through(lambda_v),
            }
        })
        .collect()
}

/// Renders a row-aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns_columns() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     "));
    }

    #[test]
    fn parallel_sweep_matches_serial_per_seed() {
        // The tentpole guarantee: spreading seeded missions over threads
        // changes nothing — every per-seed result is identical to the
        // serial loop's, and the output ordering is seed order.
        let seeds: Vec<u64> = (0..32).collect();
        let run = |seed: u64| {
            let o = Mission::new(
                SystemConfig::builder()
                    .scheme(Scheme::Coordinated)
                    .seed(seed)
                    .duration_secs(40.0)
                    .internal_rate_per_min(30.0)
                    .external_rate_per_min(4.0)
                    .tb_interval_secs(2.0)
                    .hardware_fault_at_secs(25.0)
                    .trace(false)
                    .build(),
            )
            .run();
            (
                seed,
                o.metrics.messages_sent,
                o.metrics.stable_commits,
                o.device_messages,
                o.metrics.hardware_rollback_distances(),
            )
        };
        let serial: Vec<_> = seeds.iter().map(|&s| run(s)).collect();
        let parallel = par_seed_map(&seeds, run);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn par_seed_map_preserves_seed_order() {
        let seeds: Vec<u64> = (0..100).collect();
        let doubled = par_seed_map(&seeds, |s| s * 2);
        assert_eq!(doubled, seeds.iter().map(|s| s * 2).collect::<Vec<_>>());
        assert!(par_seed_map(&[], |s: u64| s).is_empty());
    }

    #[test]
    fn small_sweep_point_produces_distances() {
        let params = Fig7Params {
            seeds: 2,
            duration_secs: 120.0,
            external_per_min: 4.0,
            tb_interval_secs: 2.0,
        };
        let s = rollback_distances(Scheme::Coordinated, 120.0, params);
        assert_eq!(s.len(), 6, "3 processes x 2 seeds");
        assert!(s.mean() >= 0.0);
    }
}
