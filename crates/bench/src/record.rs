//! The JSON bench-regression record shared by the timing harnesses.
//!
//! `BENCH_missions.json` is a hand-rolled format owned end-to-end by this
//! workspace — no JSON library is involved, so [`sanitize`] keeps the
//! structural characters (quotes, braces) out of every string field and the
//! parser can track nesting exactly:
//!
//! ```json
//! {
//!   "bench": "missions",
//!   "runs": [ { ...one mission run per git rev... } ],
//!   "wire": {
//!     "runs": [ { ...one wire-throughput run per git rev... } ]
//!   },
//!   "fleet": {
//!     "runs": [ { ...one fleet-scaling run per git rev... } ]
//!   }
//! }
//! ```
//!
//! The `missions`, `wire`, `fleet`, `checkpoint` and `regimes` harnesses
//! all append to the same
//! file; [`BenchRecord`] parses whichever sections exist, replaces
//! same-`git_rev` runs (re-benching one commit updates its numbers instead
//! of stacking duplicates), and renders the whole record back.

use std::fmt::Write as _;

/// Strips characters that would break the hand-rolled record format:
/// quotes (string delimiters) and braces/brackets (the depth tracker).
pub fn sanitize(field: &str) -> String {
    field
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '{' | '}' | '[' | ']' | '\\' => '_',
            other => other,
        })
        .collect()
}

/// Extracts the `"git_rev"` value from one run object's text, if present.
pub fn run_git_rev(run: &str) -> Option<&str> {
    let rest = &run[run.find("\"git_rev\": \"")? + "\"git_rev\": \"".len()..];
    rest.find('"').map(|end| &rest[..end])
}

/// Collects the top-level `{…}` objects of the array opened by `key`,
/// stopping at the array's own closing `]` — a later sibling section in
/// the same document is never swallowed.
fn array_objects(text: &str, key: &str) -> Vec<String> {
    let body = match text.find(key) {
        Some(pos) => &text[pos + key.len()..],
        None => return Vec::new(),
    };
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '{' => {
                depth += 1;
                current.push(ch);
            }
            '}' => {
                depth -= 1;
                current.push(ch);
                if depth == 0 {
                    objects.push(std::mem::take(&mut current));
                }
            }
            ']' if depth == 0 => break,
            _ if depth > 0 => current.push(ch),
            _ => {}
        }
    }
    objects
}

/// Replaces any run from the same `git_rev`, then appends; returns how
/// many runs were replaced.
fn push_dedup(runs: &mut Vec<String>, run: &str) -> usize {
    let replaced = if let Some(rev) = run_git_rev(run) {
        let before = runs.len();
        runs.retain(|r| run_git_rev(r) != Some(rev));
        before - runs.len()
    } else {
        0
    };
    runs.push(run.trim().to_string());
    replaced
}

fn render_runs(out: &mut String, runs: &[String], indent: &str) {
    for (i, r) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(out, "{indent}{r}{comma}");
    }
}

/// The parsed regression record: mission-timing runs, wire-throughput
/// runs and fleet-scaling runs, each an opaque pre-rendered JSON object
/// string.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BenchRecord {
    /// Objects of the top-level `"runs"` array (the missions harness).
    pub mission_runs: Vec<String>,
    /// Objects of the `"wire"` section's `"runs"` array.
    pub wire_runs: Vec<String>,
    /// Objects of the `"fleet"` section's `"runs"` array.
    pub fleet_runs: Vec<String>,
    /// Objects of the `"checkpoint"` section's `"runs"` array.
    pub checkpoint_runs: Vec<String>,
    /// Objects of the `"regimes"` section's `"runs"` array.
    pub regimes_runs: Vec<String>,
}

/// The marker opening the wire section. [`sanitize`] guarantees no string
/// field can contain a literal `"`, so this sequence is always structure.
const WIRE_KEY: &str = "\"wire\": {";

/// The marker opening the fleet section; always rendered after the wire
/// section (when both exist).
const FLEET_KEY: &str = "\"fleet\": {";

/// The marker opening the checkpoint section; rendered after fleet.
const CHECKPOINT_KEY: &str = "\"checkpoint\": {";

/// The marker opening the unmasked-regime section; always rendered last.
const REGIMES_KEY: &str = "\"regimes\": {";

impl BenchRecord {
    /// Loads the record at `path`; a missing or unreadable file is an
    /// empty record (the first bench run creates it).
    pub fn load(path: &str) -> BenchRecord {
        std::fs::read_to_string(path)
            .map(|text| BenchRecord::parse(&text))
            .unwrap_or_default()
    }

    /// Parses a rendered record.
    pub fn parse(record: &str) -> BenchRecord {
        let (rest, regimes_part) = match record.find(REGIMES_KEY) {
            Some(pos) => record.split_at(pos),
            None => (record, ""),
        };
        let (rest, checkpoint_part) = match rest.find(CHECKPOINT_KEY) {
            Some(pos) => rest.split_at(pos),
            None => (rest, ""),
        };
        let (rest, fleet_part) = match rest.find(FLEET_KEY) {
            Some(pos) => rest.split_at(pos),
            None => (rest, ""),
        };
        let (mission_part, wire_part) = match rest.find(WIRE_KEY) {
            Some(pos) => rest.split_at(pos),
            None => (rest, ""),
        };
        BenchRecord {
            mission_runs: array_objects(mission_part, "\"runs\": ["),
            wire_runs: array_objects(wire_part, "\"runs\": ["),
            fleet_runs: array_objects(fleet_part, "\"runs\": ["),
            checkpoint_runs: array_objects(checkpoint_part, "\"runs\": ["),
            regimes_runs: array_objects(regimes_part, "\"runs\": ["),
        }
    }

    /// Appends a mission run, replacing any prior run of the same
    /// `git_rev`; returns how many runs were replaced.
    pub fn push_mission_run(&mut self, run: &str) -> usize {
        push_dedup(&mut self.mission_runs, run)
    }

    /// Appends a wire run, replacing any prior run of the same `git_rev`;
    /// returns how many runs were replaced.
    pub fn push_wire_run(&mut self, run: &str) -> usize {
        push_dedup(&mut self.wire_runs, run)
    }

    /// Appends a fleet run, replacing any prior run of the same `git_rev`;
    /// returns how many runs were replaced.
    pub fn push_fleet_run(&mut self, run: &str) -> usize {
        push_dedup(&mut self.fleet_runs, run)
    }

    /// Appends a checkpoint run, replacing any prior run of the same
    /// `git_rev`; returns how many runs were replaced.
    pub fn push_checkpoint_run(&mut self, run: &str) -> usize {
        push_dedup(&mut self.checkpoint_runs, run)
    }

    /// Appends an unmasked-regime run, replacing any prior run of the
    /// same `git_rev`; returns how many runs were replaced.
    pub fn push_regimes_run(&mut self, run: &str) -> usize {
        push_dedup(&mut self.regimes_runs, run)
    }

    /// Renders the full record. The `"wire"`, `"fleet"`, `"checkpoint"`
    /// and `"regimes"` sections are omitted while they have no runs, so
    /// mission-only records keep their historical shape.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n  \"bench\": \"missions\",\n  \"runs\": [\n");
        render_runs(&mut out, &self.mission_runs, "    ");
        out.push_str("  ]");
        for (key, runs) in [
            (WIRE_KEY, &self.wire_runs),
            (FLEET_KEY, &self.fleet_runs),
            (CHECKPOINT_KEY, &self.checkpoint_runs),
            (REGIMES_KEY, &self.regimes_runs),
        ] {
            if runs.is_empty() {
                continue;
            }
            out.push_str(",\n  ");
            out.push_str(key);
            out.push_str("\n    \"runs\": [\n");
            render_runs(&mut out, runs, "      ");
            out.push_str("    ]\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the rendered record to `path`.
    ///
    /// # Panics
    ///
    /// On filesystem errors — a bench harness has nothing to fall back to.
    pub fn save(&self, path: &str) {
        std::fs::write(path, self.render()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(label: &str, rev: Option<&str>) -> String {
        let mut s = format!("{{\n      \"label\": \"{label}\",\n");
        if let Some(rev) = rev {
            let _ = writeln!(s, "      \"git_rev\": \"{rev}\",");
        }
        s.push_str("      \"value\": 1\n    }");
        s
    }

    #[test]
    fn roundtrips_through_render_and_parse() {
        let mut rec = BenchRecord::default();
        rec.push_mission_run(&run("m1", Some("aaa")));
        rec.push_mission_run(&run("m2", Some("bbb")));
        rec.push_wire_run(&run("w1", Some("aaa")));
        rec.push_fleet_run(&run("f1", Some("aaa")));
        rec.push_checkpoint_run(&run("c1", Some("aaa")));
        rec.push_regimes_run(&run("r1", Some("aaa")));
        let back = BenchRecord::parse(&rec.render());
        assert_eq!(back.mission_runs.len(), 2);
        assert_eq!(back.wire_runs.len(), 1);
        assert_eq!(back.fleet_runs.len(), 1);
        assert_eq!(back.checkpoint_runs.len(), 1);
        assert_eq!(back.regimes_runs.len(), 1);
        assert_eq!(BenchRecord::parse(&back.render()), back);
    }

    #[test]
    fn regimes_runs_stay_out_of_the_other_sections() {
        let mut rec = BenchRecord::default();
        rec.push_checkpoint_run(&run("c", Some("aaa")));
        rec.push_regimes_run(&run("r", Some("aaa")));
        let back = BenchRecord::parse(&rec.render());
        assert_eq!(back.checkpoint_runs.len(), 1);
        assert_eq!(back.regimes_runs.len(), 1);
        assert!(back.regimes_runs[0].contains("\"label\": \"r\""));
        // A regimes-only record (no other sections) parses too.
        let mut solo = BenchRecord::default();
        solo.push_regimes_run(&run("only", Some("bbb")));
        let back = BenchRecord::parse(&solo.render());
        assert_eq!(back.regimes_runs.len(), 1);
        assert!(back.mission_runs.is_empty());
        assert!(back.checkpoint_runs.is_empty());
    }

    #[test]
    fn checkpoint_runs_stay_out_of_the_other_sections() {
        let mut rec = BenchRecord::default();
        rec.push_fleet_run(&run("f", Some("aaa")));
        rec.push_checkpoint_run(&run("c", Some("aaa")));
        let back = BenchRecord::parse(&rec.render());
        assert_eq!(back.fleet_runs.len(), 1);
        assert_eq!(back.checkpoint_runs.len(), 1);
        assert!(back.checkpoint_runs[0].contains("\"label\": \"c\""));
        // A checkpoint-only record (no wire or fleet section) parses too.
        let mut solo = BenchRecord::default();
        solo.push_checkpoint_run(&run("only", Some("bbb")));
        let back = BenchRecord::parse(&solo.render());
        assert_eq!(back.checkpoint_runs.len(), 1);
        assert!(back.mission_runs.is_empty());
        assert!(back.fleet_runs.is_empty());
    }

    #[test]
    fn fleet_runs_stay_out_of_the_other_sections() {
        let mut rec = BenchRecord::default();
        rec.push_mission_run(&run("m", Some("aaa")));
        rec.push_fleet_run(&run("f", Some("aaa")));
        let back = BenchRecord::parse(&rec.render());
        assert_eq!(back.mission_runs.len(), 1, "{}", rec.render());
        assert_eq!(back.wire_runs.len(), 0);
        assert_eq!(back.fleet_runs.len(), 1);
        assert!(back.fleet_runs[0].contains("\"label\": \"f\""));
        // A fleet-only record (no wire section) still parses cleanly.
        let mut solo = BenchRecord::default();
        solo.push_fleet_run(&run("only", Some("bbb")));
        let back = BenchRecord::parse(&solo.render());
        assert_eq!(back.fleet_runs.len(), 1);
        assert!(back.mission_runs.is_empty());
    }

    #[test]
    fn wire_runs_are_not_swallowed_into_mission_runs() {
        // The regression this module exists for: a depth-naive splitter
        // scanning to EOF would read the wire section's run objects as
        // extra mission runs.
        let mut rec = BenchRecord::default();
        rec.push_mission_run(&run("m", Some("aaa")));
        rec.push_wire_run(&run("w", Some("aaa")));
        rec.push_wire_run(&run("w", Some("bbb")));
        let back = BenchRecord::parse(&rec.render());
        assert_eq!(back.mission_runs.len(), 1, "{}", rec.render());
        assert_eq!(back.wire_runs.len(), 2);
        assert!(back.mission_runs[0].contains("\"label\": \"m\""));
    }

    #[test]
    fn same_rev_runs_are_replaced_per_section() {
        let mut rec = BenchRecord::default();
        assert_eq!(rec.push_mission_run(&run("old", Some("aaa"))), 0);
        assert_eq!(rec.push_mission_run(&run("new", Some("aaa"))), 1);
        assert_eq!(rec.mission_runs.len(), 1);
        assert!(rec.mission_runs[0].contains("\"label\": \"new\""));
        // Dedup is per section: the wire run of the same rev survives.
        rec.push_wire_run(&run("wire", Some("aaa")));
        rec.push_mission_run(&run("newer", Some("aaa")));
        assert_eq!(rec.wire_runs.len(), 1);
    }

    #[test]
    fn runs_without_a_rev_stack_instead_of_replacing() {
        let mut rec = BenchRecord::default();
        rec.push_mission_run(&run("a", None));
        assert_eq!(rec.push_mission_run(&run("b", None)), 0);
        assert_eq!(rec.mission_runs.len(), 2);
    }

    #[test]
    fn mission_only_records_keep_their_historical_shape() {
        let mut rec = BenchRecord::default();
        rec.push_mission_run(&run("m", Some("aaa")));
        let text = rec.render();
        assert!(!text.contains("\"wire\""));
        assert!(text.ends_with("  ]\n}\n"));
    }

    #[test]
    fn sanitize_strips_structural_characters() {
        assert_eq!(sanitize(r#"a"b{c}d[e]f\g"#), "a'b_c_d_e_f_g");
    }

    #[test]
    fn git_rev_extraction() {
        assert_eq!(run_git_rev(&run("x", Some("abc123"))), Some("abc123"));
        assert_eq!(run_git_rev(&run("x", None)), None);
    }
}
