//! The event loop core.

use std::collections::HashSet;

use crate::event::{ActorId, EventId, Fired};
use crate::queue::EventQueue;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// A deterministic discrete-event simulator.
///
/// The simulator is driver-agnostic: callers pop fired events with
/// [`step`](Simulator::step) and dispatch them however they like, scheduling
/// follow-up events back onto the simulator. This keeps protocol code free of
/// callback lifetimes while retaining a single, totally ordered timeline.
///
/// # Example
///
/// ```rust
/// use synergy_des::{Simulator, SimDuration};
///
/// let mut sim: Simulator<u32> = Simulator::new(0);
/// let actor = sim.register_actor("worker");
/// sim.schedule_in(SimDuration::from_secs(1), actor, 41);
/// while let Some(fired) = sim.step() {
///     if fired.event == 41 {
///         sim.schedule_in(SimDuration::from_secs(1), actor, 42);
///     }
/// }
/// assert_eq!(sim.now().as_secs_f64(), 2.0);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    cancelled: HashSet<EventId>,
    next_event_id: u64,
    actor_names: Vec<String>,
    rng: DetRng,
    trace: Trace,
}

impl<E> Simulator<E> {
    /// Creates a simulator whose random streams derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(seed, 0)
    }

    /// Creates a simulator pre-sized for roughly `pending_hint` concurrently
    /// pending events. The hint bounds neither the queue nor correctness —
    /// it only avoids early heap regrowth on the mission hot path.
    pub fn with_capacity(seed: u64, pending_hint: usize) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::with_capacity(pending_hint),
            cancelled: HashSet::with_capacity(pending_hint),
            next_event_id: 0,
            actor_names: Vec::new(),
            rng: DetRng::new(seed),
            trace: Trace::new(),
        }
    }

    /// Registers an actor and returns its id. Names are used in traces.
    pub fn register_actor(&mut self, name: impl Into<String>) -> ActorId {
        let id = ActorId(u32::try_from(self.actor_names.len()).expect("too many actors"));
        self.actor_names.push(name.into());
        id
    }

    /// The name given to `actor` at registration.
    ///
    /// # Panics
    ///
    /// Panics if `actor` was not registered with this simulator.
    pub fn actor_name(&self, actor: ActorId) -> &str {
        &self.actor_names[actor.index()]
    }

    /// Current virtual time (the fire time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Derives a deterministic random stream for `label`.
    pub fn rng_stream(&self, label: &str) -> DetRng {
        self.rng.stream(label)
    }

    /// Schedules `event` for `actor` at the absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulator's past.
    pub fn schedule_at(&mut self, at: SimTime, actor: ActorId, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let id = EventId(self.next_event_id);
        self.next_event_id += 1;
        self.queue.push(at, actor, id, event);
        id
    }

    /// Schedules `event` for `actor` after the relative delay `after`.
    pub fn schedule_in(&mut self, after: SimDuration, actor: ActorId, event: E) -> EventId {
        self.schedule_at(self.now + after, actor, event)
    }

    /// Cancels a previously scheduled event. Returns `true` when the event
    /// had not yet fired (or been cancelled).
    ///
    /// Cancellation is lazy: the entry stays in the queue and is dropped when
    /// popped. Ids of events that already fired would otherwise pool in the
    /// tombstone set for the rest of the mission, so once the set outgrows
    /// the queue it is pruned back to ids that are still pending — an
    /// amortized O(pending) sweep that keeps memory bounded on long runs.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_event_id {
            return false;
        }
        let inserted = self.cancelled.insert(id);
        if inserted && self.cancelled.len() > self.queue.len() + 16 {
            let pending: HashSet<EventId> = self.queue.ids().collect();
            self.cancelled.retain(|c| pending.contains(c));
        }
        inserted
    }

    /// Pops the next non-cancelled event, advancing virtual time to its fire
    /// instant. Returns `None` when the timeline is exhausted.
    pub fn step(&mut self) -> Option<Fired<E>> {
        while let Some(entry) = self.queue.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            debug_assert!(entry.time >= self.now);
            self.now = entry.time;
            return Some(Fired {
                time: entry.time,
                actor: entry.actor,
                id: entry.id,
                event: entry.event,
            });
        }
        None
    }

    /// The fire instant of the next pending event, if any. Cancelled events
    /// may be reported until they are popped.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Number of queued (possibly cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether no events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Structured trace recorder shared by all components of the run.
    pub fn trace(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Read-only access to the trace recorder.
    pub fn trace_ref(&self) -> &Trace {
        &self.trace
    }

    /// Whether trace recording is currently enabled. Callers with expensive
    /// trace arguments should gate on this (or use
    /// [`record_with`](Simulator::record_with)) so disabled sweeps format
    /// nothing.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// Consumes the simulator, yielding its trace without cloning the
    /// recorded events.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Records a trace event at the current instant.
    pub fn record(&mut self, actor: ActorId, kind: impl Into<String>, detail: impl Into<String>) {
        if !self.trace.is_enabled() {
            return;
        }
        let name = self.actor_names[actor.index()].clone();
        let now = self.now;
        self.trace.record(now, name, kind, detail);
    }

    /// Records a trace event whose `(kind, detail)` pair is built lazily;
    /// `make` (and any formatting inside it) only runs while tracing is
    /// enabled.
    pub fn record_with<K, D>(&mut self, actor: ActorId, make: impl FnOnce() -> (K, D))
    where
        K: Into<String>,
        D: Into<String>,
    {
        if !self.trace.is_enabled() {
            return;
        }
        let name = self.actor_names[actor.index()].clone();
        let now = self.now;
        self.trace.record_with(now, name, make);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Simulator<&str> = Simulator::new(0);
        let a = sim.register_actor("a");
        sim.schedule_at(SimTime::from_nanos(20), a, "later");
        sim.schedule_at(SimTime::from_nanos(10), a, "sooner");
        assert_eq!(sim.step().unwrap().event, "sooner");
        assert_eq!(sim.now(), SimTime::from_nanos(10));
        assert_eq!(sim.step().unwrap().event, "later");
        assert!(sim.step().is_none());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut sim: Simulator<&str> = Simulator::new(0);
        let a = sim.register_actor("a");
        let id = sim.schedule_in(SimDuration::from_nanos(5), a, "dropped");
        sim.schedule_in(SimDuration::from_nanos(9), a, "kept");
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel reports false");
        let fired = sim.step().unwrap();
        assert_eq!(fired.event, "kept");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulator<&str> = Simulator::new(0);
        assert!(!sim.cancel(EventId(123)));
    }

    #[test]
    fn cancelled_set_stays_bounded_over_long_runs() {
        // Repeatedly schedule-then-cancel (the reschedule-a-timer pattern):
        // the tombstone set must not grow with mission length.
        let mut sim: Simulator<u32> = Simulator::new(0);
        let a = sim.register_actor("a");
        for i in 0..10_000 {
            let id = sim.schedule_in(SimDuration::from_nanos(5), a, i);
            sim.cancel(id);
            // Pop the tombstone so the queue drains like a real mission.
            while sim.step().is_some() {}
        }
        assert!(
            sim.cancelled.len() <= 32,
            "cancelled tombstones leaked: {}",
            sim.cancelled.len()
        );
    }

    #[test]
    fn pruning_preserves_pending_cancellations() {
        let mut sim: Simulator<u32> = Simulator::new(0);
        let a = sim.register_actor("a");
        // One far-future event we cancel and must *stay* cancelled across
        // prune sweeps triggered by later churn.
        let far = sim.schedule_at(SimTime::from_nanos(1_000_000), a, 999);
        sim.cancel(far);
        for i in 0..1000 {
            let id = sim.schedule_in(SimDuration::from_nanos(1), a, i);
            sim.cancel(id);
            while sim.step().is_some() {}
        }
        assert!(sim.step().is_none(), "cancelled far event must never fire");
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut sim: Simulator<&str> = Simulator::with_capacity(7, 64);
        let a = sim.register_actor("a");
        sim.schedule_in(SimDuration::from_nanos(3), a, "x");
        assert_eq!(sim.step().unwrap().event, "x");
        assert_eq!(
            sim.rng_stream("s").gen_range(0u64..100),
            Simulator::<u8>::new(7).rng_stream("s").gen_range(0u64..100),
            "seed derivation is capacity-independent"
        );
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Simulator<&str> = Simulator::new(0);
        let a = sim.register_actor("a");
        sim.schedule_at(SimTime::from_nanos(10), a, "x");
        sim.step();
        sim.schedule_at(SimTime::from_nanos(5), a, "bad");
    }

    #[test]
    fn identical_seeds_replay_identically() {
        fn run(seed: u64) -> Vec<(u64, u32)> {
            let mut sim: Simulator<u32> = Simulator::new(seed);
            let a = sim.register_actor("a");
            let mut rng = sim.rng_stream("jitter");
            for i in 0..50 {
                let jitter: u64 = rng.gen_range(0..1000);
                sim.schedule_at(SimTime::from_nanos(jitter), a, i);
            }
            let mut out = Vec::new();
            while let Some(f) = sim.step() {
                out.push((f.time.as_nanos(), f.event));
            }
            out
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn trace_records_at_current_time() {
        let mut sim: Simulator<&str> = Simulator::new(0);
        let a = sim.register_actor("proc");
        sim.schedule_at(SimTime::from_nanos(30), a, "tick");
        sim.step();
        sim.record(a, "ckpt", "type-1");
        let events = sim.trace_ref().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time, SimTime::from_nanos(30));
        assert_eq!(events[0].actor, "proc");
        assert_eq!(events[0].kind, "ckpt");
    }
}
