//! Deterministic pending-event queue.
//!
//! Events are ordered by `(time, sequence)` where `sequence` is a strictly
//! increasing insertion counter, so ties at the same virtual instant fire in
//! scheduling (FIFO) order. This is the property that makes whole-system
//! replays bit-identical across runs.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::event::{ActorId, EventId};
use crate::time::SimTime;

#[derive(Debug)]
pub(crate) struct Entry<E> {
    pub time: SimTime,
    pub seq: u64,
    pub actor: ActorId,
    pub id: EventId,
    pub event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of pending events with deterministic tie-breaking.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, actor: ActorId, id: EventId, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            seq,
            actor,
            id,
            event,
        }));
    }

    pub fn pop(&mut self) -> Option<Entry<E>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Ids of every entry still queued (cancelled tombstones included), in
    /// arbitrary order. Used to prune the simulator's cancelled set.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        self.heap.iter().map(|Reverse(e)| e.id)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> EventQueue<&'static str> {
        EventQueue::with_capacity(0)
    }

    #[test]
    fn orders_by_time() {
        let mut q = q();
        q.push(SimTime::from_nanos(30), ActorId(0), EventId(0), "c");
        q.push(SimTime::from_nanos(10), ActorId(0), EventId(1), "a");
        q.push(SimTime::from_nanos(20), ActorId(0), EventId(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_fifo_order() {
        let mut q = q();
        let t = SimTime::from_nanos(5);
        for (i, name) in ["first", "second", "third"].iter().enumerate() {
            q.push(t, ActorId(0), EventId(i as u64), name);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = q();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), ActorId(0), EventId(0), "x");
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }
}
