//! Seeded, stream-splittable random number generation.
//!
//! Every stochastic element of a simulation (each link's delay draws, each
//! fault injector, each workload generator) gets its own *stream* derived
//! from the run seed and a stable label. Adding a new consumer therefore
//! never perturbs the draws seen by existing consumers, which keeps
//! experiment configurations comparable across code changes.
//!
//! The generator is a self-contained xoshiro256** core seeded through
//! splitmix64, so simulations are reproducible from the seed alone with no
//! external dependency whose internals could drift between versions.

use core::ops::{Range, RangeInclusive};

/// A deterministic random number generator with labelled sub-streams.
///
/// # Example
///
/// ```rust
/// use synergy_des::DetRng;
///
/// let mut a = DetRng::new(7).stream("link:1->2");
/// let mut b = DetRng::new(7).stream("link:1->2");
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates the root generator for a run seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            state: seed_state(seed),
        }
    }

    /// The run seed this generator (and all of its streams) derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for `label`.
    ///
    /// The derivation depends only on the run seed and the label, never on
    /// how many values have been drawn from `self`.
    pub fn stream(&self, label: &str) -> DetRng {
        let mut h = fnv1a(self.seed.to_le_bytes().as_slice());
        h = fnv1a_continue(h, label.as_bytes());
        DetRng {
            seed: h,
            state: seed_state(splitmix64(h)),
        }
    }

    /// Derives an independent generator for a numbered sub-stream.
    pub fn stream_indexed(&self, label: &str, index: u64) -> DetRng {
        self.stream(&format!("{label}#{index}"))
    }

    /// The next 64 uniformly random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// If `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// If the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform draw in `[0, bound)`, using a widening multiply (the bias
    /// for any bound representable here is below 2^-64 per draw).
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Ranges [`DetRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut DetRng) -> T;
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut DetRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded_u64(self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut DetRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.bounded_u64(span + 1)
    }
}

impl SampleRange<u128> for Range<u128> {
    fn sample(self, rng: &mut DetRng) -> u128 {
        assert!(self.start < self.end, "empty range");
        let span = self.end - self.start;
        // Modulo sampling; the bias is negligible for the sub-second spans
        // drawn through this path.
        let draw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        self.start + draw % span
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Rounding can land exactly on the excluded upper bound; step back in.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut DetRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

fn seed_state(seed: u64) -> [u64; 4] {
    // splitmix64 expansion, the canonical way to seed xoshiro from one word.
    let mut x = seed;
    let mut state = [0u64; 4];
    for slot in &mut state {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        *slot = z ^ (z >> 31);
    }
    if state == [0; 4] {
        // xoshiro's one forbidden state.
        state[0] = 0x9e37_79b9_7f4a_7c15;
    }
    state
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_draws() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let root = DetRng::new(99);
        let fresh = root.stream("workload");
        let mut consumed_root = DetRng::new(99);
        let _ = consumed_root.next_u64();
        let after = consumed_root.stream("workload");
        let mut a = fresh;
        let mut b = after;
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let root = DetRng::new(5);
        let mut a = root.stream("a");
        let mut b = root.stream("b");
        let mut ai = root.stream_indexed("a", 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = root.stream("a");
        let _ = a2.next_u64();
        assert_ne!(a2.next_u64(), ai.next_u64());
    }

    #[test]
    fn uniform_range_respected() {
        let mut r = DetRng::new(3).stream("range");
        for _ in 0..1000 {
            let v: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..=12);
            assert!((10..=12).contains(&v));
        }
        for _ in 0..1000 {
            let v: u64 = r.gen_range(0..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = DetRng::new(11).stream("bool");
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(13);
        let mut buf = [0u8; 11];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut r2 = DetRng::new(13);
        let mut buf2 = [0u8; 11];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }
}
