//! Seeded, stream-splittable random number generation.
//!
//! Every stochastic element of a simulation (each link's delay draws, each
//! fault injector, each workload generator) gets its own *stream* derived
//! from the run seed and a stable label. Adding a new consumer therefore
//! never perturbs the draws seen by existing consumers, which keeps
//! experiment configurations comparable across code changes.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// A deterministic random number generator with labelled sub-streams.
///
/// # Example
///
/// ```rust
/// use rand::Rng;
/// use synergy_des::DetRng;
///
/// let mut a = DetRng::new(7).stream("link:1->2");
/// let mut b = DetRng::new(7).stream("link:1->2");
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Creates the root generator for a run seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The run seed this generator (and all of its streams) derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for `label`.
    ///
    /// The derivation depends only on the run seed and the label, never on
    /// how many values have been drawn from `self`.
    pub fn stream(&self, label: &str) -> DetRng {
        let mut h = fnv1a(self.seed.to_le_bytes().as_slice());
        h = fnv1a_continue(h, label.as_bytes());
        DetRng {
            seed: h,
            inner: StdRng::seed_from_u64(splitmix64(h)),
        }
    }

    /// Derives an independent generator for a numbered sub-stream.
    pub fn stream_indexed(&self, label: &str, index: u64) -> DetRng {
        self.stream(&format!("{label}#{index}"))
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(0xcbf2_9ce4_8422_2325, bytes)
}

fn fnv1a_continue(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_draws() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(1);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn streams_are_independent_of_parent_consumption() {
        let root = DetRng::new(99);
        let fresh = root.stream("workload");
        let mut consumed_root = DetRng::new(99);
        let _: u64 = consumed_root.gen();
        let after = consumed_root.stream("workload");
        let mut a = fresh;
        let mut b = after;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn distinct_labels_distinct_streams() {
        let root = DetRng::new(5);
        let mut a = root.stream("a");
        let mut b = root.stream("b");
        let mut ai = root.stream_indexed("a", 1);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
        let mut a2 = root.stream("a");
        let _ = a2.gen::<u64>();
        assert_ne!(a2.gen::<u64>(), ai.gen::<u64>());
    }

    #[test]
    fn uniform_range_respected() {
        let mut r = DetRng::new(3).stream("range");
        for _ in 0..1000 {
            let v: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }
}
