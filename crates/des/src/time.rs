//! Virtual time types.
//!
//! All simulation time is kept in integer nanoseconds so that arithmetic is
//! exact and schedules replay identically across runs and platforms.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated (true/global) time axis, in
/// nanoseconds since the start of the simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from nanoseconds since the origin.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// The span from `other` to `self`, or [`SimDuration::ZERO`] when `other`
    /// is later.
    pub fn saturating_duration_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Constructs a span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs a span from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Subtraction clamping at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a non-negative float, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor: {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        let back = t - SimDuration::from_millis(500);
        assert_eq!(back, SimTime::from_nanos(1_000_000_000));
        assert_eq!(t - back, SimDuration::from_millis(500));
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimTime::from_secs_f64(2.0).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(50);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(40));
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs_f64(1.25).to_string(), "1.250000s");
        assert_eq!(SimDuration::from_millis(3).to_string(), "0.003000s");
    }
}
