//! Small-sample statistics used by the experiment harnesses.

use core::fmt;

/// Summary statistics over a set of f64 observations.
///
/// # Example
///
/// ```rust
/// use synergy_des::Summary;
///
/// let s: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.samples.push(x);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observations were added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation (n−1 denominator); 0.0 for fewer than two
    /// observations.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n as f64 - 1.0);
        var.sqrt()
    }

    /// Half-width of the ~95% normal-approximation confidence interval on the
    /// mean.
    pub fn ci95_half_width(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.samples.len() as f64).sqrt()
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().copied().fold(f64::INFINITY, f64::min)
        }
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }

    /// The raw observations in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (95% CI) min={:.4} max={:.4}",
            self.len(),
            self.mean(),
            self.ci95_half_width(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev() - 2.13809).abs() < 1e-4);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles() {
        let s: Summary = (1..=100).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        let med = s.quantile(0.5);
        assert!((49.0..=51.0).contains(&med));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().push(f64::NAN);
    }

    #[test]
    fn display_mentions_count() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        assert!(s.to_string().contains("n=2"));
    }
}
