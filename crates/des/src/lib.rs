//! Deterministic discrete-event simulation kernel for the `synergy-ft`
//! workspace.
//!
//! The kernel is deliberately small: virtual [`SimTime`], a deterministic
//! event queue with FIFO tie-breaking, cancellable timers, seeded random
//! number streams, and a structured trace recorder. Protocol logic lives in
//! the `synergy-mdcd` / `synergy-tb` crates; this crate only decides *when*
//! things happen.
//!
//! # Example
//!
//! ```rust
//! use synergy_des::{Simulator, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sim: Simulator<Ev> = Simulator::new(42);
//! let a = sim.register_actor("a");
//! sim.schedule_in(SimDuration::from_millis(5), a, Ev::Ping);
//! let fired = sim.step().expect("one event pending");
//! assert_eq!(fired.time, SimTime::ZERO + SimDuration::from_millis(5));
//! assert_eq!(fired.event, Ev::Ping);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod queue;
mod rng;
mod simulator;
mod stats;
mod time;
mod trace;

pub use event::{ActorId, EventId, Fired};
pub use rng::DetRng;
pub use simulator::Simulator;
pub use stats::Summary;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
