//! Identifiers and the record produced when an event fires.

use core::fmt;

use crate::time::SimTime;

/// Identifies an actor registered with a [`crate::Simulator`].
///
/// Actors are the addressable endpoints of the simulation: protocol
/// processes, network links, storage devices, fault injectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub(crate) u32);

impl ActorId {
    /// The raw index of this actor (stable for the life of the simulator).
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// Identifies a scheduled event; returned by the scheduling methods and
/// accepted by [`crate::Simulator::cancel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event#{}", self.0)
    }
}

/// A fired event, as returned by [`crate::Simulator::step`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fired<E> {
    /// The virtual instant at which the event fired; the simulator clock has
    /// been advanced to this instant.
    pub time: SimTime,
    /// The actor the event was addressed to.
    pub actor: ActorId,
    /// The identifier under which the event was scheduled.
    pub id: EventId,
    /// The payload supplied at scheduling time.
    pub event: E,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format() {
        assert_eq!(ActorId(3).to_string(), "actor#3");
        assert_eq!(EventId(9).to_string(), "event#9");
        assert_eq!(ActorId(3).index(), 3);
    }
}
