//! Structured run traces.
//!
//! The experiment binaries that regenerate the paper's figures render these
//! traces as per-process timelines, so trace events carry only plain strings
//! and a time stamp — nothing protocol-specific.

use core::fmt;

use crate::time::SimTime;

/// One recorded occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual instant of the occurrence.
    pub time: SimTime,
    /// Name of the actor it happened at.
    pub actor: String,
    /// Machine-matchable kind tag, e.g. `"ckpt.type1"` or `"msg.send"`.
    pub kind: String,
    /// Free-form human detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<8} {:<18} {}",
            self.time.to_string(),
            self.actor,
            self.kind,
            self.detail
        )
    }
}

/// An append-only collection of [`TraceEvent`]s for one run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Disables recording; long statistical sweeps turn tracing off to avoid
    /// unbounded memory growth.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Whether events are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op while disabled).
    pub fn record(
        &mut self,
        time: SimTime,
        actor: impl Into<String>,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                actor: actor.into(),
                kind: kind.into(),
                detail: detail.into(),
            });
        }
    }

    /// Appends an event built by `make` — the closure (and therefore any
    /// string formatting inside it) only runs while recording is enabled, so
    /// `trace(false)` sweeps pay nothing for trace arguments.
    pub fn record_with<K, D>(
        &mut self,
        time: SimTime,
        actor: impl Into<String>,
        make: impl FnOnce() -> (K, D),
    ) where
        K: Into<String>,
        D: Into<String>,
    {
        if self.enabled {
            let (kind, detail) = make();
            self.events.push(TraceEvent {
                time,
                actor: actor.into(),
                kind: kind.into(),
                detail: detail.into(),
            });
        }
    }

    /// All recorded events in time order (the recording order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events whose kind starts with `prefix`.
    pub fn by_kind<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind.starts_with(prefix))
    }

    /// Events recorded at the named actor.
    pub fn by_actor<'a>(&'a self, actor: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.actor == actor)
    }

    /// Renders the whole trace, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(SimTime::from_nanos(1), "P1act", "msg.send", "m1 -> P2");
        t.record(SimTime::from_nanos(2), "P2", "ckpt.type1", "B_k");
        t.record(SimTime::from_nanos(3), "P2", "msg.recv", "m1");
        t
    }

    #[test]
    fn filters_by_kind_prefix() {
        let t = sample();
        let msgs: Vec<_> = t.by_kind("msg.").collect();
        assert_eq!(msgs.len(), 2);
        let ckpts: Vec<_> = t.by_kind("ckpt").collect();
        assert_eq!(ckpts.len(), 1);
        assert_eq!(ckpts[0].detail, "B_k");
    }

    #[test]
    fn filters_by_actor() {
        let t = sample();
        assert_eq!(t.by_actor("P2").count(), 2);
        assert_eq!(t.by_actor("P1act").count(), 1);
    }

    #[test]
    fn disable_suppresses_recording() {
        let mut t = Trace::new();
        t.disable();
        assert!(!t.is_enabled());
        t.record(SimTime::ZERO, "a", "k", "d");
        assert!(t.events().is_empty());
        t.enable();
        t.record(SimTime::ZERO, "a", "k", "d");
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn record_with_skips_closure_while_disabled() {
        let mut t = Trace::new();
        t.disable();
        let mut calls = 0;
        t.record_with(SimTime::ZERO, "a", || {
            calls += 1;
            ("k", "d")
        });
        assert_eq!(calls, 0, "closure must not run while disabled");
        assert!(t.events().is_empty());
        t.enable();
        t.record_with(SimTime::ZERO, "a", || {
            calls += 1;
            ("k", format!("expensive {}", 42))
        });
        assert_eq!(calls, 1);
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].detail, "expensive 42");
    }

    #[test]
    fn render_contains_every_event() {
        let t = sample();
        let text = t.render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("ckpt.type1"));
        assert!(text.contains("m1 -> P2"));
    }
}
