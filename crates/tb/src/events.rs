//! Inputs consumed by the TB engine.

use synergy_clocks::LocalTime;
use synergy_net::CkptSeqNo;

/// One input to a [`TbEngine`](crate::TbEngine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// The checkpointing timer expired at local instant `now_local`;
    /// `dirty` is the process's current checkpoint-relevant bit (the dirty
    /// bit, or `P1act`'s pseudo dirty bit), read from the MDCD engine.
    TimerExpired {
        /// Local clock reading at expiry.
        now_local: LocalTime,
        /// The checkpoint-relevant dirty bit at expiry.
        dirty: bool,
    },
    /// The MDCD engine's dirty bit transitioned 1 → 0 (a `passed_AT`
    /// notification with matching `Ndc` was accepted) while the blocking
    /// period was in progress.
    DirtyCleared,
    /// The blocking period scheduled by
    /// [`Action::StartBlocking`](crate::Action::StartBlocking) elapsed.
    BlockingElapsed,
    /// The fleet-wide timer resynchronization completed; the local clock now
    /// reads `now_local`.
    ResyncCompleted {
        /// Local clock reading right after resynchronization.
        now_local: LocalTime,
    },
    /// The node restarted after a hardware fault; stable storage holds a
    /// checkpoint with sequence number `ndc`, and the local clock reads
    /// `now_local`.
    Restarted {
        /// Local clock reading at restart.
        now_local: LocalTime,
        /// Sequence number of the stable checkpoint recovered from.
        ndc: CkptSeqNo,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let a = Event::TimerExpired {
            now_local: LocalTime::from_nanos(1),
            dirty: true,
        };
        let b = Event::TimerExpired {
            now_local: LocalTime::from_nanos(1),
            dirty: false,
        };
        assert_ne!(a, b);
        assert_eq!(Event::BlockingElapsed, Event::BlockingElapsed);
    }
}
