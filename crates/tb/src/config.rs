//! TB protocol configuration.

use synergy_clocks::SyncParams;
use synergy_des::SimDuration;

/// Which TB algorithm a process runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TbVariant {
    /// The protocol as published by Neves & Fuchs: current state always,
    /// blocking `δ + 2ρτ − tmin`, all messages blocked.
    Original,
    /// The adapted protocol of the DSN 2001 paper: dirty-bit–dependent
    /// contents, blocking `δ + 2ρτ + Tm(b)`, `passed_AT` monitored during
    /// blocking with abort-and-replace.
    Adapted,
}

/// Static parameters of the TB protocol.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TbConfig {
    /// Algorithm variant.
    pub variant: TbVariant,
    /// `Δ` — the checkpointing interval on the local clock.
    pub interval: SimDuration,
    /// Clock synchronization quality (`δ`, `ρ`).
    pub sync: SyncParams,
    /// Minimum message-delivery delay (`tmin`).
    pub tmin: SimDuration,
    /// Maximum message-delivery delay (`tmax`).
    pub tmax: SimDuration,
    /// Request a timer resynchronization when the worst-case blocking period
    /// of the *next* interval would exceed this fraction of `Δ`. The paper's
    /// `createCKPT` requests resynchronization once accumulated drift makes
    /// blocking periods too long relative to the interval; 0.25 keeps
    /// blocking below a quarter of the interval.
    pub resync_threshold: f64,
}

impl TbConfig {
    /// Creates a configuration, validating parameters.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero, `tmin > tmax`, or `resync_threshold`
    /// is outside `(0, 1]`.
    pub fn new(
        variant: TbVariant,
        interval: SimDuration,
        sync: SyncParams,
        tmin: SimDuration,
        tmax: SimDuration,
    ) -> Self {
        assert!(interval > SimDuration::ZERO, "interval must be positive");
        assert!(tmin <= tmax, "tmin must not exceed tmax");
        TbConfig {
            variant,
            interval,
            sync,
            tmin,
            tmax,
            resync_threshold: 0.25,
        }
    }

    /// Overrides the resynchronization threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `(0, 1]`.
    pub fn with_resync_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "resync threshold out of range: {threshold}"
        );
        self.resync_threshold = threshold;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync() -> SyncParams {
        SyncParams::new(SimDuration::from_micros(100), 1e-4)
    }

    #[test]
    fn constructor_validates() {
        let c = TbConfig::new(
            TbVariant::Adapted,
            SimDuration::from_secs(1),
            sync(),
            SimDuration::from_micros(100),
            SimDuration::from_millis(2),
        );
        assert_eq!(c.variant, TbVariant::Adapted);
        assert_eq!(c.resync_threshold, 0.25);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        TbConfig::new(
            TbVariant::Original,
            SimDuration::ZERO,
            sync(),
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "tmin must not exceed tmax")]
    fn inverted_delays_rejected() {
        TbConfig::new(
            TbVariant::Original,
            SimDuration::from_secs(1),
            sync(),
            SimDuration::from_millis(5),
            SimDuration::from_millis(1),
        );
    }

    #[test]
    #[should_panic(expected = "resync threshold out of range")]
    fn bad_threshold_rejected() {
        TbConfig::new(
            TbVariant::Original,
            SimDuration::from_secs(1),
            sync(),
            SimDuration::ZERO,
            SimDuration::ZERO,
        )
        .with_resync_threshold(0.0);
    }
}
