//! Blocking-period arithmetic (paper Table 1).

use synergy_clocks::SyncParams;
use synergy_des::SimDuration;

use crate::config::TbVariant;

/// `Tm(b) = b·tmax − (1−b)·tmin` — the message-delay term of the adapted
/// blocking period. Returned as a signed contribution: `(magnitude, sign)`
/// is awkward, so this helper returns the *final* period given the base.
///
/// For a dirty process (`b = 1`) the term **adds** `tmax`: any `passed_AT`
/// already in flight when the timer expired must land inside the blocking
/// period. For a clean process (`b = 0`) the term **subtracts** `tmin`,
/// exactly as in the original protocol: a message sent at the end of the
/// blocking period arrives at least `tmin` later, by which time every other
/// timer has expired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tm {
    /// `b = 1`: add `tmax`.
    Dirty,
    /// `b = 0`: subtract `tmin`.
    Clean,
}

impl Tm {
    /// Builds the term from a dirty bit.
    pub fn from_bit(dirty: bool) -> Self {
        if dirty {
            Tm::Dirty
        } else {
            Tm::Clean
        }
    }

    /// Applies the term to the `δ + 2ρτ` base.
    pub fn apply(self, base: SimDuration, tmin: SimDuration, tmax: SimDuration) -> SimDuration {
        match self {
            Tm::Dirty => base + tmax,
            Tm::Clean => base.saturating_sub(tmin),
        }
    }
}

/// The length of the blocking period a process enters when its
/// checkpointing timer expires.
///
/// * Original TB: `δ + 2ρτ − tmin` regardless of the dirty bit;
/// * Adapted TB: `δ + 2ρτ + Tm(b)` with `Tm(1) = +tmax`, `Tm(0) = −tmin`.
///
/// `elapsed` is the local time since the last timer resynchronization (`τ`).
///
/// # Example
///
/// ```rust
/// use synergy_clocks::SyncParams;
/// use synergy_des::SimDuration;
/// use synergy_tb::{blocking_period, TbVariant};
///
/// let sync = SyncParams::new(SimDuration::from_micros(500), 1e-4);
/// let tmin = SimDuration::from_micros(200);
/// let tmax = SimDuration::from_millis(2);
/// let elapsed = SimDuration::from_secs(10);
///
/// let clean = blocking_period(TbVariant::Adapted, sync, elapsed, tmin, tmax, false);
/// let dirty = blocking_period(TbVariant::Adapted, sync, elapsed, tmin, tmax, true);
/// let original = blocking_period(TbVariant::Original, sync, elapsed, tmin, tmax, true);
/// assert_eq!(clean, original, "clean adapted == original (paper §4.2)");
/// assert_eq!(dirty - clean, tmax + tmin);
/// ```
pub fn blocking_period(
    variant: TbVariant,
    sync: SyncParams,
    elapsed: SimDuration,
    tmin: SimDuration,
    tmax: SimDuration,
    dirty: bool,
) -> SimDuration {
    let base = sync.deviation_bound(elapsed);
    match variant {
        TbVariant::Original => base.saturating_sub(tmin),
        TbVariant::Adapted => Tm::from_bit(dirty).apply(base, tmin, tmax),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync() -> SyncParams {
        SyncParams::new(SimDuration::from_micros(500), 1e-4)
    }

    const TMIN: SimDuration = SimDuration::from_micros(200);
    const TMAX: SimDuration = SimDuration::from_millis(2);

    #[test]
    fn original_ignores_dirty_bit() {
        let e = SimDuration::from_secs(5);
        let a = blocking_period(TbVariant::Original, sync(), e, TMIN, TMAX, false);
        let b = blocking_period(TbVariant::Original, sync(), e, TMIN, TMAX, true);
        assert_eq!(a, b);
        // δ + 2ρτ − tmin = 500us + 2*1e-4*5s − 200us = 500us + 1ms − 200us
        assert_eq!(a, SimDuration::from_micros(500 + 1000 - 200));
    }

    #[test]
    fn adapted_dirty_adds_tmax() {
        let e = SimDuration::from_secs(5);
        let dirty = blocking_period(TbVariant::Adapted, sync(), e, TMIN, TMAX, true);
        assert_eq!(dirty, SimDuration::from_micros(500 + 1000 + 2000));
    }

    #[test]
    fn adapted_clean_equals_original() {
        for secs in [0, 1, 7, 100] {
            let e = SimDuration::from_secs(secs);
            assert_eq!(
                blocking_period(TbVariant::Adapted, sync(), e, TMIN, TMAX, false),
                blocking_period(TbVariant::Original, sync(), e, TMIN, TMAX, false),
            );
        }
    }

    #[test]
    fn blocking_grows_with_elapsed_drift() {
        let short = blocking_period(
            TbVariant::Adapted,
            sync(),
            SimDuration::from_secs(1),
            TMIN,
            TMAX,
            true,
        );
        let long = blocking_period(
            TbVariant::Adapted,
            sync(),
            SimDuration::from_secs(100),
            TMIN,
            TMAX,
            true,
        );
        assert!(long > short);
    }

    #[test]
    fn clean_period_saturates_at_zero() {
        // Huge tmin relative to deviation bound: period clamps to zero
        // instead of underflowing.
        let p = blocking_period(
            TbVariant::Adapted,
            SyncParams::new(SimDuration::from_nanos(1), 0.0),
            SimDuration::ZERO,
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            false,
        );
        assert_eq!(p, SimDuration::ZERO);
    }

    #[test]
    fn tm_from_bit() {
        assert_eq!(Tm::from_bit(true), Tm::Dirty);
        assert_eq!(Tm::from_bit(false), Tm::Clean);
    }
}
