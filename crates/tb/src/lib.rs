//! The time-based (TB) checkpointing protocol of Neves & Fuchs, plus the
//! *adapted* variant that coordinates with the modified MDCD protocol
//! (DSN 2001 paper, §2.2 and §4).
//!
//! Time-based protocols establish stable-storage checkpoints from
//! approximately synchronized, periodically resynchronized timers — no
//! message exchange is needed to coordinate the processes. Two hazards must
//! be designed away (paper Fig. 2):
//!
//! * **consistency** — a message sent after the sender checkpointed but read
//!   before the receiver checkpointed; prevented by *blocking* the process
//!   for a period after its timer expires, sized so every other timer has
//!   expired by the time it may send again;
//! * **recoverability** — an in-transit message captured as sent but not
//!   received; prevented without blocking by saving all unacknowledged
//!   messages in the next checkpoint and re-sending them during recovery.
//!
//! The **adapted** variant (paper §4.2, Fig. 5) additionally consults the
//! MDCD dirty bit when its timer expires: a *clean* process saves its
//! current state; a *dirty* process instead copies its most recent volatile
//! checkpoint — the last state known non-contaminated — and, should a
//! `passed_AT` notification clear the dirty bit inside the blocking period,
//! **aborts the copy and replaces it with the current state**. Its blocking
//! period is lengthened to `δ + 2ρτ + tmax` while dirty so that any
//! validation notification that could affect the checkpoint is guaranteed to
//! arrive inside the blocking period (never in transit across it).
//!
//! Like `synergy-mdcd`, the engine here is sans-io: it consumes [`Event`]s
//! and emits [`Action`]s, and the hosting driver owns clocks, storage and
//! transport.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actions;
mod blocking;
mod config;
mod engine;
mod events;

pub use actions::{Action, ContentsChoice};
pub use blocking::{blocking_period, Tm};
pub use config::{TbConfig, TbVariant};
pub use engine::TbEngine;
pub use events::Event;
