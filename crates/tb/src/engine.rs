//! The TB checkpointing engine (`createCKPT`, paper Fig. 5).

use synergy_clocks::LocalTime;
use synergy_net::CkptSeqNo;

use crate::actions::{Action, ContentsChoice};
use crate::blocking::blocking_period;
use crate::config::{TbConfig, TbVariant};
use crate::events::Event;

/// Sans-io engine for one process's time-based checkpointing.
///
/// # Example
///
/// ```rust
/// use synergy_clocks::{LocalTime, SyncParams};
/// use synergy_des::SimDuration;
/// use synergy_tb::{Action, ContentsChoice, Event, TbConfig, TbEngine, TbVariant};
///
/// let cfg = TbConfig::new(
///     TbVariant::Adapted,
///     SimDuration::from_secs(1),
///     SyncParams::new(SimDuration::from_micros(100), 1e-5),
///     SimDuration::from_micros(100),
///     SimDuration::from_millis(1),
/// );
/// let mut tb = TbEngine::new(cfg);
/// let start = tb.start();
/// assert!(matches!(start[0], Action::ScheduleTimer { .. }));
///
/// // Timer fires while the process is dirty: begin copying the volatile
/// // checkpoint to disk and block.
/// let fired = tb.handle(Event::TimerExpired {
///     now_local: LocalTime::from_nanos(1_000_000_000),
///     dirty: true,
/// });
/// assert!(matches!(
///     fired[0],
///     Action::BeginStableWrite { contents: ContentsChoice::VolatileCopy, .. }
/// ));
/// ```
#[derive(Clone, Debug)]
pub struct TbEngine {
    cfg: TbConfig,
    ndc: CkptSeqNo,
    next_deadline: LocalTime,
    last_resync: LocalTime,
    in_blocking: bool,
    in_flight_expected_dirty: Option<bool>,
    replaced: bool,
    resyncs_requested: u64,
}

impl TbEngine {
    /// Creates an engine; call [`start`](TbEngine::start) to obtain the
    /// first timer.
    pub fn new(cfg: TbConfig) -> Self {
        TbEngine {
            next_deadline: LocalTime::ZERO + cfg.interval,
            cfg,
            ndc: CkptSeqNo(0),
            last_resync: LocalTime::ZERO,
            in_blocking: false,
            in_flight_expected_dirty: None,
            replaced: false,
            resyncs_requested: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TbConfig {
        &self.cfg
    }

    /// Current stable-checkpoint sequence number (`Ndc`).
    pub fn ndc(&self) -> CkptSeqNo {
        self.ndc
    }

    /// Whether the process is inside a blocking period.
    pub fn is_blocking(&self) -> bool {
        self.in_blocking
    }

    /// The next scheduled timer deadline (`dCKPT_time`).
    pub fn next_deadline(&self) -> LocalTime {
        self.next_deadline
    }

    /// How many resynchronizations this engine has requested.
    pub fn resyncs_requested(&self) -> u64 {
        self.resyncs_requested
    }

    /// Emits the initial timer-scheduling action.
    pub fn start(&mut self) -> Vec<Action> {
        vec![Action::ScheduleTimer {
            at: self.next_deadline,
        }]
    }

    /// Feeds one event, returning the actions to execute in order.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        match event {
            Event::TimerExpired { now_local, dirty } => self.create_ckpt(now_local, dirty),
            Event::DirtyCleared => self.dirty_cleared(),
            Event::BlockingElapsed => self.blocking_elapsed(),
            Event::ResyncCompleted { now_local } => {
                self.last_resync = now_local;
                Vec::new()
            }
            Event::Restarted { now_local, ndc } => self.restarted(now_local, ndc),
        }
    }

    /// `createCKPT()` — paper Fig. 5.
    fn create_ckpt(&mut self, now_local: LocalTime, dirty: bool) -> Vec<Action> {
        debug_assert!(
            !self.in_blocking,
            "timer expired inside a blocking period; interval too short"
        );
        let mut out = Vec::new();
        let contents = match (self.cfg.variant, dirty) {
            // `if (dirty_bit == 0) write_disk(current_state, 0, null)`
            (TbVariant::Adapted, false) | (TbVariant::Original, _) => ContentsChoice::CurrentState,
            // `else write_disk(rCKPT, 1, current_state)`
            (TbVariant::Adapted, true) => ContentsChoice::VolatileCopy,
        };
        out.push(Action::BeginStableWrite {
            contents,
            expected_dirty: dirty,
        });
        let elapsed = now_local.saturating_duration_since(self.last_resync);
        let duration = blocking_period(
            self.cfg.variant,
            self.cfg.sync,
            elapsed,
            self.cfg.tmin,
            self.cfg.tmax,
            dirty,
        );
        out.push(Action::StartBlocking { duration });
        self.in_blocking = true;
        self.in_flight_expected_dirty = Some(dirty);
        self.replaced = false;
        // `dCKPT_time = dCKPT_time + Δ; set_timer(createCKPT, dCKPT_time)`
        self.next_deadline = self.next_deadline + self.cfg.interval;
        out.push(Action::ScheduleTimer {
            at: self.next_deadline,
        });
        // Resynchronize once accumulated drift would make the *next*
        // interval's worst-case blocking period exceed the threshold.
        let next_elapsed = elapsed + self.cfg.interval;
        let worst_next = blocking_period(
            self.cfg.variant,
            self.cfg.sync,
            next_elapsed,
            self.cfg.tmin,
            self.cfg.tmax,
            true,
        );
        if worst_next > self.cfg.interval.mul_f64(self.cfg.resync_threshold) {
            self.resyncs_requested += 1;
            out.push(Action::RequestResync);
        }
        out
    }

    fn dirty_cleared(&mut self) -> Vec<Action> {
        if self.cfg.variant != TbVariant::Adapted {
            return Vec::new();
        }
        // Only a write that *began* as a volatile copy (expected bit 1) is
        // adjusted, and only once.
        if self.in_blocking && self.in_flight_expected_dirty == Some(true) && !self.replaced {
            self.replaced = true;
            vec![Action::ReplaceWithCurrentState]
        } else {
            Vec::new()
        }
    }

    fn blocking_elapsed(&mut self) -> Vec<Action> {
        debug_assert!(self.in_blocking, "spurious BlockingElapsed");
        self.in_blocking = false;
        self.in_flight_expected_dirty = None;
        self.ndc = self.ndc.next();
        vec![Action::CommitStableWrite { ndc: self.ndc }]
    }

    fn restarted(&mut self, now_local: LocalTime, ndc: CkptSeqNo) -> Vec<Action> {
        self.ndc = ndc;
        self.in_blocking = false;
        self.in_flight_expected_dirty = None;
        self.replaced = false;
        // Rejoin the original deadline grid: the first multiple of Δ
        // strictly after the restart instant.
        let interval = self.cfg.interval.as_nanos();
        let k = now_local.as_nanos() / interval + 1;
        self.next_deadline = LocalTime::from_nanos(k * interval);
        vec![Action::ScheduleTimer {
            at: self.next_deadline,
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_clocks::SyncParams;
    use synergy_des::SimDuration;

    fn cfg(variant: TbVariant) -> TbConfig {
        TbConfig::new(
            variant,
            SimDuration::from_secs(1),
            SyncParams::new(SimDuration::from_micros(500), 1e-4),
            SimDuration::from_micros(200),
            SimDuration::from_millis(2),
        )
    }

    fn expired(engine: &mut TbEngine, at_secs: f64, dirty: bool) -> Vec<Action> {
        engine.handle(Event::TimerExpired {
            now_local: LocalTime::from_nanos((at_secs * 1e9) as u64),
            dirty,
        })
    }

    #[test]
    fn start_schedules_first_interval() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        let a = e.start();
        assert_eq!(
            a,
            vec![Action::ScheduleTimer {
                at: LocalTime::from_nanos(1_000_000_000)
            }]
        );
    }

    #[test]
    fn clean_process_saves_current_state() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        let a = expired(&mut e, 1.0, false);
        assert!(matches!(
            a[0],
            Action::BeginStableWrite {
                contents: ContentsChoice::CurrentState,
                expected_dirty: false,
            }
        ));
    }

    #[test]
    fn dirty_process_copies_volatile_checkpoint() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        let a = expired(&mut e, 1.0, true);
        assert!(matches!(
            a[0],
            Action::BeginStableWrite {
                contents: ContentsChoice::VolatileCopy,
                expected_dirty: true,
            }
        ));
    }

    #[test]
    fn original_always_saves_current_state() {
        let mut e = TbEngine::new(cfg(TbVariant::Original));
        let a = expired(&mut e, 1.0, true);
        assert!(matches!(
            a[0],
            Action::BeginStableWrite {
                contents: ContentsChoice::CurrentState,
                ..
            }
        ));
    }

    #[test]
    fn blocking_duration_depends_on_dirty_bit() {
        let mut e1 = TbEngine::new(cfg(TbVariant::Adapted));
        let mut e2 = TbEngine::new(cfg(TbVariant::Adapted));
        let clean = expired(&mut e1, 1.0, false);
        let dirty = expired(&mut e2, 1.0, true);
        let d_clean = match clean[1] {
            Action::StartBlocking { duration } => duration,
            _ => panic!("expected StartBlocking"),
        };
        let d_dirty = match dirty[1] {
            Action::StartBlocking { duration } => duration,
            _ => panic!("expected StartBlocking"),
        };
        assert_eq!(
            d_dirty - d_clean,
            SimDuration::from_millis(2) + SimDuration::from_micros(200),
            "difference is tmax + tmin"
        );
    }

    #[test]
    fn deadline_advances_by_interval() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        e.start();
        expired(&mut e, 1.0, false);
        assert_eq!(e.next_deadline(), LocalTime::from_nanos(2_000_000_000));
        e.handle(Event::BlockingElapsed);
        expired(&mut e, 2.0, false);
        assert_eq!(e.next_deadline(), LocalTime::from_nanos(3_000_000_000));
    }

    #[test]
    fn commit_advances_ndc() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        expired(&mut e, 1.0, false);
        assert!(e.is_blocking());
        assert_eq!(e.ndc(), CkptSeqNo(0), "Ndc advances at commit, not begin");
        let a = e.handle(Event::BlockingElapsed);
        assert_eq!(a, vec![Action::CommitStableWrite { ndc: CkptSeqNo(1) }]);
        assert_eq!(e.ndc(), CkptSeqNo(1));
        assert!(!e.is_blocking());
    }

    #[test]
    fn dirty_cleared_replaces_contents_once() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        expired(&mut e, 1.0, true);
        let first = e.handle(Event::DirtyCleared);
        assert_eq!(first, vec![Action::ReplaceWithCurrentState]);
        let second = e.handle(Event::DirtyCleared);
        assert!(second.is_empty(), "replacement happens at most once");
    }

    #[test]
    fn dirty_cleared_ignored_when_write_began_clean() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        expired(&mut e, 1.0, false);
        assert!(e.handle(Event::DirtyCleared).is_empty());
    }

    #[test]
    fn dirty_cleared_ignored_outside_blocking() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        assert!(e.handle(Event::DirtyCleared).is_empty());
    }

    #[test]
    fn original_variant_never_replaces() {
        let mut e = TbEngine::new(cfg(TbVariant::Original));
        expired(&mut e, 1.0, true);
        assert!(e.handle(Event::DirtyCleared).is_empty());
    }

    #[test]
    fn resync_requested_when_drift_accumulates() {
        // 100ppm drift, 1s interval, threshold 25%: blocking must stay below
        // 250ms; δ+2ρτ+tmax reaches that once τ ≈ 1237s.
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        let quiet = expired(&mut e, 1.0, false);
        assert!(!quiet.contains(&Action::RequestResync));
        e.handle(Event::BlockingElapsed);
        let noisy = expired(&mut e, 2000.0, false);
        assert!(noisy.contains(&Action::RequestResync));
        assert_eq!(e.resyncs_requested(), 1);
    }

    #[test]
    fn resync_completion_resets_drift_accounting() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        e.handle(Event::ResyncCompleted {
            now_local: LocalTime::from_nanos(2_000_000_000_000),
        });
        // Elapsed-since-resync is now ~0: no resync request.
        let a = expired(&mut e, 2000.5, false);
        assert!(!a.contains(&Action::RequestResync));
    }

    #[test]
    fn restart_rejoins_deadline_grid() {
        let mut e = TbEngine::new(cfg(TbVariant::Adapted));
        expired(&mut e, 1.0, false);
        let a = e.handle(Event::Restarted {
            now_local: LocalTime::from_nanos(5_300_000_000),
            ndc: CkptSeqNo(5),
        });
        assert_eq!(
            a,
            vec![Action::ScheduleTimer {
                at: LocalTime::from_nanos(6_000_000_000)
            }]
        );
        assert_eq!(e.ndc(), CkptSeqNo(5));
        assert!(!e.is_blocking());
    }
}
