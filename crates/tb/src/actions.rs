//! Outputs emitted by the TB engine.

use synergy_clocks::LocalTime;
use synergy_des::SimDuration;
use synergy_net::CkptSeqNo;

/// Which contents the stable write begins with — the first argument of the
/// paper's three-argument `write_disk`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ContentsChoice {
    /// The process state as of the timer expiry (clean process).
    CurrentState,
    /// A copy of the most recent volatile checkpoint — the last state known
    /// non-contaminated (dirty process, adapted variant only).
    VolatileCopy,
}

/// One instruction from the TB engine to its hosting driver.
///
/// As with the MDCD engines, actions must be executed in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Begin the two-phase stable write. The driver assembles the checkpoint
    /// payload — the chosen state contents plus the engine snapshot plus all
    /// currently unacknowledged messages (the recoverability rule) — and
    /// calls `StableStore::begin_write`.
    BeginStableWrite {
        /// Initial contents of the write.
        contents: ContentsChoice,
        /// The dirty-bit value the contents correspond to (`write_disk`'s
        /// second argument).
        expected_dirty: bool,
    },
    /// Enter the blocking period for `duration`; the driver must notify the
    /// MDCD engine (`BlockingStarted`) and schedule
    /// [`Event::BlockingElapsed`](crate::Event::BlockingElapsed).
    StartBlocking {
        /// Length of the blocking period on the local clock.
        duration: SimDuration,
    },
    /// Abort the in-flight copy and replace it with the current process
    /// state (`write_disk`'s third argument): the dirty bit was cleared by a
    /// `passed_AT` inside the blocking period.
    ReplaceWithCurrentState,
    /// The blocking period is over: commit the stable write; the committed
    /// checkpoint's sequence number is `ndc`. The driver must notify the
    /// MDCD engine (`StableCheckpointCommitted(ndc)` then `BlockingEnded`).
    CommitStableWrite {
        /// Sequence number of the now-durable checkpoint.
        ndc: CkptSeqNo,
    },
    /// Schedule the next timer expiry at local instant `at`.
    ScheduleTimer {
        /// Local-clock deadline (`dCKPT_time`).
        at: LocalTime,
    },
    /// Accumulated drift makes blocking periods too long: ask the clock
    /// service to resynchronize the fleet (`requestResyncTimers()`).
    RequestResync,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contents_choice_is_comparable() {
        assert_ne!(ContentsChoice::CurrentState, ContentsChoice::VolatileCopy);
    }

    #[test]
    fn actions_carry_payloads() {
        let a = Action::StartBlocking {
            duration: SimDuration::from_millis(3),
        };
        match a {
            Action::StartBlocking { duration } => {
                assert_eq!(duration, SimDuration::from_millis(3));
            }
            _ => unreachable!(),
        }
    }
}
