//! The simulator reference for a cluster mission.
//!
//! A cluster run and a [`synergy`] simulation of the same seed and fault
//! plan walk the same logical timeline: external produces at grid seconds
//! `1..=steps`, checkpoint grid at `g·Δ`, hardware faults landing in
//! scheduled checkpoint rounds. The device — the paper's observable
//! surface — must then see the *same payload sequence* in both worlds,
//! including the post-rollback repeats, and both worlds must agree on the
//! epoch line.
//!
//! The only non-determinism to bridge is the crash placement: the cluster
//! kills a victim at a *protocol-relative* instant (before the round, or
//! mid-round with the stable write staged), while the simulator's nodes
//! have sampled clock offsets, so the crash instant that lands at the
//! equivalent protocol point varies by a few milliseconds with the seed —
//! on either side of the grid point. The reference scans a dense ε range
//! around each scheduled round and keeps the first placement that
//! reproduces the cluster fault *shape*:
//!
//! * [`CrashKind::MidRound`] / [`CrashKind::DoubleKill`] — the crash must
//!   land inside the victim's blocking period, tearing exactly one stable
//!   write. A double kill maps to a *single* simulator fault: the second
//!   cluster kill hits the already-restarted, still-idle victim, changing
//!   nothing the device can observe.
//! * [`CrashKind::RoundStart`] — the crash must land *before* the
//!   victim's blocking period (no torn write, nothing committed for the
//!   round); the scan walks ε upward from below the grid point, so the
//!   first match is the pre-round placement, never the post-commit one.
//!
//! Faults injected below the protocol layer — link drops masked by
//! retransmission, transient fsync failures masked by bounded retry,
//! bit-rot below the rollback line masked by the CRC-skip reload — are
//! invisible to the device by design, so the reference needs only the
//! crash schedule.

use synergy::{HardwareFault, NodeId, Scheme, System, SystemConfig};
use synergy_des::{SimDuration, SimTime};
use synergy_net::MessageBody;

use crate::orchestrator::{CrashEvent, CrashKind};

/// What the reference simulation observed.
#[derive(Clone, Debug)]
pub struct SimReference {
    /// Device-bound external payloads, in arrival order.
    pub device_payloads: Vec<Vec<u8>>,
    /// Whether every global-state checker held.
    pub verdicts_hold: bool,
    /// Torn stable writes across the mission.
    pub torn_writes: u64,
    /// Completed global hardware rollbacks.
    pub hardware_recoveries: u64,
    /// Mean hardware-rollback distance in grid seconds, if any rollback
    /// happened.
    pub mean_rollback_secs: Option<f64>,
    /// The crash offset ε (grid seconds past `k·Δ`) the search settled on
    /// for the *last* resolved crash.
    pub crash_epsilon: Option<f64>,
}

/// Crash-offset scan around the grid point. The victim's blocking period
/// is a few milliseconds wide and starts when its *local* clock reaches the
/// grid, so with seeded clock offsets the window can begin up to the offset
/// bound *before* the global grid instant — the scan must cover negative ε
/// too (and for [`CrashKind::RoundStart`] the lower edge doubles as the
/// guaranteed pre-round placement). 0.2 ms steps are finer than any
/// blocking period in the default config, so the scan cannot step over the
/// window.
const EPSILON_RANGE_SECS: (f64, f64) = (-0.002, 0.006);
const EPSILON_STEP_SECS: f64 = 0.0002;

fn epsilon_scan() -> impl Iterator<Item = f64> {
    let (lo, hi) = EPSILON_RANGE_SECS;
    let n = ((hi - lo) / EPSILON_STEP_SECS).round() as u32;
    (0..=n).map(move |i| lo + EPSILON_STEP_SECS * f64::from(i))
}

/// Whether this crash kind tears a stable write in the cluster.
fn tears_write(kind: CrashKind) -> bool {
    match kind {
        CrashKind::RoundStart => false,
        CrashKind::MidRound | CrashKind::DoubleKill => true,
    }
}

/// Fault-to-recovery delay of the reference simulation.
///
/// The cluster's rollback is *lockstep*: it always completes between the
/// crash round and the next scripted produce. The reference must do the
/// same, so `RESTART_DELAY_MS` (plus the ε-scan's upper edge) has to fit
/// inside the tightest grid-to-produce gap — for Δ = 1.7 that is 0.2 grid
/// seconds, at round 4 (t = 6.8, produce at 7). A delay that overruns the
/// gap makes the simulator serve the produce from pre-rollback state the
/// cluster has already rolled back, diverging the device stream.
const RESTART_DELAY_MS: u64 = 120;

fn build_config(
    seed: u64,
    steps: u32,
    tb_interval_secs: f64,
    internal_traffic: bool,
    faults_at: &[(NodeId, f64)],
) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .seed(seed)
        .duration_secs(f64::from(steps) + 1.0)
        .tb_interval_secs(tb_interval_secs)
        .restart_delay(SimDuration::from_millis(RESTART_DELAY_MS))
        .no_workload()
        .trace(false);
    for s in 1..=steps {
        // Internal before external at the same instant, matching the
        // cluster's command order; the DES queue fires ties FIFO.
        if internal_traffic {
            b = b.scripted_send(f64::from(s), 1, false);
        }
        b = b.scripted_send(f64::from(s), 1, true);
    }
    for (node, at) in faults_at {
        b = b.hardware_fault(HardwareFault::on(*node, SimTime::from_secs_f64(*at)));
    }
    b.build()
}

fn run_once(cfg: SystemConfig) -> SimReference {
    let mut system = System::new(cfg);
    system.run();
    let device_payloads = system
        .device_log()
        .iter()
        .filter_map(|(_, env)| match &env.body {
            MessageBody::External { payload } => Some(payload.clone()),
            _ => None,
        })
        .collect();
    let metrics = system.metrics();
    SimReference {
        device_payloads,
        verdicts_hold: system.verdicts().all_hold(),
        torn_writes: metrics.torn_writes,
        hardware_recoveries: metrics.hardware_recoveries,
        mean_rollback_secs: metrics.mean_hardware_rollback(),
        crash_epsilon: None,
    }
}

/// Runs the reference simulation for a full crash schedule.
///
/// Crashes are resolved *sequentially*: for each scheduled crash (in epoch
/// order) the scan fixes the earlier crashes at their already-resolved
/// placements and sweeps this crash's ε until the cumulative fault shape —
/// torn-write count and completed-recovery count through this crash —
/// matches what the cluster produces by construction. Falls back to the
/// last candidate if none match (the caller's stream comparison will then
/// report the mismatch).
pub fn simulate_reference_schedule(
    seed: u64,
    steps: u32,
    tb_interval_secs: f64,
    internal_traffic: bool,
    crashes: &[CrashEvent],
) -> SimReference {
    if crashes.is_empty() {
        return run_once(build_config(
            seed,
            steps,
            tb_interval_secs,
            internal_traffic,
            &[],
        ));
    }
    let mut schedule: Vec<CrashEvent> = crashes.to_vec();
    schedule.sort_by_key(|c| c.epoch);

    let mut resolved: Vec<(NodeId, f64)> = Vec::new();
    let mut torn_target = 0u64;
    let mut last: Option<SimReference> = None;
    for (i, ev) in schedule.iter().enumerate() {
        torn_target += u64::from(tears_write(ev.kind));
        let recovery_target = i as u64 + 1;
        let grid_t = tb_interval_secs * ev.epoch as f64;
        let mut accepted = None;
        for eps in epsilon_scan() {
            let mut faults = resolved.clone();
            faults.push((ev.victim, grid_t + eps));
            let cfg = build_config(seed, steps, tb_interval_secs, internal_traffic, &faults);
            let mut r = run_once(cfg);
            r.crash_epsilon = Some(eps);
            let matches_cluster_fault =
                r.torn_writes == torn_target && r.hardware_recoveries == recovery_target;
            accepted = Some((eps, r));
            if matches_cluster_fault {
                break;
            }
        }
        let (eps, r) = accepted.expect("ladder is non-empty");
        resolved.push((ev.victim, grid_t + eps));
        last = Some(r);
    }
    last.expect("schedule is non-empty")
}

/// Runs the reference simulation for a cluster mission with at most one
/// mid-round kill (the legacy single-fault shape).
pub fn simulate_reference(
    seed: u64,
    steps: u32,
    tb_interval_secs: f64,
    kill: Option<(NodeId, u64)>,
) -> SimReference {
    let schedule: Vec<CrashEvent> = kill
        .map(|(victim, epoch)| CrashEvent {
            victim,
            epoch,
            kind: CrashKind::MidRound,
        })
        .into_iter()
        .collect();
    simulate_reference_schedule(seed, steps, tb_interval_secs, false, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_reference_serves_every_produce() {
        let r = simulate_reference(11, 4, 1.7, None);
        assert!(r.verdicts_hold);
        assert_eq!(r.device_payloads.len(), 4, "one device message per step");
        assert_eq!(r.torn_writes, 0);
        assert_eq!(r.hardware_recoveries, 0);
    }

    #[test]
    fn kill_reference_finds_a_torn_write_placement() {
        let r = simulate_reference(11, 8, 1.7, Some((NodeId::P2, 3)));
        assert!(r.verdicts_hold, "the coordinated scheme must survive");
        assert_eq!(r.torn_writes, 1, "ε ladder must land inside blocking");
        assert_eq!(r.hardware_recoveries, 1);
        assert_eq!(
            r.device_payloads.len(),
            8,
            "every scripted produce reaches the device"
        );
        // Rolling back from the torn epoch k to the line k−1 costs one grid
        // interval plus the restart delay.
        let expected = 1.7 + RESTART_DELAY_MS as f64 / 1000.0;
        let d = r.mean_rollback_secs.expect("rollback recorded");
        assert!(
            (d - expected).abs() < 0.25,
            "rollback distance ≈ Δ + restart delay, got {d}"
        );
    }

    #[test]
    fn kill_placement_is_found_across_seeds_and_rounds() {
        // The scan must reproduce the cluster fault shape regardless of the
        // seeded clock offsets — seed 23 / round 2 regressed the old sparse
        // all-positive ladder (the victim's window began before the grid).
        for (seed, steps, kill_epoch) in [(23, 6, 2), (5, 8, 3), (42, 6, 2), (11, 8, 1)] {
            let r = simulate_reference(seed, steps, 1.7, Some((NodeId::P2, kill_epoch)));
            assert_eq!(r.torn_writes, 1, "seed {seed} round {kill_epoch}: torn");
            assert_eq!(
                r.hardware_recoveries, 1,
                "seed {seed} round {kill_epoch}: rollback"
            );
            assert!(r.verdicts_hold, "seed {seed} round {kill_epoch}: verdicts");
            assert_eq!(r.device_payloads.len(), steps as usize);
        }
    }

    #[test]
    fn round_start_placement_avoids_the_torn_write() {
        for seed in [5u64, 11, 23, 42] {
            let r = simulate_reference_schedule(
                seed,
                6,
                1.7,
                false,
                &[CrashEvent {
                    victim: NodeId::P2,
                    epoch: 2,
                    kind: CrashKind::RoundStart,
                }],
            );
            assert_eq!(r.torn_writes, 0, "seed {seed}: pre-round crash, no tear");
            assert_eq!(r.hardware_recoveries, 1, "seed {seed}: still one rollback");
            assert!(r.verdicts_hold, "seed {seed}");
            assert_eq!(r.device_payloads.len(), 6);
        }
    }

    #[test]
    fn double_kill_reference_equals_single_mid_round_kill() {
        // The cluster's second kill hits a restarted idle victim before the
        // rollback, so the simulator reference is a single mid-round fault.
        let double = simulate_reference_schedule(
            11,
            8,
            1.7,
            false,
            &[CrashEvent {
                victim: NodeId::P2,
                epoch: 3,
                kind: CrashKind::DoubleKill,
            }],
        );
        let single = simulate_reference(11, 8, 1.7, Some((NodeId::P2, 3)));
        assert_eq!(double.device_payloads, single.device_payloads);
        assert_eq!(double.torn_writes, 1);
    }

    #[test]
    fn internal_traffic_reference_keeps_the_device_stream_externals_only() {
        // Internal P1 → P2 messages are acked application traffic; they
        // must never leak to the device, and the crash placement search
        // must still converge with them in flight.
        let r = simulate_reference_schedule(
            11,
            8,
            1.7,
            true,
            &[CrashEvent {
                victim: NodeId::P2,
                epoch: 3,
                kind: CrashKind::MidRound,
            }],
        );
        assert_eq!(r.torn_writes, 1);
        assert_eq!(r.hardware_recoveries, 1);
        assert!(r.verdicts_hold);
        assert_eq!(
            r.device_payloads.len(),
            8,
            "one device message per external produce, none from internal"
        );
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let a = simulate_reference(7, 5, 1.7, None);
        let b = simulate_reference(7, 5, 1.7, None);
        assert_eq!(a.device_payloads, b.device_payloads);
    }
}
