//! The simulator reference for a cluster mission.
//!
//! A cluster run and a [`synergy`] simulation of the same seed and fault
//! plan walk the same logical timeline: external produces at grid seconds
//! `1..=steps`, checkpoint grid at `g·Δ`, one hardware fault torn into
//! checkpoint round `k`. The device — the paper's observable surface — must
//! then see the *same payload sequence* in both worlds, including the
//! post-rollback repeats, and both worlds must agree on the epoch line.
//!
//! The only non-determinism to bridge is the crash placement: the cluster
//! kills the victim *inside* the commanded round (write staged, not
//! committed), while the simulator's nodes have sampled clock offsets, so
//! the crash instant that lands inside the victim's blocking period varies
//! by a few milliseconds with the seed — on either side of the grid point.
//! [`simulate_reference`] scans a dense ε range around the grid point and
//! keeps the first placement that reproduces the cluster fault shape
//! (exactly one torn write, one global rollback).

use synergy::{HardwareFault, NodeId, Scheme, System, SystemConfig};
use synergy_des::{SimDuration, SimTime};
use synergy_net::MessageBody;

/// What the reference simulation observed.
#[derive(Clone, Debug)]
pub struct SimReference {
    /// Device-bound external payloads, in arrival order.
    pub device_payloads: Vec<Vec<u8>>,
    /// Whether every global-state checker held.
    pub verdicts_hold: bool,
    /// Torn stable writes across the mission.
    pub torn_writes: u64,
    /// Completed global hardware rollbacks.
    pub hardware_recoveries: u64,
    /// Mean hardware-rollback distance in grid seconds, if any rollback
    /// happened.
    pub mean_rollback_secs: Option<f64>,
    /// The crash offset ε (grid seconds past `k·Δ`) the search settled on.
    pub crash_epsilon: Option<f64>,
}

/// Crash-offset scan around the grid point. The victim's blocking period
/// is a few milliseconds wide and starts when its *local* clock reaches the
/// grid, so with seeded clock offsets the window can begin up to the offset
/// bound *before* the global grid instant — the scan must cover negative ε
/// too. 0.2 ms steps are finer than any blocking period in the default
/// config, so the scan cannot step over the window.
const EPSILON_RANGE_SECS: (f64, f64) = (-0.002, 0.006);
const EPSILON_STEP_SECS: f64 = 0.0002;

fn epsilon_scan() -> impl Iterator<Item = f64> {
    let (lo, hi) = EPSILON_RANGE_SECS;
    let n = ((hi - lo) / EPSILON_STEP_SECS).round() as u32;
    (0..=n).map(move |i| lo + EPSILON_STEP_SECS * f64::from(i))
}

fn build_config(
    seed: u64,
    steps: u32,
    tb_interval_secs: f64,
    fault_at: Option<(NodeId, f64)>,
) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .seed(seed)
        .duration_secs(f64::from(steps) + 1.0)
        .tb_interval_secs(tb_interval_secs)
        .restart_delay(SimDuration::from_millis(300))
        .no_workload()
        .trace(false);
    for s in 1..=steps {
        b = b.scripted_send(f64::from(s), 1, true);
    }
    if let Some((node, at)) = fault_at {
        b = b.hardware_fault(HardwareFault::on(node, SimTime::from_secs_f64(at)));
    }
    b.build()
}

fn run_once(cfg: SystemConfig) -> SimReference {
    let mut system = System::new(cfg);
    system.run();
    let device_payloads = system
        .device_log()
        .iter()
        .filter_map(|(_, env)| match &env.body {
            MessageBody::External { payload } => Some(payload.clone()),
            _ => None,
        })
        .collect();
    let metrics = system.metrics();
    SimReference {
        device_payloads,
        verdicts_hold: system.verdicts().all_hold(),
        torn_writes: metrics.torn_writes,
        hardware_recoveries: metrics.hardware_recoveries,
        mean_rollback_secs: metrics.mean_hardware_rollback(),
        crash_epsilon: None,
    }
}

/// Runs the reference simulation for a cluster mission.
///
/// With `kill_epoch` set, the crash is placed at `k·Δ + ε` for the first ε
/// in the scan that tears exactly one stable write and completes exactly
/// one global rollback — the fault shape the cluster's kill round produces
/// by construction. Falls back to the last candidate if none match (the
/// caller's assertions will then report the mismatch).
pub fn simulate_reference(
    seed: u64,
    steps: u32,
    tb_interval_secs: f64,
    kill: Option<(NodeId, u64)>,
) -> SimReference {
    let Some((victim, kill_epoch)) = kill else {
        return run_once(build_config(seed, steps, tb_interval_secs, None));
    };
    let grid_t = tb_interval_secs * kill_epoch as f64;
    let mut last = None;
    for eps in epsilon_scan() {
        let cfg = build_config(seed, steps, tb_interval_secs, Some((victim, grid_t + eps)));
        let mut r = run_once(cfg);
        r.crash_epsilon = Some(eps);
        let matches_cluster_fault = r.torn_writes == 1 && r.hardware_recoveries == 1;
        last = Some(r);
        if matches_cluster_fault {
            break;
        }
    }
    last.expect("ladder is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_reference_serves_every_produce() {
        let r = simulate_reference(11, 4, 1.7, None);
        assert!(r.verdicts_hold);
        assert_eq!(r.device_payloads.len(), 4, "one device message per step");
        assert_eq!(r.torn_writes, 0);
        assert_eq!(r.hardware_recoveries, 0);
    }

    #[test]
    fn kill_reference_finds_a_torn_write_placement() {
        let r = simulate_reference(11, 8, 1.7, Some((NodeId::P2, 3)));
        assert!(r.verdicts_hold, "the coordinated scheme must survive");
        assert_eq!(r.torn_writes, 1, "ε ladder must land inside blocking");
        assert_eq!(r.hardware_recoveries, 1);
        assert_eq!(
            r.device_payloads.len(),
            8,
            "every scripted produce reaches the device"
        );
        // Rolling back from the torn epoch k to the line k−1 costs one grid
        // interval plus the restart delay.
        let d = r.mean_rollback_secs.expect("rollback recorded");
        assert!(
            (d - 2.0).abs() < 0.25,
            "rollback distance ≈ Δ + 0.3, got {d}"
        );
    }

    #[test]
    fn kill_placement_is_found_across_seeds_and_rounds() {
        // The scan must reproduce the cluster fault shape regardless of the
        // seeded clock offsets — seed 23 / round 2 regressed the old sparse
        // all-positive ladder (the victim's window began before the grid).
        for (seed, steps, kill_epoch) in [(23, 6, 2), (5, 8, 3), (42, 6, 2), (11, 8, 1)] {
            let r = simulate_reference(seed, steps, 1.7, Some((NodeId::P2, kill_epoch)));
            assert_eq!(r.torn_writes, 1, "seed {seed} round {kill_epoch}: torn");
            assert_eq!(
                r.hardware_recoveries, 1,
                "seed {seed} round {kill_epoch}: rollback"
            );
            assert!(r.verdicts_hold, "seed {seed} round {kill_epoch}: verdicts");
            assert_eq!(r.device_payloads.len(), steps as usize);
        }
    }

    #[test]
    fn reference_is_deterministic_per_seed() {
        let a = simulate_reference(7, 5, 1.7, None);
        let b = simulate_reference(7, 5, 1.7, None);
        assert_eq!(a.device_payloads, b.device_payloads);
    }
}
