//! `synergy-cluster` — a multi-process TCP cluster runtime for the
//! coordinated MDCD + TB protocol stack, with durable stable storage and
//! kill-based hardware-fault injection.
//!
//! The paper's deployment target is a middleware hosting the protocol
//! engines on real nodes; this crate is the closest runtime in the
//! workspace to that setting. The same sans-io [`ProcessHost`] the
//! simulator and the threaded middleware drive runs here as **three
//! separate OS processes** (`synergy-node`) connected by a
//! [`LiveWire`](synergy_net::LiveWire) (the sharded nonblocking reactor
//! by default, or the legacy thread-per-route transport via
//! `--transport threads`), each persisting its
//! TB stable checkpoints through a
//! [`DiskStableStore`](synergy_storage::DiskStableStore) — and a hardware
//! fault is a real `SIGKILL`, torn stable write included.
//!
//! Layers:
//!
//! * [`ctrl`] — the orchestrator ⇄ node control plane (length-prefixed
//!   codec frames, lockstep request/response).
//! * [`node`] — the node process: data-plane transport + commanded
//!   [`TbRuntime`](synergy_middleware::TbRuntime) + control loop.
//! * [`orchestrator`] — spawns nodes, drives the mission grid, kills and
//!   restarts the victim, coordinates the global rollback to the epoch
//!   line.
//! * [`verify`] — the simulator reference: a [`synergy`] mission of the
//!   same seed and fault plan whose device-output stream the cluster run
//!   must reproduce.
//!
//! [`ProcessHost`]: synergy::system::ProcessHost

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctrl;
pub mod node;
pub mod orchestrator;
pub mod verify;

pub use ctrl::{CtrlMsg, CtrlReply, WireStatus};
pub use node::{plan_from_hex, plan_to_hex, run_node, ClusterWire, NodeOpts};
pub use orchestrator::{
    Cluster, ClusterConfig, ClusterError, ClusterReport, ClusterTimeouts, CrashEvent, CrashKind,
    KillReport,
};
pub use verify::{simulate_reference, simulate_reference_schedule, SimReference};
