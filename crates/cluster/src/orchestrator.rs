//! The cluster orchestrator: spawns the three `synergy-node` processes,
//! drives the mission grid (produces + commanded checkpoint rounds), kills
//! and restarts victims per the crash schedule, and coordinates the
//! paper's global rollback across real OS processes.
//!
//! The mission is laid out on the same grid a simulator run uses: external
//! produces fire at `t = 1, 2, …, steps` (grid seconds) and checkpoint
//! round `g` runs at `t = g·Δ`. The orchestrator replays that timeline in
//! *logical* order — every command is a lockstep control round-trip — so a
//! cluster run is comparable event-for-event with a [`synergy`] simulation
//! of the same seed and fault plan (see [`crate::verify`]).
//!
//! # Hardening
//!
//! Every external interaction is bounded so a faulted cluster ends in a
//! structured [`ClusterError`], never a hang:
//!
//! * `Hello` accept loops poll the spawned child with `try_wait`, so a
//!   node that dies before announcing itself is reported as
//!   [`ClusterError::NodeDied`] immediately instead of after the timeout.
//! * Control streams carry both read and write timeouts
//!   ([`ClusterTimeouts::ctrl`]); a command that fails mid-roundtrip is
//!   attributed to the node, distinguishing a dead process
//!   ([`ClusterError::NodeDied`]) from a wedged one
//!   ([`ClusterError::Ctrl`]).
//! * Victim restarts retry with linear backoff up to
//!   [`ClusterTimeouts::restart_attempts`] before giving up (the shared
//!   [`synergy_net::retry::Backoff`] schedule).
//! * Every status sweep checks [`WireStatus::backpressure`]: a frame
//!   dropped on a live route is unrecoverable (per-link FIFO is broken),
//!   so the mission fails fast as [`ClusterError::Backpressure`] instead
//!   of timing out in quiesce.
//! * [`Cluster::quiesce`] is the heartbeat: repeated full-cluster status
//!   sweeps until two consecutive snapshots are identical with no unacked
//!   messages and an empty chaos queue — or the quiesce deadline passes
//!   and the mission aborts with the last snapshot in the error.

use std::fmt;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use synergy::NodeId;
use synergy_archive::{ArchiveFaultPlan, ChainRecord};
use synergy_net::retry::Backoff;
use synergy_net::{DeviceId, Endpoint, LinkFaultPlan, LiveWire, MessageBody, ProcessId, WireKind};
use synergy_storage::{Checkpoint, DiskFaultPlan, DiskStableStore};

use crate::ctrl::{recv_ctrl, send_ctrl, CtrlMsg, CtrlReply, WireStatus};
use crate::node::plan_to_hex;

/// Deadlines and retry budgets bounding every orchestrator interaction.
#[derive(Clone, Copy, Debug)]
pub struct ClusterTimeouts {
    /// Waiting for a spawned node's control connection + `Hello`.
    pub hello: Duration,
    /// Read/write timeout on every control round-trip.
    pub ctrl: Duration,
    /// Waiting for an expected device message.
    pub device: Duration,
    /// Deadline for [`Cluster::quiesce`] to observe a settled cluster.
    pub quiesce: Duration,
    /// Pause between quiesce probes (and the final device-drain window).
    pub settle: Duration,
    /// Spawn attempts per victim restart before giving up.
    pub restart_attempts: u32,
    /// Backoff between restart attempts (linear: `attempt × backoff`).
    pub restart_backoff: Duration,
}

impl Default for ClusterTimeouts {
    fn default() -> Self {
        ClusterTimeouts {
            hello: Duration::from_secs(20),
            ctrl: Duration::from_secs(20),
            device: Duration::from_secs(20),
            quiesce: Duration::from_secs(30),
            settle: Duration::from_millis(50),
            restart_attempts: 3,
            restart_backoff: Duration::from_millis(200),
        }
    }
}

/// A structured, attributable mission failure. Every variant names what
/// gave up and why, so a non-converging campaign reports instead of hangs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// Spawning or greeting a node failed.
    Launch {
        /// What failed.
        detail: String,
    },
    /// A control round-trip failed while the node process was still alive.
    Ctrl {
        /// The unresponsive node.
        pid: u32,
        /// What failed.
        detail: String,
    },
    /// A node process died outside the crash schedule (or before `Hello`).
    NodeDied {
        /// The dead node.
        pid: u32,
        /// Exit status and context.
        detail: String,
    },
    /// The cluster failed to settle within the quiesce deadline.
    Quiesce {
        /// The last status snapshot observed.
        detail: String,
    },
    /// An expected device message never arrived.
    Device {
        /// What was expected.
        detail: String,
    },
    /// A node answered with the wrong reply type.
    Protocol {
        /// What was received.
        detail: String,
    },
    /// A node's live wire dropped frames because a route stayed
    /// backpressured past its retry budget. Per-link FIFO is broken from
    /// that point, so the mission fails fast instead of diverging.
    Backpressure {
        /// The node whose wire dropped frames.
        pid: u32,
        /// Frames lost on live routes.
        dropped: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Launch { detail } => write!(f, "launch failed: {detail}"),
            ClusterError::Ctrl { pid, detail } => write!(f, "pid {pid} control failure: {detail}"),
            ClusterError::NodeDied { pid, detail } => write!(f, "pid {pid} died: {detail}"),
            ClusterError::Quiesce { detail } => write!(f, "quiesce failed: {detail}"),
            ClusterError::Device { detail } => write!(f, "device stream failure: {detail}"),
            ClusterError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ClusterError::Backpressure { pid, dropped } => write!(
                f,
                "pid {pid} dropped {dropped} frame(s) to backpressure on a live route"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// When, relative to the checkpoint round, the victim is killed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashKind {
    /// SIGKILL before the round begins: the victim dies idle, no torn
    /// write; survivors still complete the full round.
    RoundStart,
    /// SIGKILL mid-round — after the victim's stable write is staged on
    /// disk, before it commits — leaving a genuinely torn temp file.
    MidRound,
    /// [`MidRound`](CrashKind::MidRound), then SIGKILL the *restarted*
    /// victim again before the rollback starts: a crash during recovery.
    /// The torn write is counted once (the first reload consumes it).
    DoubleKill,
}

/// One scheduled hardware fault: kill `victim` at checkpoint round `epoch`
/// with the placement selected by `kind`, then restart it from disk and
/// run the global rollback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node to kill (the fault-plan index mapping of [`NodeId`]).
    pub victim: NodeId,
    /// The checkpoint round (grid epoch) the crash lands in.
    pub epoch: u64,
    /// Placement of the kill relative to the round.
    pub kind: CrashKind,
}

/// Configuration of one cluster mission.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Mission seed, shared by every node (and the reference simulation).
    pub seed: u64,
    /// External produces fire at grid seconds `1..=steps`.
    pub steps: u32,
    /// Checkpoint grid spacing Δ in grid seconds.
    pub tb_interval_secs: f64,
    /// Scheduled hardware faults (at most one per grid epoch).
    pub crashes: Vec<CrashEvent>,
    /// Precede every external produce with an *internal* produce (a
    /// component-1 → P2 application message), generating the acked
    /// process-to-process traffic the TB recoverability rule — and the
    /// chaos wire's ack-duplication — act on.
    pub internal_traffic: bool,
    /// Link-fault plan shipped to every node's data plane.
    pub link_plan: LinkFaultPlan,
    /// Per-node stable-storage fault plans, indexed by node; missing
    /// entries are inert.
    pub disk_plans: Vec<DiskFaultPlan>,
    /// Flip one bit in the first crash victim's *oldest* committed
    /// checkpoint record before its restart, exercising the CRC-skip
    /// reload path (only when the victim holds ≥ 2 committed records, so
    /// the epoch line — and hence the device stream — is unchanged).
    pub bitrot: bool,
    /// Incremental-checkpoint cadence shipped to every node
    /// (`--delta-k`): full image every `delta_k` stable commits,
    /// CRC-chained deltas between. Zero keeps the legacy full-image store
    /// and disables every archive-tier feature below.
    pub delta_k: u32,
    /// Per-node archive-tier fault plans, indexed by node; missing entries
    /// are inert. Only meaningful with `delta_k > 0`.
    pub archive_plans: Vec<ArchiveFaultPlan>,
    /// Wipe the first crash victim's entire data directory while it is
    /// down (delta mode only): its restart rehydrates tier 0 from the
    /// archive and must rejoin byte-identically. Requires the pre-crash
    /// quiesce to have drained the victim's upload queue, which the
    /// archive-aware quiesce condition guarantees.
    pub wipe: bool,
    /// Delta-chain bit-rot: corrupt the first crash victim's *oldest*
    /// chain record behind a valid disk frame, so only the chain-link
    /// verification one layer up can catch it (only when a later full
    /// image exists, so the newest record — the rollback restore target —
    /// still replays and the device stream is unchanged).
    pub deltarot: bool,
    /// Byzantine-lite value corruption (unmasked regime, axis 4): before
    /// the first crash's global rollback, command node `corrupt` to flip
    /// value bytes inside its *latest* committed checkpoint behind a valid
    /// CRC. Unlike `bitrot`, this is *designed* to change the device
    /// stream — the rollback restores the lie (corrupting node 0 poisons
    /// the active's state, whose payloads reach the device), and the
    /// campaign's diff against the simulator reference documents the
    /// escape. Requires the legacy store (`delta_k == 0`); delta chains
    /// refuse to rewrite committed history.
    pub corrupt: Option<usize>,
    /// Which live-wire transport every node (and the orchestrator's device
    /// endpoint) runs: the sharded reactor by default, or the legacy
    /// thread-per-route transport.
    pub transport: WireKind,
    /// Override for the reactor's per-route outbound ring capacity in
    /// bytes; `None` keeps the wire-policy default. Small values are how
    /// tests provoke backpressure deterministically.
    pub wire_queue_bytes: Option<usize>,
    /// Path to the `synergy-node` binary.
    pub node_bin: PathBuf,
    /// Root directory for per-node stable storage
    /// (`<data_root>/node-<index>`).
    pub data_root: PathBuf,
    /// Deadlines and retry budgets.
    pub timeouts: ClusterTimeouts,
}

impl ClusterConfig {
    /// A fault-free configuration with default timeouts and inert chaos
    /// plans; callers add crashes and fault plans as needed.
    pub fn new(
        seed: u64,
        steps: u32,
        tb_interval_secs: f64,
        node_bin: PathBuf,
        data_root: PathBuf,
    ) -> Self {
        ClusterConfig {
            seed,
            steps,
            tb_interval_secs,
            crashes: Vec::new(),
            internal_traffic: false,
            link_plan: LinkFaultPlan::inert(seed),
            disk_plans: Vec::new(),
            bitrot: false,
            delta_k: 0,
            archive_plans: Vec::new(),
            wipe: false,
            deltarot: false,
            corrupt: None,
            transport: WireKind::default(),
            wire_queue_bytes: None,
            node_bin,
            data_root,
            timeouts: ClusterTimeouts::default(),
        }
    }
}

/// What one scheduled crash produced.
#[derive(Clone, Debug)]
pub struct KillReport {
    /// The checkpoint round during which the victim died.
    pub epoch: u64,
    /// Placement of the kill.
    pub kind: CrashKind,
    /// Whether the victim confirmed a staged (in-flight) stable write
    /// before the kill — the write the kill tears ([`CrashKind::MidRound`]
    /// and [`CrashKind::DoubleKill`] only).
    pub victim_began_writing: bool,
    /// Newest committed epoch the restarted victim recovered from disk.
    pub reload_epoch: Option<u64>,
    /// Torn writes the restarted victim detected while reloading.
    pub reload_torn_writes: u64,
    /// Committed records the restarted victim rejected by CRC (bit-rot).
    pub reload_corrupt_records: u64,
    /// Whether the victim's data directory was wiped while it was down,
    /// forcing its restart to rehydrate tier 0 from the archive.
    pub wiped: bool,
    /// Epoch of the checkpoint the Byzantine-lite injection value-flipped
    /// on the restarted victim before the rollback (`None`: no injection
    /// this round).
    pub corrupted_epoch: Option<u64>,
    /// The epoch line the orchestrator computed for the global rollback.
    pub line: u64,
    /// Rollback distance in grid epochs: the torn round minus the line.
    pub rollback_epochs: u64,
    /// Per-node rollback outcomes: `(pid, restored_epoch, resent)`.
    pub rollbacks: Vec<(u32, Option<u64>, u64)>,
}

/// Everything a finished cluster mission reports.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Device-bound external payloads, in arrival order.
    pub device_payloads: Vec<Vec<u8>>,
    /// The kill/restart observations, one per scheduled crash.
    pub kills: Vec<KillReport>,
    /// Final per-node statuses `(pid, status)` — including the chaos
    /// counters each node's fault wrappers accumulated.
    pub final_status: Vec<(u32, WireStatus)>,
}

struct NodeHandle {
    pid: u32,
    index: usize,
    child: Child,
    ctrl: TcpStream,
    data_addr: String,
    /// Committed epoch as tracked through control replies (`Committed`,
    /// `Hello` on restart, `RolledBack`).
    epoch: Option<u64>,
}

impl NodeHandle {
    /// One bounded control round-trip, with the failure attributed: a dead
    /// process is [`ClusterError::NodeDied`], a live-but-unresponsive one
    /// is [`ClusterError::Ctrl`].
    fn roundtrip(&mut self, msg: &CtrlMsg, timeout: Duration) -> Result<CtrlReply, ClusterError> {
        let attempt = send_ctrl(&mut self.ctrl, msg).and_then(|()| recv_ctrl(&mut self.ctrl));
        attempt.map_err(|e| match self.child.try_wait() {
            Ok(Some(status)) => ClusterError::NodeDied {
                pid: self.pid,
                detail: format!("{msg:?} failed ({e}); process exited with {status}"),
            },
            _ => ClusterError::Ctrl {
                pid: self.pid,
                detail: format!("{msg:?} got no reply within {timeout:?}: {e}"),
            },
        })
    }
}

/// What a node announces on (re)connect.
struct HelloInfo {
    ctrl: TcpStream,
    data_port: u16,
    epoch: Option<u64>,
    torn_writes: u64,
    corrupt_records: u64,
}

/// Accepts one node's control connection and reads its `Hello`, polling
/// the spawned child so an early death is reported immediately.
fn accept_hello(
    listener: &TcpListener,
    child: &mut Child,
    expected_pid: u32,
    timeouts: &ClusterTimeouts,
) -> Result<HelloInfo, ClusterError> {
    let sock = |e: io::Error| ClusterError::Launch {
        detail: format!("control listener: {e}"),
    };
    let deadline = Instant::now() + timeouts.hello;
    listener.set_nonblocking(true).map_err(sock)?;
    let mut stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(ClusterError::NodeDied {
                        pid: expected_pid,
                        detail: format!("exited with {status} before sending Hello"),
                    });
                }
                if Instant::now() >= deadline {
                    return Err(ClusterError::Launch {
                        detail: format!(
                            "pid {expected_pid} sent no Hello within {:?}",
                            timeouts.hello
                        ),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(sock(e)),
        }
    };
    listener.set_nonblocking(false).map_err(sock)?;
    stream.set_nodelay(true).map_err(sock)?;
    stream.set_read_timeout(Some(timeouts.ctrl)).map_err(sock)?;
    stream
        .set_write_timeout(Some(timeouts.ctrl))
        .map_err(sock)?;
    match recv_ctrl::<CtrlReply>(&mut stream) {
        Ok(CtrlReply::Hello {
            pid,
            data_port,
            epoch,
            torn_writes,
            corrupt_records,
        }) => {
            if pid != expected_pid {
                return Err(ClusterError::Protocol {
                    detail: format!("expected Hello from pid {expected_pid}, got pid {pid}"),
                });
            }
            Ok(HelloInfo {
                ctrl: stream,
                data_port,
                epoch,
                torn_writes,
                corrupt_records,
            })
        }
        Ok(other) => Err(ClusterError::Protocol {
            detail: format!("expected Hello, got {other:?}"),
        }),
        Err(e) => match child.try_wait() {
            Ok(Some(status)) => Err(ClusterError::NodeDied {
                pid: expected_pid,
                detail: format!("connected but exited with {status} before Hello: {e}"),
            }),
            _ => Err(ClusterError::Launch {
                detail: format!("pid {expected_pid} Hello read failed: {e}"),
            }),
        },
    }
}

/// A running three-process cluster mission.
pub struct Cluster {
    cfg: ClusterConfig,
    ctrl_listener: TcpListener,
    ctrl_addr: String,
    device_net: LiveWire,
    device_rx: std::sync::mpsc::Receiver<synergy_net::Envelope>,
    device_addr: String,
    nodes: Vec<NodeHandle>,
    bitrot_injected: bool,
    deltarot_injected: bool,
    corrupt_injected: bool,
    wiped: bool,
}

impl Cluster {
    /// Spawns the three node processes and wires the full route table.
    ///
    /// # Errors
    ///
    /// Process-spawn, socket, or control-protocol failures — all bounded
    /// by the configured timeouts.
    pub fn launch(cfg: ClusterConfig) -> Result<Self, ClusterError> {
        // The Byzantine-lite target indexes the node table; surface a bad
        // index as the same typed error the simulator's plan validation
        // raises, instead of panicking at the first crash round.
        if let Some(target) = cfg.corrupt {
            if NodeId::from_index(target).is_none() {
                return Err(ClusterError::Launch {
                    detail: synergy::FaultPlanError::NodeOutOfRange { node: target }.to_string(),
                });
            }
        }
        let sock = |e: io::Error| ClusterError::Launch {
            detail: format!("orchestrator sockets: {e}"),
        };
        let ctrl_listener = TcpListener::bind("127.0.0.1:0").map_err(sock)?;
        let ctrl_addr = ctrl_listener.local_addr().map_err(sock)?.to_string();
        let device_net = LiveWire::bind(cfg.transport, "127.0.0.1:0").map_err(sock)?;
        let device_rx = device_net.register(Endpoint::Device(DeviceId(0)));
        let device_addr = device_net.local_addr().to_string();

        let mut cluster = Cluster {
            cfg,
            ctrl_listener,
            ctrl_addr,
            device_net,
            device_rx,
            device_addr,
            nodes: Vec::new(),
            bitrot_injected: false,
            deltarot_injected: false,
            corrupt_injected: false,
            wiped: false,
        };
        for node in NodeId::ALL {
            let pid = node.index() as u32 + 1;
            let mut child = cluster.spawn_child(node)?;
            let hello = match accept_hello(
                &cluster.ctrl_listener,
                &mut child,
                pid,
                &cluster.cfg.timeouts,
            ) {
                Ok(h) => h,
                Err(e) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(e);
                }
            };
            if hello.epoch.is_some() || hello.torn_writes != 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(ClusterError::Protocol {
                    detail: format!("fresh node {node} reports prior state"),
                });
            }
            cluster.nodes.push(NodeHandle {
                pid,
                index: node.index(),
                child,
                ctrl: hello.ctrl,
                data_addr: format!("127.0.0.1:{}", hello.data_port),
                epoch: None,
            });
        }
        cluster.distribute_routes()?;
        Ok(cluster)
    }

    fn spawn_child(&self, node: NodeId) -> Result<Child, ClusterError> {
        let data_dir = self.cfg.data_root.join(format!("node-{}", node.index()));
        std::fs::create_dir_all(&data_dir).map_err(|e| ClusterError::Launch {
            detail: format!("create {}: {e}", data_dir.display()),
        })?;
        let interval_ms = (self.cfg.tb_interval_secs * 1000.0).round() as u64;
        let mut cmd = Command::new(&self.cfg.node_bin);
        cmd.arg("--pid")
            .arg((node.index() + 1).to_string())
            .arg("--seed")
            .arg(self.cfg.seed.to_string())
            .arg("--data-dir")
            .arg(&data_dir)
            .arg("--ctrl")
            .arg(&self.ctrl_addr)
            .arg("--tb-interval-ms")
            .arg(interval_ms.to_string());
        if self.cfg.transport != WireKind::default() {
            cmd.arg("--transport").arg(self.cfg.transport.to_string());
        }
        if let Some(bytes) = self.cfg.wire_queue_bytes {
            cmd.arg("--wire-queue-bytes").arg(bytes.to_string());
        }
        if !self.cfg.link_plan.is_inert() {
            cmd.arg("--chaos-link")
                .arg(plan_to_hex(&self.cfg.link_plan));
        }
        if let Some(plan) = self.cfg.disk_plans.get(node.index()) {
            if !plan.is_inert() {
                cmd.arg("--chaos-disk").arg(plan_to_hex(plan));
            }
        }
        if self.cfg.delta_k > 0 {
            // The archive tier lives *beside* the data dir, so wiping the
            // node's local disk leaves the archive intact to rehydrate from.
            let archive_dir = self.cfg.data_root.join(format!("archive-{}", node.index()));
            std::fs::create_dir_all(&archive_dir).map_err(|e| ClusterError::Launch {
                detail: format!("create {}: {e}", archive_dir.display()),
            })?;
            cmd.arg("--delta-k")
                .arg(self.cfg.delta_k.to_string())
                .arg("--archive-dir")
                .arg(&archive_dir);
            if let Some(plan) = self.cfg.archive_plans.get(node.index()) {
                if !plan.is_inert() {
                    cmd.arg("--chaos-archive").arg(plan_to_hex(plan));
                }
            }
        }
        cmd.stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
            .map_err(|e| ClusterError::Launch {
                detail: format!("spawn {} for {node}: {e}", self.cfg.node_bin.display()),
            })
    }

    /// Sends every node the full route table (peers + device).
    fn distribute_routes(&mut self) -> Result<(), ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        let routes: Vec<(Endpoint, String)> = self
            .nodes
            .iter()
            .map(|n| (Endpoint::Process(ProcessId(n.pid)), n.data_addr.clone()))
            .chain(std::iter::once((
                Endpoint::Device(DeviceId(0)),
                self.device_addr.clone(),
            )))
            .collect();
        for i in 0..self.nodes.len() {
            for (endpoint, addr) in &routes {
                let reply = self.nodes[i].roundtrip(
                    &CtrlMsg::SetRoute {
                        endpoint: *endpoint,
                        addr: addr.clone(),
                    },
                    ctrl_timeout,
                )?;
                expect_done(reply)?;
            }
        }
        Ok(())
    }

    /// Verifies every node process is still running (dead-node detection
    /// between control interactions).
    pub fn ensure_alive(&mut self) -> Result<(), ClusterError> {
        for node in &mut self.nodes {
            if let Ok(Some(status)) = node.child.try_wait() {
                return Err(ClusterError::NodeDied {
                    pid: node.pid,
                    detail: format!("exited with {status} outside the crash schedule"),
                });
            }
        }
        Ok(())
    }

    /// One full-cluster status sweep. Fails fast with
    /// [`ClusterError::Backpressure`] if any node's wire dropped a frame on
    /// a live route — the loss is permanent, so no later sweep can succeed.
    pub fn status_all(&mut self) -> Result<Vec<(u32, WireStatus)>, ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in &mut self.nodes {
            match node.roundtrip(&CtrlMsg::Status, ctrl_timeout)? {
                CtrlReply::Status(s) => {
                    if s.backpressure > 0 {
                        return Err(ClusterError::Backpressure {
                            pid: node.pid,
                            dropped: s.backpressure,
                        });
                    }
                    out.push((node.pid, s));
                }
                other => {
                    return Err(ClusterError::Protocol {
                        detail: format!("pid {}: expected Status, got {other:?}", node.pid),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Reroutes `endpoint` on one node's data plane. Public for wire
    /// regression tests that point a route at an uncooperative peer.
    ///
    /// # Errors
    ///
    /// Control failures on the target node.
    pub fn set_route(
        &mut self,
        node: NodeId,
        endpoint: Endpoint,
        addr: &str,
    ) -> Result<(), ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        let reply = self.nodes[node.index()].roundtrip(
            &CtrlMsg::SetRoute {
                endpoint,
                addr: addr.to_string(),
            },
            ctrl_timeout,
        )?;
        expect_done(reply)
    }

    /// Commands one node to fire `frames` raw envelopes of `payload_bytes`
    /// at `to` with no backpressure retry, returning `(sent, rejected)`.
    /// Public for wire regression tests that overdrive a route on purpose.
    ///
    /// # Errors
    ///
    /// Control failures on the target node.
    pub fn blast(
        &mut self,
        node: NodeId,
        to: Endpoint,
        frames: u64,
        payload_bytes: u64,
    ) -> Result<(u64, u64), ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        match self.nodes[node.index()].roundtrip(
            &CtrlMsg::Blast {
                to,
                frames,
                payload_bytes,
            },
            ctrl_timeout,
        )? {
            CtrlReply::Blasted { sent, backpressure } => Ok((sent, backpressure)),
            other => Err(ClusterError::Protocol {
                detail: format!("expected Blasted, got {other:?}"),
            }),
        }
    }

    /// Status round-trip on every node: a cluster-wide command barrier.
    fn barrier(&mut self) -> Result<(), ClusterError> {
        self.status_all().map(|_| ())
    }

    /// Waits until the cluster is settled: two consecutive identical
    /// status snapshots with every `unacked` and chaos `net_queued`
    /// counter at zero. With link faults active this is the barrier that
    /// lets injected delays, retransmissions, and partition heals drain
    /// before a checkpoint round or a kill.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Quiesce`] (carrying the last snapshot) if the
    /// deadline passes; control errors from the status sweeps.
    pub fn quiesce(&mut self) -> Result<Vec<(u32, WireStatus)>, ClusterError> {
        let deadline = Instant::now() + self.cfg.timeouts.quiesce;
        let mut prev: Option<Vec<(u32, WireStatus)>> = None;
        loop {
            let snap = self.status_all()?;
            // Archive-aware: an undrained upload queue means a kill (or
            // wipe) could behead records the archive never saw, so delta
            // missions settle it alongside the data plane.
            let drained = snap
                .iter()
                .all(|(_, s)| s.unacked == 0 && s.net_queued == 0 && s.archive_pending == 0);
            if drained && prev.as_ref() == Some(&snap) {
                return Ok(snap);
            }
            if Instant::now() >= deadline {
                return Err(ClusterError::Quiesce {
                    detail: format!(
                        "not settled within {:?}; last snapshot: {snap:?}",
                        self.cfg.timeouts.quiesce
                    ),
                });
            }
            prev = Some(snap);
            std::thread::sleep(self.cfg.timeouts.settle);
        }
    }

    /// SIGKILLs one node process (and reaps it). Public for fault-campaign
    /// regression tests that need an out-of-schedule death.
    ///
    /// # Errors
    ///
    /// Kill/wait failures on the child process.
    pub fn kill_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        let handle = &mut self.nodes[node.index()];
        handle
            .child
            .kill()
            .and_then(|()| handle.child.wait().map(|_| ()))
            .map_err(|e| ClusterError::Launch {
                detail: format!("kill pid {}: {e}", handle.pid),
            })
    }

    /// One commanded checkpoint round on every node.
    fn checkpoint_round(&mut self) -> Result<(), ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        for node in &mut self.nodes {
            let reply = node.roundtrip(&CtrlMsg::BeginCkpt, ctrl_timeout)?;
            if !matches!(reply, CtrlReply::Began { writing: true }) {
                return Err(ClusterError::Protocol {
                    detail: format!("pid {}: round did not stage a write: {reply:?}", node.pid),
                });
            }
        }
        for node in &mut self.nodes {
            match node.roundtrip(&CtrlMsg::CommitCkpt, ctrl_timeout)? {
                CtrlReply::Committed { epoch } => node.epoch = epoch,
                other => {
                    return Err(ClusterError::Protocol {
                        detail: format!("pid {}: bad commit reply {other:?}", node.pid),
                    })
                }
            }
        }
        Ok(())
    }

    /// Flips one bit in the victim's **oldest** committed checkpoint
    /// record, when it holds at least two — the newest (the rollback
    /// line's restore target) stays intact, so the corruption is masked by
    /// the CRC-skip reload and the device stream is unchanged.
    fn inject_bitrot(&self, victim: usize) -> Result<bool, ClusterError> {
        let dir = self.cfg.data_root.join(format!("node-{victim}"));
        let fs_err = |e: io::Error| ClusterError::Launch {
            detail: format!("bit-rot injection in {}: {e}", dir.display()),
        };
        let mut records: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(fs_err)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
            })
            .collect();
        if records.len() < 2 {
            return Ok(false);
        }
        records.sort();
        let target = &records[0];
        let mut bytes = std::fs::read(target).map_err(fs_err)?;
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(target, bytes).map_err(fs_err)?;
        Ok(true)
    }

    /// Corrupts the victim's **oldest** chain record *behind a valid disk
    /// frame*: the record file re-frames cleanly, so the disk reload
    /// accepts it and only the chain-link verification one layer up can
    /// refuse it. Requires a later full image among the committed records
    /// so the newest record — the rollback restore target — still replays
    /// and the device stream is unchanged.
    fn inject_deltarot(&self, victim: usize) -> Result<bool, ClusterError> {
        use synergy_archive::RecordKind;
        let dir = self.cfg.data_root.join(format!("node-{victim}"));
        let fs_err = |e: io::Error| ClusterError::Launch {
            detail: format!("delta-rot injection in {}: {e}", dir.display()),
        };
        let mut records: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(fs_err)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".bin"))
            })
            .collect();
        if records.len() < 2 {
            return Ok(false);
        }
        records.sort();
        let mut decoded = Vec::with_capacity(records.len());
        for path in &records {
            let Some(ckpt) = DiskStableStore::read_record_file(path) else {
                return Ok(false);
            };
            let Ok(record) = ckpt.decode::<ChainRecord>() else {
                return Ok(false);
            };
            decoded.push((ckpt, record));
        }
        if !decoded[1..]
            .iter()
            .any(|(_, r)| r.kind() == RecordKind::Full)
        {
            return Ok(false);
        }
        let (ckpt, record) = &decoded[0];
        let corrupted = match record.clone() {
            ChainRecord::Full { chain_crc, image } => {
                let mut bytes = image.to_vec();
                if bytes.is_empty() {
                    return Ok(false);
                }
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01;
                ChainRecord::Full {
                    chain_crc,
                    image: bytes.into(),
                }
            }
            ChainRecord::Delta {
                base_seq,
                chain_crc,
                mut patch,
            } => {
                // Rot the reconstructed-image CRC: the frame stays valid,
                // the chain link no longer verifies.
                patch.image_crc ^= 0x1;
                ChainRecord::Delta {
                    base_seq,
                    chain_crc,
                    patch,
                }
            }
        };
        let rewritten = Checkpoint::encode(ckpt.seq(), ckpt.taken_at(), ckpt.label(), &corrupted)
            .map_err(|e| ClusterError::Launch {
            detail: format!("re-encode rotted chain record: {e}"),
        })?;
        DiskStableStore::write_record_file(&records[0], &rewritten).map_err(|e| {
            ClusterError::Launch {
                detail: format!("delta-rot write: {e}"),
            }
        })?;
        Ok(true)
    }

    /// Restarts one node from its data directory with bounded
    /// retry-with-backoff, returning its fresh handle state.
    fn restart_node(&mut self, node: NodeId) -> Result<(Child, HelloInfo), ClusterError> {
        let expected_pid = node.index() as u32 + 1;
        let mut backoff = Backoff::linear(
            self.cfg.timeouts.restart_backoff,
            Some(self.cfg.timeouts.restart_attempts.max(1)),
        );
        loop {
            let attempt = (|| {
                let mut child = self.spawn_child(node)?;
                match accept_hello(
                    &self.ctrl_listener,
                    &mut child,
                    expected_pid,
                    &self.cfg.timeouts,
                ) {
                    Ok(hello) => Ok((child, hello)),
                    Err(e) => {
                        let _ = child.kill();
                        let _ = child.wait();
                        Err(e)
                    }
                }
            })();
            match attempt {
                Ok(restarted) => return Ok(restarted),
                Err(e) => match backoff.next_delay() {
                    Some(delay) => std::thread::sleep(delay),
                    None => return Err(e),
                },
            }
        }
    }

    /// Installs a restarted victim's fresh handle.
    fn adopt_restart(&mut self, index: usize, child: Child, hello: HelloInfo) {
        let node = &mut self.nodes[index];
        node.child = child;
        node.ctrl = hello.ctrl;
        node.data_addr = format!("127.0.0.1:{}", hello.data_port);
        node.epoch = hello.epoch;
    }

    /// The crash round: kill the victim at the placement selected by the
    /// crash kind, restart it from disk (bounded retries), and run the
    /// paper's global rollback to the epoch line.
    fn crash_round(&mut self, ev: &CrashEvent) -> Result<KillReport, ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        let victim = ev.victim.index();
        let mut victim_began_writing = false;

        // Byzantine-lite: before this round commits, the target node
        // value-flips its *latest committed* checkpoint behind a fresh
        // valid CRC. At this instant that record's epoch equals the epoch
        // line the rollback below will compute (the victim reloads to the
        // previous round), so the global rollback restores the lie on the
        // corrupted node — and, with node 0 targeted, every external the
        // active produces afterwards carries the flipped state to the
        // device. Injecting after the commit would corrupt a record above
        // the line, which the rollback would never read: a silent flip.
        let mut corrupted_epoch = None;
        if let Some(target) = self.cfg.corrupt {
            if !self.corrupt_injected {
                match self.nodes[target].roundtrip(&CtrlMsg::Corrupt, ctrl_timeout)? {
                    CtrlReply::Corrupted { epoch } => {
                        corrupted_epoch = epoch;
                        self.corrupt_injected = epoch.is_some();
                    }
                    other => {
                        return Err(ClusterError::Protocol {
                            detail: format!("bad corrupt reply {other:?}"),
                        })
                    }
                }
            }
        }

        match ev.kind {
            CrashKind::RoundStart => {
                // The victim dies idle, before the round touches it; the
                // survivors still run the full round and commit.
                self.kill_node(ev.victim)?;
                for i in 0..self.nodes.len() {
                    if i == victim {
                        continue;
                    }
                    let reply = self.nodes[i].roundtrip(&CtrlMsg::BeginCkpt, ctrl_timeout)?;
                    if !matches!(reply, CtrlReply::Began { writing: true }) {
                        return Err(ClusterError::Protocol {
                            detail: format!("survivor did not stage a write: {reply:?}"),
                        });
                    }
                }
            }
            CrashKind::MidRound | CrashKind::DoubleKill => {
                for i in 0..self.nodes.len() {
                    let reply = self.nodes[i].roundtrip(&CtrlMsg::BeginCkpt, ctrl_timeout)?;
                    if self.nodes[i].index == victim {
                        victim_began_writing = matches!(reply, CtrlReply::Began { writing: true });
                    }
                }
                // The hardware fault: SIGKILL mid-round. The victim's
                // in-flight stable write is now a genuinely torn temp file.
                self.kill_node(ev.victim)?;
            }
        }
        for i in 0..self.nodes.len() {
            if i == victim {
                continue;
            }
            match self.nodes[i].roundtrip(&CtrlMsg::CommitCkpt, ctrl_timeout)? {
                CtrlReply::Committed { epoch } => self.nodes[i].epoch = epoch,
                other => {
                    return Err(ClusterError::Protocol {
                        detail: format!("survivor commit reply {other:?}"),
                    })
                }
            }
        }

        // Faults injected while the victim is down, so its restart
        // exercises the recovery ladder. At most one per crash: a wipe
        // leaves nothing for the rot injectors to chew on this round
        // (each latches independently, so a skipped injector retries at
        // the next scheduled crash).
        let mut wiped = false;
        if self.cfg.wipe && self.cfg.delta_k > 0 && !self.wiped {
            // The archive-aware quiesce before this round drained the
            // victim's upload queue, so the archive holds every committed
            // record and the wiped node rehydrates to the same history.
            let dir = self.cfg.data_root.join(format!("node-{victim}"));
            std::fs::remove_dir_all(&dir).map_err(|e| ClusterError::Launch {
                detail: format!("wipe {}: {e}", dir.display()),
            })?;
            self.wiped = true;
            wiped = true;
        }
        if self.cfg.deltarot && self.cfg.delta_k > 0 && !self.deltarot_injected && !wiped {
            self.deltarot_injected = self.inject_deltarot(victim)?;
        }
        if self.cfg.bitrot && !self.bitrot_injected && !wiped {
            self.bitrot_injected = self.inject_bitrot(victim)?;
        }

        // Restart the victim from its data directory; its Hello reports
        // what it recovered (CRC-verified checkpoints, the torn write, any
        // corrupt record it skipped).
        let (child, hello) = self.restart_node(ev.victim)?;
        let reload_epoch = hello.epoch;
        let reload_torn = hello.torn_writes;
        let reload_corrupt = hello.corrupt_records;
        self.adopt_restart(victim, child, hello);

        if ev.kind == CrashKind::DoubleKill {
            // Crash during recovery: the freshly restarted victim dies
            // again before the rollback reaches it. The second reload sees
            // no new torn write (the first reload consumed the temp file).
            self.kill_node(ev.victim)?;
            let (child, hello) = self.restart_node(ev.victim)?;
            self.adopt_restart(victim, child, hello);
        }
        self.distribute_routes()?;

        // The epoch line: minimum committed epoch over all (now live)
        // processes; a node with nothing committed contributes 0.
        let line = self
            .nodes
            .iter()
            .map(|n| n.epoch.unwrap_or(0))
            .min()
            .unwrap_or(0);
        let mut rollbacks = Vec::new();
        for node in &mut self.nodes {
            match node.roundtrip(&CtrlMsg::Rollback { epoch: line }, ctrl_timeout)? {
                CtrlReply::RolledBack {
                    restored_epoch,
                    resent,
                } => {
                    node.epoch = restored_epoch;
                    rollbacks.push((node.pid, restored_epoch, resent));
                }
                other => {
                    return Err(ClusterError::Protocol {
                        detail: format!("bad rollback reply {other:?}"),
                    })
                }
            }
        }
        Ok(KillReport {
            epoch: ev.epoch,
            kind: ev.kind,
            victim_began_writing,
            reload_epoch,
            reload_torn_writes: reload_torn,
            reload_corrupt_records: reload_corrupt,
            wiped,
            corrupted_epoch,
            line,
            rollback_epochs: ev.epoch.saturating_sub(line),
            rollbacks,
        })
    }

    /// Runs the mission to completion and reports.
    ///
    /// # Errors
    ///
    /// Any [`ClusterError`]: control failures, out-of-schedule deaths,
    /// quiesce or device timeouts — always within the configured bounds,
    /// never a hang.
    pub fn run(mut self) -> Result<ClusterReport, ClusterError> {
        let ctrl_timeout = self.cfg.timeouts.ctrl;
        // Internal traffic puts acked P1 → P2 messages in flight, so it
        // needs the same settle discipline as chaos: quiesce (unacked == 0)
        // rather than a bare barrier, or grid rounds could checkpoint state
        // the simulator never sees.
        let chaos_active = !self.cfg.link_plan.is_inert()
            || self.cfg.disk_plans.iter().any(|p| !p.is_inert())
            || self.cfg.internal_traffic
            || self.cfg.wipe
            || self.cfg.archive_plans.iter().any(|p| !p.is_inert());
        let mut device_payloads = Vec::new();
        let mut kills = Vec::new();
        let mut next_grid: u64 = 1;
        for s in 1..=self.cfg.steps {
            // Checkpoint rounds whose grid time falls before this produce.
            while self.cfg.tb_interval_secs * (next_grid as f64) < f64::from(s) {
                self.ensure_alive()?;
                // Settle the cluster at the grid point: with chaos active,
                // wait out in-flight injected delays/retransmits so every
                // node checkpoints the same logical state the simulator
                // checkpoints.
                if chaos_active {
                    self.quiesce()?;
                } else {
                    self.barrier()?;
                }
                let crash = self
                    .cfg
                    .crashes
                    .iter()
                    .find(|c| c.epoch == next_grid)
                    .copied();
                match crash {
                    Some(ev) => kills.push(self.crash_round(&ev)?),
                    None => self.checkpoint_round()?,
                }
                next_grid += 1;
            }
            // The scripted produces on component 1: active and shadow stay
            // aligned. The optional internal produce (a P1 → P2 message
            // that will be acked) precedes the external one at the same
            // logical instant — the reference simulation scripts both at
            // time `s` in the same order, and the DES queue breaks the tie
            // FIFO.
            if self.cfg.internal_traffic {
                for i in [NodeId::P1Act.index(), NodeId::P1Sdw.index()] {
                    let reply = self.nodes[i]
                        .roundtrip(&CtrlMsg::Produce { external: false }, ctrl_timeout)?;
                    expect_done(reply)?;
                }
            }
            // The external produce: the active's output reaches the device.
            for i in [NodeId::P1Act.index(), NodeId::P1Sdw.index()] {
                let reply =
                    self.nodes[i].roundtrip(&CtrlMsg::Produce { external: true }, ctrl_timeout)?;
                expect_done(reply)?;
            }
            let env = self
                .device_rx
                .recv_timeout(self.cfg.timeouts.device)
                .map_err(|_| ClusterError::Device {
                    detail: format!(
                        "produce {s}: no device message within {:?}",
                        self.cfg.timeouts.device
                    ),
                })?;
            match env.body {
                MessageBody::External { payload } => device_payloads.push(payload),
                other => {
                    return Err(ClusterError::Protocol {
                        detail: format!("device received non-external body {other:?}"),
                    })
                }
            }
        }

        // Drain any stragglers (e.g. traffic a chaos delay pushed past the
        // last produce) so the device stream comparison sees everything.
        if chaos_active {
            self.quiesce()?;
            while let Ok(env) = self.device_rx.recv_timeout(self.cfg.timeouts.settle) {
                if let MessageBody::External { payload } = env.body {
                    device_payloads.push(payload);
                }
            }
        }

        let final_status = self.status_all()?;
        for node in &mut self.nodes {
            let _ = node.roundtrip(&CtrlMsg::Shutdown, ctrl_timeout);
            let _ = node.child.wait();
        }
        self.device_net.shutdown();
        Ok(ClusterReport {
            device_payloads,
            kills,
            final_status,
        })
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Reap any children still alive (e.g. an error path before the
        // orderly shutdown); killed processes must not outlive the mission.
        for node in &mut self.nodes {
            let _ = node.child.kill();
            let _ = node.child.wait();
        }
    }
}

fn expect_done(reply: CtrlReply) -> Result<(), ClusterError> {
    if reply == CtrlReply::Done {
        Ok(())
    } else {
        Err(ClusterError::Protocol {
            detail: format!("expected Done, got {reply:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_rejects_an_out_of_range_corrupt_target() {
        let mut cfg = ClusterConfig::new(
            1,
            3,
            1.7,
            PathBuf::from("/nonexistent/synergy-node"),
            std::env::temp_dir().join("synergy-corrupt-validate"),
        );
        cfg.corrupt = Some(9);
        match Cluster::launch(cfg) {
            Err(ClusterError::Launch { detail }) => {
                assert!(detail.contains("node index 9 out of range"), "{detail}");
            }
            Err(other) => panic!("expected a typed launch rejection, got {other:?}"),
            Ok(_) => panic!("launch must reject the bad corrupt target"),
        }
    }
}
