//! The cluster orchestrator: spawns the three `synergy-node` processes,
//! drives the mission grid (produces + commanded checkpoint rounds), kills
//! and restarts a victim per the fault plan, and coordinates the paper's
//! global rollback across real OS processes.
//!
//! The mission is laid out on the same grid a simulator run uses: external
//! produces fire at `t = 1, 2, …, steps` (grid seconds) and checkpoint
//! round `g` runs at `t = g·Δ`. The orchestrator replays that timeline in
//! *logical* order — every command is a lockstep control round-trip — so a
//! cluster run is comparable event-for-event with a [`synergy`] simulation
//! of the same seed and fault plan (see [`crate::verify`]).

use std::io;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use synergy::NodeId;
use synergy_net::tcp::TcpTransport;
use synergy_net::{DeviceId, Endpoint, MessageBody, ProcessId};

use crate::ctrl::{recv_ctrl, send_ctrl, CtrlMsg, CtrlReply, WireStatus};

/// How long to wait for a spawned node's `Hello` or a control reply.
const CTRL_TIMEOUT: Duration = Duration::from_secs(20);

/// The scheduled kill: SIGKILL `victim` in the middle of checkpoint round
/// `epoch` — after its stable write is staged on disk, before it commits —
/// then restart it from its data directory.
#[derive(Clone, Copy, Debug)]
pub struct KillPlan {
    /// The node to kill (the fault-plan index mapping of [`NodeId`]).
    pub victim: NodeId,
    /// The checkpoint round (grid epoch) torn by the kill.
    pub epoch: u64,
}

/// Configuration of one cluster mission.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Mission seed, shared by every node (and the reference simulation).
    pub seed: u64,
    /// External produces fire at grid seconds `1..=steps`.
    pub steps: u32,
    /// Checkpoint grid spacing Δ in grid seconds.
    pub tb_interval_secs: f64,
    /// The scheduled hardware fault, if any.
    pub kill: Option<KillPlan>,
    /// Path to the `synergy-node` binary.
    pub node_bin: PathBuf,
    /// Root directory for per-node stable storage
    /// (`<data_root>/node-<index>`).
    pub data_root: PathBuf,
}

/// What the scheduled kill produced.
#[derive(Clone, Debug)]
pub struct KillReport {
    /// The checkpoint round during which the victim died.
    pub epoch: u64,
    /// Whether the victim confirmed a staged (in-flight) stable write
    /// before the kill — the write the kill tears.
    pub victim_began_writing: bool,
    /// Newest committed epoch the restarted victim recovered from disk.
    pub reload_epoch: Option<u64>,
    /// Torn writes the restarted victim detected while reloading.
    pub reload_torn_writes: u64,
    /// The epoch line the orchestrator computed for the global rollback.
    pub line: u64,
    /// Per-node rollback outcomes: `(pid, restored_epoch, resent)`.
    pub rollbacks: Vec<(u32, Option<u64>, u64)>,
}

/// Everything a finished cluster mission reports.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Device-bound external payloads, in arrival order.
    pub device_payloads: Vec<Vec<u8>>,
    /// The kill/restart observations, when a kill was scheduled.
    pub kill: Option<KillReport>,
    /// Final per-node statuses `(pid, status)`.
    pub final_status: Vec<(u32, WireStatus)>,
}

struct NodeHandle {
    pid: u32,
    index: usize,
    child: Child,
    ctrl: TcpStream,
    data_addr: String,
    /// Committed epoch as tracked through control replies (`Committed`,
    /// `Hello` on restart, `RolledBack`).
    epoch: Option<u64>,
}

impl NodeHandle {
    fn roundtrip(&mut self, msg: &CtrlMsg) -> io::Result<CtrlReply> {
        send_ctrl(&mut self.ctrl, msg)?;
        recv_ctrl(&mut self.ctrl)
    }
}

/// Accepts one node's control connection and reads its `Hello`.
fn accept_hello(listener: &TcpListener) -> io::Result<(TcpStream, u32, u16, Option<u64>, u64)> {
    let deadline = Instant::now() + CTRL_TIMEOUT;
    listener.set_nonblocking(true)?;
    let mut stream = loop {
        match listener.accept() {
            Ok((s, _)) => break s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no node connected to the control listener",
                    ));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    };
    listener.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(CTRL_TIMEOUT))?;
    match recv_ctrl::<CtrlReply>(&mut stream)? {
        CtrlReply::Hello {
            pid,
            data_port,
            epoch,
            torn_writes,
        } => Ok((stream, pid, data_port, epoch, torn_writes)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Hello, got {other:?}"),
        )),
    }
}

/// A running three-process cluster mission.
pub struct Cluster {
    cfg: ClusterConfig,
    ctrl_listener: TcpListener,
    ctrl_addr: String,
    device_net: TcpTransport,
    device_rx: std::sync::mpsc::Receiver<synergy_net::Envelope>,
    device_addr: String,
    nodes: Vec<NodeHandle>,
}

impl Cluster {
    /// Spawns the three node processes and wires the full route table.
    ///
    /// # Errors
    ///
    /// Process-spawn, socket, or control-protocol failures.
    pub fn launch(cfg: ClusterConfig) -> io::Result<Self> {
        let ctrl_listener = TcpListener::bind("127.0.0.1:0")?;
        let ctrl_addr = ctrl_listener.local_addr()?.to_string();
        let device_net = TcpTransport::bind("127.0.0.1:0")?;
        let device_rx = device_net.register(Endpoint::Device(DeviceId(0)));
        let device_addr = device_net.local_addr().to_string();

        let mut cluster = Cluster {
            cfg,
            ctrl_listener,
            ctrl_addr,
            device_net,
            device_rx,
            device_addr,
            nodes: Vec::new(),
        };
        for node in NodeId::ALL {
            let child = cluster.spawn_child(node)?;
            let (ctrl, pid, data_port, epoch, torn) = accept_hello(&cluster.ctrl_listener)?;
            if pid != node.index() as u32 + 1 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("node {node} announced pid {pid}"),
                ));
            }
            if epoch.is_some() || torn != 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("fresh node {node} reports prior state"),
                ));
            }
            cluster.nodes.push(NodeHandle {
                pid,
                index: node.index(),
                child,
                ctrl,
                data_addr: format!("127.0.0.1:{data_port}"),
                epoch: None,
            });
        }
        cluster.distribute_routes()?;
        Ok(cluster)
    }

    fn spawn_child(&self, node: NodeId) -> io::Result<Child> {
        let data_dir = self.cfg.data_root.join(format!("node-{}", node.index()));
        std::fs::create_dir_all(&data_dir)?;
        let interval_ms = (self.cfg.tb_interval_secs * 1000.0).round() as u64;
        Command::new(&self.cfg.node_bin)
            .arg("--pid")
            .arg((node.index() + 1).to_string())
            .arg("--seed")
            .arg(self.cfg.seed.to_string())
            .arg("--data-dir")
            .arg(&data_dir)
            .arg("--ctrl")
            .arg(&self.ctrl_addr)
            .arg("--tb-interval-ms")
            .arg(interval_ms.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .spawn()
    }

    /// Sends every node the full route table (peers + device).
    fn distribute_routes(&mut self) -> io::Result<()> {
        let routes: Vec<(Endpoint, String)> = self
            .nodes
            .iter()
            .map(|n| (Endpoint::Process(ProcessId(n.pid)), n.data_addr.clone()))
            .chain(std::iter::once((
                Endpoint::Device(DeviceId(0)),
                self.device_addr.clone(),
            )))
            .collect();
        for i in 0..self.nodes.len() {
            for (endpoint, addr) in &routes {
                let reply = self.nodes[i].roundtrip(&CtrlMsg::SetRoute {
                    endpoint: *endpoint,
                    addr: addr.clone(),
                })?;
                expect_done(reply)?;
            }
        }
        Ok(())
    }

    /// Status round-trip on every node: a cluster-wide command barrier.
    fn barrier(&mut self) -> io::Result<()> {
        for node in &mut self.nodes {
            node.roundtrip(&CtrlMsg::Status)?;
        }
        Ok(())
    }

    /// One commanded checkpoint round on every node.
    fn checkpoint_round(&mut self) -> io::Result<()> {
        for node in &mut self.nodes {
            let reply = node.roundtrip(&CtrlMsg::BeginCkpt)?;
            if !matches!(reply, CtrlReply::Began { writing: true }) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("pid {}: round did not stage a write: {reply:?}", node.pid),
                ));
            }
        }
        for node in &mut self.nodes {
            match node.roundtrip(&CtrlMsg::CommitCkpt)? {
                CtrlReply::Committed { epoch } => node.epoch = epoch,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("pid {}: bad commit reply {other:?}", node.pid),
                    ))
                }
            }
        }
        Ok(())
    }

    /// The kill round: stage writes everywhere, SIGKILL the victim with its
    /// write torn open, commit the survivors, restart the victim from disk,
    /// and run the paper's global rollback to the epoch line.
    fn kill_round(&mut self, plan: KillPlan) -> io::Result<KillReport> {
        let victim = plan.victim.index();
        let mut victim_began_writing = false;
        for i in 0..self.nodes.len() {
            let reply = self.nodes[i].roundtrip(&CtrlMsg::BeginCkpt)?;
            if self.nodes[i].index == victim {
                victim_began_writing = matches!(reply, CtrlReply::Began { writing: true });
            }
        }
        // The hardware fault: SIGKILL mid-round. The victim's in-flight
        // stable write is now a genuinely torn temp file on disk.
        {
            let node = &mut self.nodes[victim];
            node.child.kill()?;
            node.child.wait()?;
        }
        for i in 0..self.nodes.len() {
            if i == victim {
                continue;
            }
            match self.nodes[i].roundtrip(&CtrlMsg::CommitCkpt)? {
                CtrlReply::Committed { epoch } => self.nodes[i].epoch = epoch,
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("survivor commit reply {other:?}"),
                    ))
                }
            }
        }

        // Restart the victim from its data directory; its Hello reports
        // what it recovered (CRC-verified checkpoints + the torn write).
        let child = self.spawn_child(plan.victim)?;
        let (ctrl, pid, data_port, reload_epoch, reload_torn) = accept_hello(&self.ctrl_listener)?;
        if pid != victim as u32 + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("restarted victim announced pid {pid}"),
            ));
        }
        {
            let node = &mut self.nodes[victim];
            node.child = child;
            node.ctrl = ctrl;
            node.data_addr = format!("127.0.0.1:{data_port}");
            node.epoch = reload_epoch;
        }
        self.distribute_routes()?;

        // The epoch line: minimum committed epoch over all (now live)
        // processes; a node with nothing committed contributes 0.
        let line = self
            .nodes
            .iter()
            .map(|n| n.epoch.unwrap_or(0))
            .min()
            .unwrap_or(0);
        let mut rollbacks = Vec::new();
        for node in &mut self.nodes {
            match node.roundtrip(&CtrlMsg::Rollback { epoch: line })? {
                CtrlReply::RolledBack {
                    restored_epoch,
                    resent,
                } => {
                    node.epoch = restored_epoch;
                    rollbacks.push((node.pid, restored_epoch, resent));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("bad rollback reply {other:?}"),
                    ))
                }
            }
        }
        Ok(KillReport {
            epoch: plan.epoch,
            victim_began_writing,
            reload_epoch,
            reload_torn_writes: reload_torn,
            line,
            rollbacks,
        })
    }

    /// Runs the mission to completion and reports.
    ///
    /// # Errors
    ///
    /// Control-protocol failures, a node dying unexpectedly, or a missing
    /// device message.
    pub fn run(mut self) -> io::Result<ClusterReport> {
        let mut device_payloads = Vec::new();
        let mut kill_report = None;
        let mut next_grid: u64 = 1;
        for s in 1..=self.cfg.steps {
            // Checkpoint rounds whose grid time falls before this produce.
            while self.cfg.tb_interval_secs * (next_grid as f64) < f64::from(s) {
                self.barrier()?;
                match self.cfg.kill {
                    Some(plan) if plan.epoch == next_grid => {
                        kill_report = Some(self.kill_round(plan)?);
                    }
                    _ => self.checkpoint_round()?,
                }
                next_grid += 1;
            }
            // The scripted external produce on component 1: active and
            // shadow stay aligned, the active's output reaches the device.
            for i in [NodeId::P1Act.index(), NodeId::P1Sdw.index()] {
                expect_done(self.nodes[i].roundtrip(&CtrlMsg::Produce { external: true })?)?;
            }
            let env = self
                .device_rx
                .recv_timeout(CTRL_TIMEOUT)
                .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "no device message"))?;
            match env.body {
                MessageBody::External { payload } => device_payloads.push(payload),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("device received non-external body {other:?}"),
                    ))
                }
            }
        }

        let mut final_status = Vec::new();
        for node in &mut self.nodes {
            if let CtrlReply::Status(s) = node.roundtrip(&CtrlMsg::Status)? {
                final_status.push((node.pid, s));
            }
        }
        for node in &mut self.nodes {
            let _ = node.roundtrip(&CtrlMsg::Shutdown);
            let _ = node.child.wait();
        }
        self.device_net.shutdown();
        Ok(ClusterReport {
            device_payloads,
            kill: kill_report,
            final_status,
        })
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Reap any children still alive (e.g. an error path before the
        // orderly shutdown); killed processes must not outlive the mission.
        for node in &mut self.nodes {
            let _ = node.child.kill();
            let _ = node.child.wait();
        }
    }
}

fn expect_done(reply: CtrlReply) -> io::Result<()> {
    if reply == CtrlReply::Done {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected Done, got {reply:?}"),
        ))
    }
}
