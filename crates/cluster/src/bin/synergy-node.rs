//! One cluster node process; spawned by the `synergy-cluster` orchestrator.
//!
//! ```text
//! synergy-node --pid <1|2|3> --seed <u64> --data-dir <path> \
//!              --ctrl <host:port> [--tb-interval-ms <u64>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use synergy_cluster::{run_node, NodeOpts};

fn parse_args() -> Result<NodeOpts, String> {
    let mut pid = None;
    let mut seed = None;
    let mut data_dir = None;
    let mut ctrl_addr = None;
    let mut tb_interval_ms = 1700u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--pid" => pid = Some(value()?.parse::<u32>().map_err(|e| e.to_string())?),
            "--seed" => seed = Some(value()?.parse::<u64>().map_err(|e| e.to_string())?),
            "--data-dir" => data_dir = Some(PathBuf::from(value()?)),
            "--ctrl" => ctrl_addr = Some(value()?),
            "--tb-interval-ms" => {
                tb_interval_ms = value()?.parse::<u64>().map_err(|e| e.to_string())?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(NodeOpts {
        pid: pid.ok_or("--pid is required")?,
        seed: seed.ok_or("--seed is required")?,
        data_dir: data_dir.ok_or("--data-dir is required")?,
        ctrl_addr: ctrl_addr.ok_or("--ctrl is required")?,
        tb_interval_ms,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("synergy-node: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_node(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("synergy-node (pid {}): {e}", opts.pid);
            ExitCode::FAILURE
        }
    }
}
