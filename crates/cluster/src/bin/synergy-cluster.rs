//! The cluster orchestrator binary: runs a seeded three-process TCP
//! mission with one scheduled SIGKILL, restarts the victim from its
//! on-disk checkpoints, and checks the device-output stream against a
//! simulator run of the same seed and fault plan.
//!
//! ```text
//! synergy-cluster [--seed <u64>] [--steps <u32>] [--kill-epoch <u64>]
//!                 [--data-dir <path>]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use synergy::NodeId;
use synergy_cluster::{simulate_reference, Cluster, ClusterConfig, CrashEvent, CrashKind};

const TB_INTERVAL_SECS: f64 = 1.7;

struct Args {
    seed: u64,
    steps: u32,
    kill_epoch: Option<u64>,
    data_dir: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        seed: 11,
        steps: 8,
        kill_epoch: Some(3),
        data_dir: std::env::temp_dir().join(format!("synergy-cluster-{}", std::process::id())),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seed" => out.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => out.steps = value()?.parse().map_err(|e| format!("{e}"))?,
            "--kill-epoch" => {
                let v: u64 = value()?.parse().map_err(|e| format!("{e}"))?;
                out.kill_epoch = (v != 0).then_some(v);
            }
            "--data-dir" => out.data_dir = PathBuf::from(value()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

fn node_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = me.with_file_name("synergy-node");
    if sibling.exists() {
        Ok(sibling)
    } else {
        Err(format!("synergy-node not found next to {}", me.display()))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("synergy-cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node_bin = match node_bin() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("synergy-cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    let victim = NodeId::P2;
    println!(
        "mission: seed {}, {} produces, Δ = {TB_INTERVAL_SECS}s{}",
        args.seed,
        args.steps,
        args.kill_epoch
            .map(|k| format!(", SIGKILL {victim} in round {k}"))
            .unwrap_or_default()
    );
    let mut cfg = ClusterConfig::new(
        args.seed,
        args.steps,
        TB_INTERVAL_SECS,
        node_bin,
        args.data_dir.clone(),
    );
    cfg.crashes.extend(args.kill_epoch.map(|epoch| CrashEvent {
        victim,
        epoch,
        kind: CrashKind::MidRound,
    }));
    let report = match Cluster::launch(cfg).and_then(Cluster::run) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synergy-cluster: mission failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("device stream: {} messages", report.device_payloads.len());
    for kill in &report.kills {
        println!(
            "kill round {}: staged write torn = {}, victim recovered epoch {:?} \
             ({} torn write detected), global rollback to line {}",
            kill.epoch,
            kill.victim_began_writing,
            kill.reload_epoch,
            kill.reload_torn_writes,
            kill.line,
        );
    }

    let reference = simulate_reference(
        args.seed,
        args.steps,
        TB_INTERVAL_SECS,
        args.kill_epoch.map(|k| (victim, k)),
    );
    let mut ok = true;
    if report.device_payloads == reference.device_payloads {
        println!(
            "verified: device stream matches the simulator reference \
             ({} payloads{})",
            reference.device_payloads.len(),
            reference
                .crash_epsilon
                .map(|e| format!(", sim crash at grid {e:+.4}s"))
                .unwrap_or_default()
        );
    } else {
        eprintln!(
            "MISMATCH: cluster device stream differs from the simulator \
             ({} vs {} payloads)",
            report.device_payloads.len(),
            reference.device_payloads.len()
        );
        ok = false;
    }
    if !reference.verdicts_hold {
        eprintln!("MISMATCH: simulator verdicts failed");
        ok = false;
    }
    let _ = std::fs::remove_dir_all(&args.data_dir);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
