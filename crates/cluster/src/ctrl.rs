//! The orchestrator ⇄ node control plane.
//!
//! Each node process opens one TCP connection back to the orchestrator and
//! speaks a strict request/response protocol over it: the node sends a
//! [`CtrlReply::Hello`] on connect, then answers exactly one [`CtrlReply`]
//! per received [`CtrlMsg`]. Frames are length-prefixed [`synergy_codec`]
//! values, the same wire discipline as the data plane's envelope framing.
//!
//! Lockstep keeps the distributed mission deterministic: the orchestrator
//! never pipelines control commands, so a reply proves the node has fully
//! processed the command (each command round-trips through the node's FIFO
//! input channel before being answered).

use std::io::{self, Read, Write};
use std::net::TcpStream;

use synergy_codec::{from_bytes, to_bytes, Codec, CodecError, Reader};
use synergy_net::Endpoint;

/// Upper bound on one control frame; control values are tiny, so anything
/// bigger indicates a corrupt or misaligned stream.
pub const MAX_CTRL_FRAME: usize = 1024 * 1024;

/// Orchestrator → node commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Produce one application message on this node's process.
    Produce {
        /// Whether the message is external (acceptance-tested).
        external: bool,
    },
    /// Route data-plane traffic for `endpoint` to `addr`
    /// (`host:port`).
    SetRoute {
        /// The destination endpoint.
        endpoint: Endpoint,
        /// Socket address of the transport serving it.
        addr: String,
    },
    /// Begin one commanded stable-checkpoint round.
    BeginCkpt,
    /// End the round's blocking period and commit the stable write.
    CommitCkpt,
    /// Global rollback to the epoch line.
    Rollback {
        /// The epoch line (minimum committed epoch across the cluster).
        epoch: u64,
    },
    /// Report live status.
    Status,
    /// Stop the node process.
    Shutdown,
    /// Fault-campaign hook: fire `frames` raw data-plane envelopes of
    /// `payload_bytes` each at `to` as fast as the wire accepts them,
    /// counting rejections — how tests drive a stalled route into
    /// backpressure on purpose.
    Blast {
        /// The destination endpoint.
        to: Endpoint,
        /// Envelopes to send.
        frames: u64,
        /// Application payload size per envelope.
        payload_bytes: u64,
    },
    /// Unmasked-regime hook (Byzantine-lite): flip value bytes inside the
    /// node's latest committed stable checkpoint and re-encode it in place
    /// behind a valid CRC. Every integrity check between the flip and the
    /// next rollback passes; only a device-stream diff against the simulator
    /// oracle can see the lie.
    Corrupt,
}

/// Node → orchestrator replies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlReply {
    /// Sent once on connect, before any command.
    Hello {
        /// The node's process id (1 = `P1act`, 2 = `P1sdw`, 3 = `P2`).
        pid: u32,
        /// TCP port of the node's data-plane transport.
        data_port: u16,
        /// Newest stable epoch recovered from the node's on-disk store
        /// (`None` on first boot).
        epoch: Option<u64>,
        /// Torn writes detected while reloading the store — a leftover
        /// in-flight temp file from a write the previous incarnation never
        /// committed.
        torn_writes: u64,
        /// Committed records rejected by CRC verification while reloading
        /// (read-back bit-rot); the store fell back to the previous
        /// checkpoint for each.
        corrupt_records: u64,
    },
    /// Command processed; nothing to report.
    Done,
    /// Reply to [`CtrlMsg::BeginCkpt`].
    Began {
        /// Whether a stable write is now in flight (durably staged on
        /// disk, surviving a kill until commit or abort).
        writing: bool,
    },
    /// Reply to [`CtrlMsg::CommitCkpt`].
    Committed {
        /// Newest committed epoch after the round.
        epoch: Option<u64>,
    },
    /// Reply to [`CtrlMsg::Rollback`].
    RolledBack {
        /// Epoch of the restored checkpoint (`None`: nothing retained at
        /// or before the line; the node kept its current state).
        restored_epoch: Option<u64>,
        /// Saved unacknowledged messages re-sent during recovery.
        resent: u64,
    },
    /// Reply to [`CtrlMsg::Status`].
    Status(WireStatus),
    /// Reply to [`CtrlMsg::Blast`].
    Blasted {
        /// Envelopes the wire accepted.
        sent: u64,
        /// Envelopes dropped after the bounded backpressure-retry budget.
        backpressure: u64,
    },
    /// Reply to [`CtrlMsg::Corrupt`].
    Corrupted {
        /// Epoch of the checkpoint whose payload was flipped (`None`: no
        /// committed checkpoint, undecodable payload, or a backend that
        /// cannot rewrite committed history — the flip did not happen).
        epoch: Option<u64>,
    },
}

/// The node-status subset the orchestrator consumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireStatus {
    /// The MDCD dirty (checkpoint) bit.
    pub dirty: bool,
    /// Application messages delivered.
    pub delivered: u64,
    /// Acceptance tests executed.
    pub at_runs: u64,
    /// Newest committed stable epoch.
    pub stable_epoch: Option<u64>,
    /// Torn writes recorded by the node's store.
    pub torn_writes: u64,
    /// Messages awaiting acknowledgment.
    pub unacked: u64,
    /// Whether a shadow has been promoted.
    pub promoted: bool,
    /// Suppressed messages logged (shadow only).
    pub logged: u64,
    /// Envelopes still queued inside the node's chaos transport wrapper
    /// (zero when the chaos layer is drained or inert).
    pub net_queued: u64,
    /// Attempt-level drops injected by the chaos wire so far.
    pub chaos_drops: u64,
    /// Ack frames duplicated by the chaos wire so far.
    pub chaos_dups: u64,
    /// Frames the chaos link layer gave up on (attempt budget exhausted).
    pub chaos_lost: u64,
    /// Retry attempts against a transiently failing stable backend.
    pub stable_retries: u64,
    /// Committed records rejected by CRC verification on reload (bit-rot).
    pub corrupt_records: u64,
    /// Data-plane envelopes this node dropped because a route stayed
    /// backpressured past the bounded retry budget. Nonzero means a frame
    /// was lost on a live route — the campaign cannot converge.
    pub backpressure: u64,
    /// Committed checkpoint records still waiting in the archive upload
    /// queue (zero when the archive tier is off or drained).
    pub archive_pending: u64,
    /// Checkpoint records successfully uploaded to the archive tier.
    pub archive_uploads: u64,
    /// Failed archive upload attempts (each is retried with backoff).
    pub archive_failures: u64,
    /// Checkpoint records rehydrated from the archive tier at boot because
    /// the local disk tier was empty (a wiped node).
    pub rehydrated: u64,
}

synergy_codec::codec_struct!(WireStatus {
    dirty,
    delivered,
    at_runs,
    stable_epoch,
    torn_writes,
    unacked,
    promoted,
    logged,
    net_queued,
    chaos_drops,
    chaos_dups,
    chaos_lost,
    stable_retries,
    corrupt_records,
    backpressure,
    archive_pending,
    archive_uploads,
    archive_failures,
    rehydrated,
});

impl Codec for CtrlMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlMsg::Produce { external } => {
                0u32.encode(out);
                external.encode(out);
            }
            CtrlMsg::SetRoute { endpoint, addr } => {
                1u32.encode(out);
                endpoint.encode(out);
                addr.encode(out);
            }
            CtrlMsg::BeginCkpt => 2u32.encode(out),
            CtrlMsg::CommitCkpt => 3u32.encode(out),
            CtrlMsg::Rollback { epoch } => {
                4u32.encode(out);
                epoch.encode(out);
            }
            CtrlMsg::Status => 5u32.encode(out),
            CtrlMsg::Shutdown => 6u32.encode(out),
            CtrlMsg::Blast {
                to,
                frames,
                payload_bytes,
            } => {
                7u32.encode(out);
                to.encode(out);
                frames.encode(out);
                payload_bytes.encode(out);
            }
            CtrlMsg::Corrupt => 8u32.encode(out),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(CtrlMsg::Produce {
                external: bool::decode(r)?,
            }),
            1 => Ok(CtrlMsg::SetRoute {
                endpoint: Endpoint::decode(r)?,
                addr: String::decode(r)?,
            }),
            2 => Ok(CtrlMsg::BeginCkpt),
            3 => Ok(CtrlMsg::CommitCkpt),
            4 => Ok(CtrlMsg::Rollback {
                epoch: u64::decode(r)?,
            }),
            5 => Ok(CtrlMsg::Status),
            6 => Ok(CtrlMsg::Shutdown),
            7 => Ok(CtrlMsg::Blast {
                to: Endpoint::decode(r)?,
                frames: u64::decode(r)?,
                payload_bytes: u64::decode(r)?,
            }),
            8 => Ok(CtrlMsg::Corrupt),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

impl Codec for CtrlReply {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CtrlReply::Hello {
                pid,
                data_port,
                epoch,
                torn_writes,
                corrupt_records,
            } => {
                0u32.encode(out);
                pid.encode(out);
                data_port.encode(out);
                epoch.encode(out);
                torn_writes.encode(out);
                corrupt_records.encode(out);
            }
            CtrlReply::Done => 1u32.encode(out),
            CtrlReply::Began { writing } => {
                2u32.encode(out);
                writing.encode(out);
            }
            CtrlReply::Committed { epoch } => {
                3u32.encode(out);
                epoch.encode(out);
            }
            CtrlReply::RolledBack {
                restored_epoch,
                resent,
            } => {
                4u32.encode(out);
                restored_epoch.encode(out);
                resent.encode(out);
            }
            CtrlReply::Status(s) => {
                5u32.encode(out);
                s.encode(out);
            }
            CtrlReply::Blasted { sent, backpressure } => {
                6u32.encode(out);
                sent.encode(out);
                backpressure.encode(out);
            }
            CtrlReply::Corrupted { epoch } => {
                7u32.encode(out);
                epoch.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(CtrlReply::Hello {
                pid: u32::decode(r)?,
                data_port: u16::decode(r)?,
                epoch: Option::<u64>::decode(r)?,
                torn_writes: u64::decode(r)?,
                corrupt_records: u64::decode(r)?,
            }),
            1 => Ok(CtrlReply::Done),
            2 => Ok(CtrlReply::Began {
                writing: bool::decode(r)?,
            }),
            3 => Ok(CtrlReply::Committed {
                epoch: Option::<u64>::decode(r)?,
            }),
            4 => Ok(CtrlReply::RolledBack {
                restored_epoch: Option::<u64>::decode(r)?,
                resent: u64::decode(r)?,
            }),
            5 => Ok(CtrlReply::Status(WireStatus::decode(r)?)),
            6 => Ok(CtrlReply::Blasted {
                sent: u64::decode(r)?,
                backpressure: u64::decode(r)?,
            }),
            7 => Ok(CtrlReply::Corrupted {
                epoch: Option::<u64>::decode(r)?,
            }),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

/// Writes one length-prefixed control frame.
///
/// # Errors
///
/// Propagates socket write errors.
pub fn send_ctrl<T: Codec>(stream: &mut TcpStream, value: &T) -> io::Result<()> {
    let payload = to_bytes(value).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "control frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame)
}

/// Reads one length-prefixed control frame.
///
/// # Errors
///
/// Socket errors, oversized frames, and codec failures (reported as
/// [`io::ErrorKind::InvalidData`]).
pub fn recv_ctrl<T: Codec>(stream: &mut TcpStream) -> io::Result<T> {
    let mut len_bytes = [0u8; 4];
    stream.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_CTRL_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("control frame of {len} bytes exceeds {MAX_CTRL_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    from_bytes(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::ProcessId;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        assert_eq!(from_bytes::<T>(&bytes).unwrap(), value);
    }

    #[test]
    fn ctrl_messages_roundtrip() {
        roundtrip(CtrlMsg::Produce { external: true });
        roundtrip(CtrlMsg::SetRoute {
            endpoint: Endpoint::Process(ProcessId(3)),
            addr: "127.0.0.1:4555".into(),
        });
        roundtrip(CtrlMsg::BeginCkpt);
        roundtrip(CtrlMsg::CommitCkpt);
        roundtrip(CtrlMsg::Rollback { epoch: 7 });
        roundtrip(CtrlMsg::Status);
        roundtrip(CtrlMsg::Shutdown);
        roundtrip(CtrlMsg::Blast {
            to: Endpoint::Process(ProcessId(2)),
            frames: 4000,
            payload_bytes: 16384,
        });
        roundtrip(CtrlMsg::Corrupt);
    }

    #[test]
    fn ctrl_replies_roundtrip() {
        roundtrip(CtrlReply::Hello {
            pid: 3,
            data_port: 61234,
            epoch: Some(4),
            torn_writes: 1,
            corrupt_records: 1,
        });
        roundtrip(CtrlReply::Done);
        roundtrip(CtrlReply::Began { writing: true });
        roundtrip(CtrlReply::Committed { epoch: None });
        roundtrip(CtrlReply::RolledBack {
            restored_epoch: Some(2),
            resent: 0,
        });
        roundtrip(CtrlReply::Status(WireStatus {
            dirty: false,
            delivered: 5,
            at_runs: 5,
            stable_epoch: Some(3),
            torn_writes: 0,
            unacked: 0,
            promoted: false,
            logged: 2,
            net_queued: 0,
            chaos_drops: 7,
            chaos_dups: 1,
            chaos_lost: 0,
            stable_retries: 2,
            corrupt_records: 0,
            backpressure: 0,
            archive_pending: 4,
            archive_uploads: 9,
            archive_failures: 1,
            rehydrated: 0,
        }));
        roundtrip(CtrlReply::Blasted {
            sent: 3990,
            backpressure: 10,
        });
        roundtrip(CtrlReply::Corrupted { epoch: Some(6) });
        roundtrip(CtrlReply::Corrupted { epoch: None });
    }

    #[test]
    fn frames_cross_a_real_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let msg: CtrlMsg = recv_ctrl(&mut conn).unwrap();
            assert_eq!(msg, CtrlMsg::Rollback { epoch: 2 });
            send_ctrl(
                &mut conn,
                &CtrlReply::RolledBack {
                    restored_epoch: Some(2),
                    resent: 0,
                },
            )
            .unwrap();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        send_ctrl(&mut client, &CtrlMsg::Rollback { epoch: 2 }).unwrap();
        let reply: CtrlReply = recv_ctrl(&mut client).unwrap();
        assert_eq!(
            reply,
            CtrlReply::RolledBack {
                restored_epoch: Some(2),
                resent: 0
            }
        );
        join.join().unwrap();
    }

    #[test]
    fn oversized_control_frames_are_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let err = recv_ctrl::<CtrlMsg>(&mut conn).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(&(u32::MAX).to_le_bytes())
            .and_then(|_| client.write_all(&[0u8; 16]))
            .unwrap();
        join.join().unwrap();
    }
}
