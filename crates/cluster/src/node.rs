//! One cluster node process: a [`NodeRunner`] over the TCP data plane and
//! a durable on-disk stable store, driven by the orchestrator's control
//! connection.
//!
//! Boot sequence:
//!
//! 1. Open (or recover) the [`DiskStableStore`] in the node's data
//!    directory. A leftover in-flight temp file from a killed incarnation
//!    is detected here as a torn write; committed records are CRC-verified,
//!    and any record rejected by its CRC (bit-rot) is skipped in favour of
//!    the previous checkpoint. The store is then wrapped in a
//!    [`FaultyStable`] applying the campaign's disk-fault plan.
//! 2. Bind the [`LiveWire`] (the sharded reactor by default, the legacy
//!    thread-per-route transport with `--transport threads`) on an
//!    ephemeral port, wrap it in a [`ClusterWire`] (bounded backpressure
//!    retry) and a [`FaultyTransport`] applying the campaign's link-fault
//!    plan, and start the node event loop with a *commanded* [`TbRuntime`] —
//!    checkpoint rounds are driven by the orchestrator, not by wall-clock
//!    timers, which keeps a distributed mission deterministic.
//! 3. Connect back to the orchestrator, announce
//!    [`Hello`](CtrlReply::Hello) (data port + recovered epoch + torn-write
//!    and corrupt-record counts), then serve control commands in lockstep.
//!
//! Both fault plans default to inert, in which case the wrappers are
//! zero-overhead passthroughs; the orchestrator ships non-trivial plans as
//! hex-encoded codec values on the command line (`--chaos-link`,
//! `--chaos-disk`).
//!
//! A restarted node does **not** restore itself: per the paper's global
//! rollback, the *orchestrator* computes the epoch line across the cluster
//! and commands [`Rollback`](CtrlMsg::Rollback) on every node, the
//! restarted one included.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use synergy_archive::{
    ArchiveFaultPlan, ArchiveHandle, DeltaStable, DirObjectStore, FaultyObjectStore,
    MemObjectStore, ObjectStore, TieredStore,
};
use synergy_clocks::SyncParams;
use synergy_codec::Codec;
use synergy_des::SimDuration;
use synergy_middleware::{spawn_net_pump, NodeCmd, NodeInput, NodeStatus, SupEvent, TbRuntime};
use synergy_net::{
    Endpoint, Envelope, FaultyTransport, LinkFaultPlan, LiveWire, MessageBody, MsgId, MsgSeqNo,
    ProcessId, SendError, Transport, WireKind, WirePolicy,
};
use synergy_storage::{
    Checkpoint, DiskFaultPlan, DiskStableStore, FaultyStable, Stable, StableStats, StableWriteError,
};
use synergy_tb::{TbConfig, TbVariant};

use crate::ctrl::{recv_ctrl, send_ctrl, CtrlMsg, CtrlReply, WireStatus};

/// Boot parameters of one node process (parsed from `synergy-node` argv).
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// Process id: 1 = `P1act`, 2 = `P1sdw`, 3 = `P2`.
    pub pid: u32,
    /// Mission seed (must match the orchestrator's).
    pub seed: u64,
    /// Directory holding this node's stable storage.
    pub data_dir: PathBuf,
    /// `host:port` of the orchestrator's control listener.
    pub ctrl_addr: String,
    /// TB checkpoint interval in milliseconds (grid spacing for epoch
    /// bookkeeping; rounds themselves are commanded).
    pub tb_interval_ms: u64,
    /// Link-fault plan applied to this node's outbound data plane.
    pub link_plan: LinkFaultPlan,
    /// Stable-storage fault plan applied to this node's disk store.
    pub disk_plan: DiskFaultPlan,
    /// Which live-wire transport to run (`--transport reactor|threads`).
    pub transport: WireKind,
    /// Override for the reactor's per-route ring capacity
    /// (`--wire-queue-bytes`); `None` keeps the policy default.
    pub wire_queue_bytes: Option<usize>,
    /// Incremental-checkpoint cadence: full image every `delta_k` stable
    /// commits, CRC-chained deltas between (`--delta-k`). Zero keeps the
    /// legacy full-image-every-commit store.
    pub delta_k: u32,
    /// Directory backing this node's archive tier (`--archive-dir`). Only
    /// meaningful with `--delta-k`; when absent the archive tier is an
    /// in-process object store that dies with the incarnation.
    pub archive_dir: Option<PathBuf>,
    /// Fault plan applied to the archive tier (`--chaos-archive`).
    pub archive_plan: ArchiveFaultPlan,
}

/// Encodes a codec value as lowercase hex for command-line transport.
pub fn plan_to_hex<T: Codec>(value: &T) -> String {
    let bytes = synergy_codec::to_bytes(value).expect("fault plans always encode");
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes a hex-encoded codec value shipped on the command line.
///
/// # Errors
///
/// Malformed hex or a codec decode failure.
pub fn plan_from_hex<T: Codec>(hex: &str) -> Result<T, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd-length hex plan".into());
    }
    let bytes: Vec<u8> = (0..hex.len() / 2)
        .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad hex plan: {e}"))?;
    synergy_codec::from_bytes(&bytes).map_err(|e| format!("bad plan encoding: {e}"))
}

impl NodeOpts {
    /// Parses node options from `argv` (without the program name); shared
    /// by `synergy-node` and the chaos crate's node wrapper binary.
    ///
    /// # Errors
    ///
    /// Unknown flags, missing values, or malformed plan encodings.
    pub fn from_args<I: Iterator<Item = String>>(mut args: I) -> Result<Self, String> {
        let mut pid = None;
        let mut seed = None;
        let mut data_dir = None;
        let mut ctrl_addr = None;
        let mut tb_interval_ms = 1700u64;
        let mut link_plan = LinkFaultPlan::default();
        let mut disk_plan = DiskFaultPlan::default();
        let mut transport = WireKind::default();
        let mut wire_queue_bytes = None;
        let mut delta_k = 0u32;
        let mut archive_dir = None;
        let mut archive_plan = ArchiveFaultPlan::default();
        while let Some(flag) = args.next() {
            let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
            match flag.as_str() {
                "--pid" => pid = Some(value()?.parse::<u32>().map_err(|e| e.to_string())?),
                "--seed" => seed = Some(value()?.parse::<u64>().map_err(|e| e.to_string())?),
                "--data-dir" => data_dir = Some(PathBuf::from(value()?)),
                "--ctrl" => ctrl_addr = Some(value()?),
                "--tb-interval-ms" => {
                    tb_interval_ms = value()?.parse::<u64>().map_err(|e| e.to_string())?;
                }
                "--chaos-link" => link_plan = plan_from_hex(&value()?)?,
                "--chaos-disk" => disk_plan = plan_from_hex(&value()?)?,
                "--chaos-archive" => archive_plan = plan_from_hex(&value()?)?,
                "--delta-k" => delta_k = value()?.parse::<u32>().map_err(|e| e.to_string())?,
                "--archive-dir" => archive_dir = Some(PathBuf::from(value()?)),
                "--transport" => transport = value()?.parse()?,
                "--wire-queue-bytes" => {
                    wire_queue_bytes = Some(value()?.parse::<usize>().map_err(|e| e.to_string())?);
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(NodeOpts {
            pid: pid.ok_or("--pid is required")?,
            seed: seed.ok_or("--seed is required")?,
            data_dir: data_dir.ok_or("--data-dir is required")?,
            ctrl_addr: ctrl_addr.ok_or("--ctrl is required")?,
            tb_interval_ms,
            link_plan,
            disk_plan,
            transport,
            wire_queue_bytes,
            delta_k,
            archive_dir,
            archive_plan,
        })
    }
}

/// How many committed records the delta-mode disk tier retains. Must cover
/// `retain + k - 1` chain records so no retained delta ever loses its base
/// full image, plus the rollback span the orchestrator may command.
const DELTA_DISK_RETAIN: usize = 64;

/// The node's stable store: either the legacy full-image disk store or the
/// delta-chain layer over the tiered (disk + archive) store. An enum rather
/// than a trait object because [`TbRuntime`] owns the store by value.
#[derive(Debug)]
pub enum NodeStore {
    /// Full-image checkpoints straight to the local disk store.
    Legacy(DiskStableStore),
    /// CRC-chained delta checkpoints over the disk + archive tiers.
    Delta(Box<DeltaStable<TieredStore>>),
}

impl Stable for NodeStore {
    fn begin_write(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        match self {
            NodeStore::Legacy(s) => s.begin_write(checkpoint),
            NodeStore::Delta(s) => s.begin_write(checkpoint),
        }
    }

    fn replace_in_progress(&mut self, checkpoint: Checkpoint) -> Result<(), StableWriteError> {
        match self {
            NodeStore::Legacy(s) => s.replace_in_progress(checkpoint),
            NodeStore::Delta(s) => s.replace_in_progress(checkpoint),
        }
    }

    fn commit_write(&mut self) -> Result<(), StableWriteError> {
        match self {
            NodeStore::Legacy(s) => s.commit_write(),
            NodeStore::Delta(s) => s.commit_write(),
        }
    }

    fn abort_write(&mut self) -> bool {
        match self {
            NodeStore::Legacy(s) => s.abort_write(),
            NodeStore::Delta(s) => s.abort_write(),
        }
    }

    fn crash(&mut self) {
        match self {
            NodeStore::Legacy(s) => s.crash(),
            NodeStore::Delta(s) => s.crash(),
        }
    }

    fn is_writing(&self) -> bool {
        match self {
            NodeStore::Legacy(s) => s.is_writing(),
            NodeStore::Delta(s) => s.is_writing(),
        }
    }

    fn latest_shared(&self) -> Option<Checkpoint> {
        match self {
            NodeStore::Legacy(s) => s.latest_shared(),
            NodeStore::Delta(s) => s.latest_shared(),
        }
    }

    fn latest_at_or_before_shared(&self, seq: u64) -> Option<Checkpoint> {
        match self {
            NodeStore::Legacy(s) => s.latest_at_or_before_shared(seq),
            NodeStore::Delta(s) => s.latest_at_or_before_shared(seq),
        }
    }

    fn replace_latest(&mut self, checkpoint: Checkpoint) -> bool {
        match self {
            NodeStore::Legacy(s) => s.replace_latest(checkpoint),
            // Delta chains CRC-link records; rewriting committed history is
            // not representable, so injection reports unsupported here.
            NodeStore::Delta(s) => s.replace_latest(checkpoint),
        }
    }

    fn stats(&self) -> StableStats {
        match self {
            NodeStore::Legacy(s) => s.stats(),
            NodeStore::Delta(s) => s.stats(),
        }
    }
}

/// Builds the archive-tier object store for a delta-mode node, applying the
/// fault plan when it is not inert.
fn build_archive(opts: &NodeOpts) -> io::Result<Box<dyn ObjectStore>> {
    Ok(match &opts.archive_dir {
        Some(dir) => {
            let inner = DirObjectStore::open(dir)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if opts.archive_plan.is_inert() {
                Box::new(inner)
            } else {
                Box::new(FaultyObjectStore::new(inner, opts.archive_plan.clone()))
            }
        }
        None => {
            let inner = MemObjectStore::new();
            if opts.archive_plan.is_inert() {
                Box::new(inner)
            } else {
                Box::new(FaultyObjectStore::new(inner, opts.archive_plan.clone()))
            }
        }
    })
}

/// The node's live wire with the cluster's backpressure discipline: a
/// rejected send is retried with a bounded budget (the reactor's ring
/// usually drains within microseconds), and only a route that stays
/// saturated past the whole budget counts as *stalled* — surfaced through
/// [`WireStatus::backpressure`], which the orchestrator treats as fatal,
/// because a dropped data-plane frame breaks per-link FIFO and the
/// campaign can no longer converge.
pub struct ClusterWire {
    wire: LiveWire,
    /// Envelopes dropped after the retry budget — lost on a live route.
    stalled: AtomicU64,
    retry_budget: Duration,
}

impl ClusterWire {
    /// Default retry budget: generous against transient ring pressure,
    /// bounded so a truly wedged peer fails the mission instead of
    /// hanging it.
    pub const DEFAULT_RETRY_BUDGET: Duration = Duration::from_secs(2);

    /// Wraps a live wire with the default retry budget.
    pub fn new(wire: LiveWire) -> ClusterWire {
        ClusterWire::with_budget(wire, ClusterWire::DEFAULT_RETRY_BUDGET)
    }

    /// Wraps a live wire with an explicit retry budget.
    pub fn with_budget(wire: LiveWire, retry_budget: Duration) -> ClusterWire {
        ClusterWire {
            wire,
            stalled: AtomicU64::new(0),
            retry_budget,
        }
    }

    /// The wrapped transport.
    pub fn wire(&self) -> &LiveWire {
        &self.wire
    }

    /// Envelopes dropped because a route stayed backpressured past the
    /// retry budget.
    pub fn stalled(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }

    /// Records one stalled-route drop (the blast hook counts its own
    /// unretried rejections here so status sweeps see them).
    pub fn note_stalled(&self) {
        self.stalled.fetch_add(1, Ordering::Relaxed);
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.wire.local_addr()
    }

    /// Registers an endpoint and returns its delivery channel.
    pub fn register(&self, endpoint: Endpoint) -> Receiver<Envelope> {
        self.wire.register(endpoint)
    }

    /// Points `endpoint` at `addr` in the outbound routing table.
    pub fn set_route(&self, endpoint: Endpoint, addr: SocketAddr) {
        self.wire.set_route(endpoint, addr)
    }

    /// Stops the wrapped transport.
    pub fn shutdown(&self) {
        self.wire.shutdown()
    }
}

impl std::fmt::Debug for ClusterWire {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterWire")
            .field("kind", &self.wire.kind())
            .field("stalled", &self.stalled())
            .finish_non_exhaustive()
    }
}

impl Transport for ClusterWire {
    fn send(&self, envelope: Envelope) {
        match self.wire.try_send(&envelope) {
            Err(SendError::Backpressure { .. }) => {}
            // Delivered, or dropped for a reason the wire already
            // accounts for (no route, dead route, shutdown).
            _ => return,
        }
        let deadline = Instant::now() + self.retry_budget;
        loop {
            std::thread::sleep(Duration::from_millis(1));
            match self.wire.try_send(&envelope) {
                Err(SendError::Backpressure { .. }) => {
                    if Instant::now() >= deadline {
                        self.note_stalled();
                        return;
                    }
                }
                _ => return,
            }
        }
    }
}

fn tb_config(interval_ms: u64) -> TbConfig {
    TbConfig::new(
        TbVariant::Adapted,
        SimDuration::from_millis(interval_ms),
        SyncParams::new(SimDuration::from_micros(500), 0.0),
        SimDuration::from_micros(50),
        SimDuration::from_millis(2),
    )
}

fn send_cmd(input_tx: &Sender<NodeInput>, cmd: NodeCmd) -> io::Result<()> {
    input_tx
        .send(NodeInput::Cmd(cmd))
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))
}

/// Round-trips a `Status` through the node's FIFO input channel; doubles as
/// a barrier proving every earlier input has been processed.
fn status_barrier(input_tx: &Sender<NodeInput>) -> io::Result<NodeStatus> {
    let (tx, rx) = channel();
    send_cmd(input_tx, NodeCmd::Status(tx))?;
    rx.recv()
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))
}

/// Runs one node process until the orchestrator commands shutdown or the
/// control connection drops.
///
/// # Errors
///
/// Storage, socket, or control-protocol failures.
pub fn run_node(opts: &NodeOpts) -> io::Result<()> {
    let (store, archive, recovered_epoch, recovered_torn, recovered_corrupt) = if opts.delta_k > 0 {
        let tiered = TieredStore::open(&opts.data_dir, DELTA_DISK_RETAIN, build_archive(opts)?)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let handle = tiered.handle();
        let reload_stats = tiered.stats();
        let delta = DeltaStable::open_with_retention(tiered, opts.delta_k, DELTA_DISK_RETAIN);
        let recovered_epoch = delta.latest_seq();
        // A chain orphan is bit-rot observed one layer up: the disk frame
        // verified but its chain link did not, so the record was dropped.
        let recovered_corrupt = reload_stats.corrupt_records + delta.delta_stats().chain_orphans;
        (
            NodeStore::Delta(Box::new(delta)),
            Some(handle),
            recovered_epoch,
            reload_stats.torn_writes,
            recovered_corrupt,
        )
    } else {
        let store = DiskStableStore::open(&opts.data_dir)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let recovered_epoch = store.latest_seq();
        let reload_stats = store.stats();
        // Bit-rot is only ever observed at reload time, so the count is
        // fixed for the lifetime of this incarnation.
        (
            NodeStore::Legacy(store),
            None,
            recovered_epoch,
            reload_stats.torn_writes,
            reload_stats.corrupt_records,
        )
    };
    let store = FaultyStable::new(store, opts.disk_plan.clone());

    let mut policy = WirePolicy::default();
    if let Some(bytes) = opts.wire_queue_bytes {
        policy.queue_bytes = bytes;
    }
    let wire = LiveWire::bind_with(opts.transport, "127.0.0.1:0", policy)?;
    let raw_net = Arc::new(ClusterWire::new(wire));
    let data_port = raw_net.local_addr().port();
    let pid = ProcessId(opts.pid);
    let net_rx = raw_net.register(Endpoint::Process(pid));
    let net = Arc::new(FaultyTransport::new(
        Arc::clone(&raw_net),
        opts.link_plan.clone(),
    ));
    let (input_tx, input_rx) = channel::<NodeInput>();
    spawn_net_pump(pid, net_rx, input_tx.clone());

    // Supervisor events (software recovery) are orchestrator concerns the
    // cluster scenarios do not exercise; keep the receiver alive so node
    // sends stay harmless no-ops.
    let (sup_tx, _sup_rx) = channel::<SupEvent>();
    let tb = TbRuntime::commanded(tb_config(opts.tb_interval_ms), store);
    let runner = synergy_middleware::NodeRunner::new(
        pid,
        opts.seed,
        Arc::clone(&net),
        input_rx,
        sup_tx,
        Some(tb),
    );
    let runner_join = std::thread::Builder::new()
        .name(format!("synergy-cluster-node-{pid}"))
        .spawn(move || runner.run())
        .expect("spawn node loop");

    let mut ctrl = TcpStream::connect(&opts.ctrl_addr)?;
    ctrl.set_nodelay(true)?;
    send_ctrl(
        &mut ctrl,
        &CtrlReply::Hello {
            pid: opts.pid,
            data_port,
            epoch: recovered_epoch,
            torn_writes: recovered_torn,
            corrupt_records: recovered_corrupt,
        },
    )?;

    // A recv error means the orchestrator is gone: stop serving (the
    // process exits; durable state stays on disk for the next incarnation).
    while let Ok(msg) = recv_ctrl::<CtrlMsg>(&mut ctrl) {
        let reply = match msg {
            CtrlMsg::Produce { external } => {
                send_cmd(&input_tx, NodeCmd::Produce { external })?;
                // Barrier: the produce (and its sends) has been fully
                // processed before the orchestrator sees the reply.
                status_barrier(&input_tx)?;
                CtrlReply::Done
            }
            CtrlMsg::SetRoute { endpoint, addr } => {
                let addr = addr.parse().map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad route addr: {e}"))
                })?;
                raw_net.set_route(endpoint, addr);
                CtrlReply::Done
            }
            CtrlMsg::BeginCkpt => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::BeginCkpt(tx))?;
                let writing = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::Began { writing }
            }
            CtrlMsg::CommitCkpt => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::CommitCkpt(tx))?;
                let epoch = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::Committed { epoch }
            }
            CtrlMsg::Rollback { epoch } => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::Rollback { epoch, reply: tx })?;
                let outcome = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::RolledBack {
                    restored_epoch: outcome.restored_epoch,
                    resent: outcome.resent as u64,
                }
            }
            CtrlMsg::Status => {
                let s = status_barrier(&input_tx)?;
                let totals = net.totals();
                let archive_stats = archive
                    .as_ref()
                    .map(ArchiveHandle::stats)
                    .unwrap_or_default();
                CtrlReply::Status(WireStatus {
                    dirty: s.dirty,
                    delivered: s.delivered,
                    at_runs: s.at_runs,
                    stable_epoch: s.stable_epoch,
                    torn_writes: s.torn_writes,
                    unacked: s.unacked as u64,
                    promoted: s.promoted,
                    logged: s.logged as u64,
                    net_queued: net.pending(),
                    chaos_drops: totals.drops,
                    chaos_dups: totals.dups,
                    chaos_lost: totals.lost,
                    stable_retries: s.stable_retries,
                    corrupt_records: recovered_corrupt,
                    backpressure: raw_net.stalled(),
                    archive_pending: archive.as_ref().map_or(0, |h| h.pending() as u64),
                    archive_uploads: archive_stats.uploads,
                    archive_failures: archive_stats.upload_failures,
                    rehydrated: archive_stats.rehydrated,
                })
            }
            CtrlMsg::Blast {
                to,
                frames,
                payload_bytes,
            } => {
                // Deliberate overdrive: raw try_send with no retry, so a
                // saturated ring surfaces immediately as a typed rejection.
                // Sequence numbers start far above anything the protocol
                // engine produces to keep the two streams disjoint.
                let mut sent = 0u64;
                let mut rejected = 0u64;
                for i in 0..frames {
                    let env = Envelope::new(
                        MsgId {
                            from: pid,
                            seq: MsgSeqNo(1 << 40 | i),
                        },
                        to,
                        MessageBody::External {
                            payload: vec![0u8; payload_bytes as usize],
                        },
                    );
                    match raw_net.wire().try_send(&env) {
                        Ok(()) => sent += 1,
                        Err(SendError::Backpressure { .. }) => {
                            rejected += 1;
                            raw_net.note_stalled();
                        }
                        Err(_) => rejected += 1,
                    }
                }
                CtrlReply::Blasted {
                    sent,
                    backpressure: rejected,
                }
            }
            CtrlMsg::Corrupt => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::Corrupt(tx))?;
                let epoch = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::Corrupted { epoch }
            }
            CtrlMsg::Shutdown => {
                send_cmd(&input_tx, NodeCmd::Shutdown)?;
                send_ctrl(&mut ctrl, &CtrlReply::Done)?;
                break;
            }
        };
        send_ctrl(&mut ctrl, &reply)?;
    }
    drop(input_tx);
    let _ = runner_join.join();
    net.shutdown();
    raw_net.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::{LinkFaults, PartitionWindow};
    use synergy_storage::{DiskFault, DiskOp};

    #[test]
    fn plans_roundtrip_through_hex_argv_encoding() {
        let link = LinkFaultPlan {
            faults: LinkFaults::new(0.125, 0.25),
            delay_ms: (1, 9),
            partitions: vec![PartitionWindow {
                start_ms: 200,
                end_ms: 450,
            }],
            max_attempts: 12,
            retry_ms: (2, 40),
            seed: 77,
        };
        let disk = DiskFaultPlan {
            faults: vec![DiskFault {
                seq: 3,
                op: DiskOp::Commit,
                times: 1,
            }],
        };
        let link_back: LinkFaultPlan = plan_from_hex(&plan_to_hex(&link)).unwrap();
        let disk_back: DiskFaultPlan = plan_from_hex(&plan_to_hex(&disk)).unwrap();
        assert_eq!(link_back, link);
        assert_eq!(disk_back, disk);
    }

    #[test]
    fn node_opts_parse_chaos_flags() {
        let link = LinkFaultPlan {
            faults: LinkFaults::new(0.1, 0.0),
            ..LinkFaultPlan::inert(9)
        };
        let argv = [
            "--pid",
            "2",
            "--seed",
            "41",
            "--data-dir",
            "/tmp/x",
            "--ctrl",
            "127.0.0.1:9",
            "--chaos-link",
            &plan_to_hex(&link),
        ];
        let opts = NodeOpts::from_args(argv.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.pid, 2);
        assert_eq!(opts.link_plan, link);
        assert!(opts.disk_plan.is_inert());
        assert!(NodeOpts::from_args(["--pid".to_string()].into_iter()).is_err());
        assert!(
            NodeOpts::from_args(["--chaos-link".to_string(), "zz".to_string()].into_iter())
                .is_err()
        );
    }

    #[test]
    fn node_opts_parse_archive_flags() {
        let plan = ArchiveFaultPlan {
            seed: 11,
            put_fail: 0.25,
            latency_ms: 3,
            ..ArchiveFaultPlan::inert()
        };
        let argv = [
            "--pid",
            "1",
            "--seed",
            "7",
            "--data-dir",
            "/tmp/x",
            "--ctrl",
            "127.0.0.1:9",
            "--delta-k",
            "4",
            "--archive-dir",
            "/tmp/x-archive",
            "--chaos-archive",
            &plan_to_hex(&plan),
        ];
        let opts = NodeOpts::from_args(argv.iter().map(|s| s.to_string())).unwrap();
        assert_eq!(opts.delta_k, 4);
        assert_eq!(
            opts.archive_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x-archive"))
        );
        assert_eq!(opts.archive_plan, plan);

        // Legacy invocations keep the legacy store.
        let legacy = NodeOpts::from_args(
            [
                "--pid",
                "1",
                "--seed",
                "7",
                "--data-dir",
                "/tmp/x",
                "--ctrl",
                "127.0.0.1:9",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(legacy.delta_k, 0);
        assert!(legacy.archive_dir.is_none());
        assert!(legacy.archive_plan.is_inert());
    }
}
