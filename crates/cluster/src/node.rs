//! One cluster node process: a [`NodeRunner`] over the TCP data plane and
//! a durable on-disk stable store, driven by the orchestrator's control
//! connection.
//!
//! Boot sequence:
//!
//! 1. Open (or recover) the [`DiskStableStore`] in the node's data
//!    directory. A leftover in-flight temp file from a killed incarnation
//!    is detected here as a torn write; committed records are CRC-verified.
//! 2. Bind the [`TcpTransport`] on an ephemeral port and start the node
//!    event loop with a *commanded* [`TbRuntime`] — checkpoint rounds are
//!    driven by the orchestrator, not by wall-clock timers, which keeps a
//!    distributed mission deterministic.
//! 3. Connect back to the orchestrator, announce
//!    [`Hello`](CtrlReply::Hello) (data port + recovered epoch + torn-write
//!    count), then serve control commands in lockstep.
//!
//! A restarted node does **not** restore itself: per the paper's global
//! rollback, the *orchestrator* computes the epoch line across the cluster
//! and commands [`Rollback`](CtrlMsg::Rollback) on every node, the
//! restarted one included.

use std::io;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;

use synergy_clocks::SyncParams;
use synergy_des::SimDuration;
use synergy_middleware::{spawn_net_pump, NodeCmd, NodeInput, NodeStatus, SupEvent, TbRuntime};
use synergy_net::tcp::TcpTransport;
use synergy_net::{Endpoint, ProcessId};
use synergy_storage::{DiskStableStore, Stable};
use synergy_tb::{TbConfig, TbVariant};

use crate::ctrl::{recv_ctrl, send_ctrl, CtrlMsg, CtrlReply, WireStatus};

/// Boot parameters of one node process (parsed from `synergy-node` argv).
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// Process id: 1 = `P1act`, 2 = `P1sdw`, 3 = `P2`.
    pub pid: u32,
    /// Mission seed (must match the orchestrator's).
    pub seed: u64,
    /// Directory holding this node's stable storage.
    pub data_dir: PathBuf,
    /// `host:port` of the orchestrator's control listener.
    pub ctrl_addr: String,
    /// TB checkpoint interval in milliseconds (grid spacing for epoch
    /// bookkeeping; rounds themselves are commanded).
    pub tb_interval_ms: u64,
}

fn tb_config(interval_ms: u64) -> TbConfig {
    TbConfig::new(
        TbVariant::Adapted,
        SimDuration::from_millis(interval_ms),
        SyncParams::new(SimDuration::from_micros(500), 0.0),
        SimDuration::from_micros(50),
        SimDuration::from_millis(2),
    )
}

fn send_cmd(input_tx: &Sender<NodeInput>, cmd: NodeCmd) -> io::Result<()> {
    input_tx
        .send(NodeInput::Cmd(cmd))
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))
}

/// Round-trips a `Status` through the node's FIFO input channel; doubles as
/// a barrier proving every earlier input has been processed.
fn status_barrier(input_tx: &Sender<NodeInput>) -> io::Result<NodeStatus> {
    let (tx, rx) = channel();
    send_cmd(input_tx, NodeCmd::Status(tx))?;
    rx.recv()
        .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))
}

/// Runs one node process until the orchestrator commands shutdown or the
/// control connection drops.
///
/// # Errors
///
/// Storage, socket, or control-protocol failures.
pub fn run_node(opts: &NodeOpts) -> io::Result<()> {
    let store = DiskStableStore::open(&opts.data_dir)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let recovered_epoch = store.latest_seq();
    let recovered_torn = store.stats().torn_writes;

    let net = Arc::new(TcpTransport::bind("127.0.0.1:0")?);
    let data_port = net.local_addr().port();
    let pid = ProcessId(opts.pid);
    let net_rx = net.register(Endpoint::Process(pid));
    let (input_tx, input_rx) = channel::<NodeInput>();
    spawn_net_pump(pid, net_rx, input_tx.clone());

    // Supervisor events (software recovery) are orchestrator concerns the
    // cluster scenarios do not exercise; keep the receiver alive so node
    // sends stay harmless no-ops.
    let (sup_tx, _sup_rx) = channel::<SupEvent>();
    let tb = TbRuntime::commanded(tb_config(opts.tb_interval_ms), store);
    let runner = synergy_middleware::NodeRunner::new(
        pid,
        opts.seed,
        Arc::clone(&net),
        input_rx,
        sup_tx,
        Some(tb),
    );
    let runner_join = std::thread::Builder::new()
        .name(format!("synergy-cluster-node-{pid}"))
        .spawn(move || runner.run())
        .expect("spawn node loop");

    let mut ctrl = TcpStream::connect(&opts.ctrl_addr)?;
    ctrl.set_nodelay(true)?;
    send_ctrl(
        &mut ctrl,
        &CtrlReply::Hello {
            pid: opts.pid,
            data_port,
            epoch: recovered_epoch,
            torn_writes: recovered_torn,
        },
    )?;

    // A recv error means the orchestrator is gone: stop serving (the
    // process exits; durable state stays on disk for the next incarnation).
    while let Ok(msg) = recv_ctrl::<CtrlMsg>(&mut ctrl) {
        let reply = match msg {
            CtrlMsg::Produce { external } => {
                send_cmd(&input_tx, NodeCmd::Produce { external })?;
                // Barrier: the produce (and its sends) has been fully
                // processed before the orchestrator sees the reply.
                status_barrier(&input_tx)?;
                CtrlReply::Done
            }
            CtrlMsg::SetRoute { endpoint, addr } => {
                let addr = addr.parse().map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("bad route addr: {e}"))
                })?;
                net.set_route(endpoint, addr);
                CtrlReply::Done
            }
            CtrlMsg::BeginCkpt => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::BeginCkpt(tx))?;
                let writing = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::Began { writing }
            }
            CtrlMsg::CommitCkpt => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::CommitCkpt(tx))?;
                let epoch = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::Committed { epoch }
            }
            CtrlMsg::Rollback { epoch } => {
                let (tx, rx) = channel();
                send_cmd(&input_tx, NodeCmd::Rollback { epoch, reply: tx })?;
                let outcome = rx
                    .recv()
                    .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "node loop gone"))?;
                CtrlReply::RolledBack {
                    restored_epoch: outcome.restored_epoch,
                    resent: outcome.resent as u64,
                }
            }
            CtrlMsg::Status => {
                let s = status_barrier(&input_tx)?;
                CtrlReply::Status(WireStatus {
                    dirty: s.dirty,
                    delivered: s.delivered,
                    at_runs: s.at_runs,
                    stable_epoch: s.stable_epoch,
                    torn_writes: s.torn_writes,
                    unacked: s.unacked as u64,
                    promoted: s.promoted,
                    logged: s.logged as u64,
                })
            }
            CtrlMsg::Shutdown => {
                send_cmd(&input_tx, NodeCmd::Shutdown)?;
                send_ctrl(&mut ctrl, &CtrlReply::Done)?;
                break;
            }
        };
        send_ctrl(&mut ctrl, &reply)?;
    }
    drop(input_tx);
    let _ = runner_join.join();
    net.shutdown();
    Ok(())
}
