//! Regression tests for the hardened orchestrator: faulted clusters must
//! end in *structured*, attributed errors within the configured timeouts —
//! never a hang.

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use synergy::NodeId;
use synergy_cluster::{Cluster, ClusterConfig, ClusterError};
use synergy_net::{Endpoint, ProcessId};

fn unique_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "synergy-hardening-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create data root");
    dir
}

fn config(node_bin: PathBuf, data_root: PathBuf) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(3, 4, 1.7, node_bin, data_root);
    cfg.timeouts.hello = Duration::from_secs(10);
    cfg.timeouts.ctrl = Duration::from_secs(10);
    cfg
}

/// A node that dies before sending `Hello` must surface as a structured
/// `NodeDied` error naming the expected pid — detected by the accept
/// loop's child polling, far inside the hello timeout.
#[cfg(unix)]
#[test]
fn node_dead_before_hello_fails_fast_and_structured() {
    use std::os::unix::fs::PermissionsExt;

    let data_root = unique_dir("dead-before-hello");
    let script = data_root.join("dead-node.sh");
    std::fs::write(&script, "#!/bin/sh\nexit 7\n").expect("write stub node");
    let mut perms = std::fs::metadata(&script).expect("stat stub").permissions();
    perms.set_mode(0o755);
    std::fs::set_permissions(&script, perms).expect("chmod stub");

    let cfg = config(script, data_root.clone());
    let hello_timeout = cfg.timeouts.hello;
    let started = Instant::now();
    let err = match Cluster::launch(cfg) {
        Err(e) => e,
        Ok(_) => panic!("launch must fail when the node exits before Hello"),
    };
    let elapsed = started.elapsed();
    match &err {
        ClusterError::NodeDied { pid, detail } => {
            assert_eq!(*pid, 1, "the first spawned node is attributed");
            assert!(
                detail.contains("before sending Hello"),
                "detail explains the phase: {detail}"
            );
        }
        other => panic!("expected NodeDied, got {other:?}"),
    }
    assert!(
        elapsed < hello_timeout,
        "early death must be detected by child polling ({elapsed:?}), \
         not by waiting out the {hello_timeout:?} hello timeout"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}

/// Killing a live node and then issuing a command must produce a
/// structured error attributed to that node's pid — the dropped control
/// connection is detected within the control timeout, and the dead
/// process is distinguished from a wedged one.
#[test]
fn control_drop_mid_command_is_attributed_within_timeout() {
    let data_root = unique_dir("ctrl-drop");
    let cfg = config(
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.clone(),
    );
    let ctrl_timeout = cfg.timeouts.ctrl;
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");

    cluster.kill_node(NodeId::P2).expect("kill the victim");
    let started = Instant::now();
    let err = match cluster.status_all() {
        Err(e) => e,
        Ok(s) => panic!("status sweep must fail after the kill, got {s:?}"),
    };
    let elapsed = started.elapsed();
    match &err {
        ClusterError::NodeDied { pid, .. } => {
            assert_eq!(*pid, 3, "failure names the killed node");
        }
        other => panic!("expected NodeDied for pid 3, got {other:?}"),
    }
    assert!(
        elapsed <= ctrl_timeout + Duration::from_secs(2),
        "failure must land within the control timeout, took {elapsed:?}"
    );

    // Dead-node detection also catches it without any command round-trip.
    match cluster.ensure_alive() {
        Err(ClusterError::NodeDied { pid, .. }) => assert_eq!(pid, 3),
        other => panic!("expected NodeDied from ensure_alive, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&data_root);
}

/// A peer that accepts connections but never reads must surface as typed
/// backpressure, not a hang: the overdriven node's ring fills, the blast
/// reports rejections, and the next status sweep fails fast with a
/// structured [`ClusterError::Backpressure`] naming the node.
#[test]
fn stalled_peer_surfaces_backpressure_never_a_hang() {
    let data_root = unique_dir("stalled-peer");
    let mut cfg = config(
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.clone(),
    );
    // A tiny outbound ring makes the stall observable with little traffic.
    cfg.wire_queue_bytes = Some(64 * 1024);
    let mut cluster = Cluster::launch(cfg).expect("cluster launches");

    // The stalled peer: the kernel completes handshakes via the listen
    // backlog, but nothing ever reads, so socket buffers fill and stay full.
    let stall = TcpListener::bind("127.0.0.1:0").expect("bind stall listener");
    let stall_addr = stall.local_addr().expect("stall addr").to_string();
    cluster
        .set_route(NodeId::P1Act, Endpoint::Process(ProcessId(3)), &stall_addr)
        .expect("reroute P2 to the stalled peer");

    // Overdrive the route far past ring + kernel buffers: 4000 × 16 KiB.
    let started = Instant::now();
    let (sent, rejected) = cluster
        .blast(NodeId::P1Act, Endpoint::Process(ProcessId(3)), 4000, 16384)
        .expect("blast completes");
    assert_eq!(sent + rejected, 4000);
    assert!(
        rejected > 0,
        "a never-reading peer must reject sends with backpressure \
         (sent={sent}, rejected={rejected})"
    );

    // The loss is surfaced, attributed, and fatal — the status sweep fails
    // fast instead of quiescing forever.
    match cluster.status_all() {
        Err(ClusterError::Backpressure { pid, dropped }) => {
            assert_eq!(pid, 1, "the overdriven node is named");
            assert_eq!(dropped, rejected, "every rejection is accounted");
        }
        other => panic!("expected Backpressure for pid 1, got {other:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "backpressure must surface within bounded time, took {elapsed:?}"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}
