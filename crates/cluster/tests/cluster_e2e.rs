//! End-to-end cluster acceptance: a seeded three-process TCP mission with
//! one scheduled SIGKILL and restart completes; the restarted node recovers
//! from its CRC-verified on-disk store with the torn (aborted) write
//! detected; and the device-output stream matches a simulator run of the
//! same seed and fault plan.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use synergy::NodeId;
use synergy_cluster::{
    simulate_reference, simulate_reference_schedule, Cluster, ClusterConfig, CrashEvent, CrashKind,
};

const TB_INTERVAL_SECS: f64 = 1.7;

fn unique_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "synergy-cluster-e2e-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create data root");
    dir
}

fn launch(seed: u64, steps: u32, crash: Option<CrashEvent>, data_root: &Path) -> Cluster {
    let mut cfg = ClusterConfig::new(
        seed,
        steps,
        TB_INTERVAL_SECS,
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.to_path_buf(),
    );
    cfg.crashes.extend(crash);
    Cluster::launch(cfg).expect("cluster launches")
}

#[test]
fn fault_free_mission_matches_the_simulator() {
    let data_root = unique_dir("clean");
    let report = launch(7, 5, None, &data_root).run().expect("mission runs");
    let reference = simulate_reference(7, 5, TB_INTERVAL_SECS, None);
    assert!(reference.verdicts_hold);
    assert_eq!(
        report.device_payloads.len(),
        5,
        "one device message per step"
    );
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "cluster and simulator device streams must be identical"
    );
    // Grid points 1.7 and 3.4 passed: everyone committed two epochs.
    for (pid, status) in &report.final_status {
        assert_eq!(status.stable_epoch, Some(2), "pid {pid}");
        assert_eq!(status.torn_writes, 0, "pid {pid}");
    }
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn sigkill_mission_recovers_from_disk_and_matches_the_simulator() {
    let seed = 11;
    let steps = 8;
    let kill_epoch = 3; // grid t = 5.1, torn inside the round
    let victim = NodeId::P2;
    let data_root = unique_dir("kill");

    let report = launch(
        seed,
        steps,
        Some(CrashEvent {
            victim,
            epoch: kill_epoch,
            kind: CrashKind::MidRound,
        }),
        &data_root,
    )
    .run()
    .expect("mission completes despite the kill");
    let kill = report.kills.first().expect("kill executed");

    // The kill tore a staged write: the victim confirmed an in-flight
    // stable write before SIGKILL, and its restarted incarnation found the
    // leftover temp file (torn write) plus the CRC-verified previous
    // commits, recovering exactly the epochs committed before the torn
    // round.
    assert!(kill.victim_began_writing, "write staged before the kill");
    assert_eq!(
        kill.reload_epoch,
        Some(kill_epoch - 1),
        "victim recovers the last committed epoch from disk"
    );
    assert_eq!(
        kill.reload_torn_writes, 1,
        "the aborted on-disk write is detected on reload"
    );

    // Global rollback: survivors committed the torn epoch, the victim did
    // not, so the epoch line is k−1 and every process restores it.
    assert_eq!(kill.line, kill_epoch - 1);
    assert_eq!(kill.rollback_epochs, 1, "one grid epoch lost to the tear");
    assert_eq!(kill.rollbacks.len(), 3);
    for (pid, restored, resent) in &kill.rollbacks {
        assert_eq!(
            *restored,
            Some(kill_epoch - 1),
            "pid {pid} restores the epoch line"
        );
        assert_eq!(*resent, 0, "pid {pid}: quiesced mission has no unacked");
    }

    // The observable surface: the device payload sequence — including the
    // post-rollback repeats — must equal the simulator's for the same seed
    // and fault plan.
    let reference = simulate_reference(seed, steps, TB_INTERVAL_SECS, Some((victim, kill_epoch)));
    assert!(reference.verdicts_hold, "simulator verdicts hold");
    assert_eq!(reference.torn_writes, 1, "sim reproduces the torn write");
    assert_eq!(reference.hardware_recoveries, 1);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "cluster and simulator device streams must be identical"
    );

    // Rollback distance: losing the torn epoch costs one grid interval
    // plus the restart delay in the simulator's clock; the cluster's
    // epoch-line arithmetic must agree.
    let cluster_distance = (kill_epoch - kill.line) as f64 * TB_INTERVAL_SECS + 0.12;
    let sim_distance = reference.mean_rollback_secs.expect("sim rolled back");
    assert!(
        (sim_distance - cluster_distance).abs() < 0.25,
        "rollback distance: sim {sim_distance:.3}s vs cluster {cluster_distance:.3}s"
    );

    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn acked_internal_traffic_mission_survives_a_kill_and_matches_the_simulator() {
    // Internal P1 → P2 produces put acked application traffic on the wire;
    // the kill, restart, and rollback must still leave the device stream
    // byte-identical to the reference, and the acks must fully drain by
    // mission end.
    let seed = 11;
    let steps = 8;
    let kill_epoch = 3;
    let victim = NodeId::P2;
    let data_root = unique_dir("acked");

    let mut cfg = ClusterConfig::new(
        seed,
        steps,
        TB_INTERVAL_SECS,
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.to_path_buf(),
    );
    cfg.internal_traffic = true;
    cfg.crashes.push(CrashEvent {
        victim,
        epoch: kill_epoch,
        kind: CrashKind::MidRound,
    });
    let report = Cluster::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("mission completes despite the kill");

    let crashes = [CrashEvent {
        victim,
        epoch: kill_epoch,
        kind: CrashKind::MidRound,
    }];
    let reference = simulate_reference_schedule(seed, steps, TB_INTERVAL_SECS, true, &crashes);
    assert!(reference.verdicts_hold);
    assert_eq!(reference.torn_writes, 1);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "cluster and simulator device streams must be identical"
    );
    for (pid, status) in &report.final_status {
        assert_eq!(status.unacked, 0, "pid {pid}: acks drained by mission end");
    }
    // The traffic existed: the active delivered P2's acks, P2 delivered the
    // internal messages.
    let p2 = report
        .final_status
        .iter()
        .find(|(pid, _)| *pid == 3)
        .map(|(_, s)| s)
        .expect("P2 status present");
    assert!(p2.delivered > 0, "P2 delivered internal messages");
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn delta_chain_mission_survives_a_kill_and_matches_the_simulator() {
    // Same mission as the torn-write kill above, but every node persists
    // through the delta-chain store over the tiered archive: the reload
    // walks the CRC-chained records instead of full images, and the
    // observable stream must be unchanged.
    let seed = 11;
    let steps = 8;
    let kill_epoch = 3;
    let victim = NodeId::P2;
    let data_root = unique_dir("delta");

    let mut cfg = ClusterConfig::new(
        seed,
        steps,
        TB_INTERVAL_SECS,
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.to_path_buf(),
    );
    cfg.delta_k = 4;
    cfg.crashes.push(CrashEvent {
        victim,
        epoch: kill_epoch,
        kind: CrashKind::MidRound,
    });
    let report = Cluster::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("delta mission completes despite the kill");
    let kill = report.kills.first().expect("kill executed");

    assert!(kill.victim_began_writing, "write staged before the kill");
    assert_eq!(
        kill.reload_epoch,
        Some(kill_epoch - 1),
        "victim recovers the last committed epoch through the chain walk"
    );
    assert_eq!(kill.reload_torn_writes, 1, "torn write detected on reload");
    assert!(!kill.wiped);

    let reference = simulate_reference(seed, steps, TB_INTERVAL_SECS, Some((victim, kill_epoch)));
    assert!(reference.verdicts_hold);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "delta-chain cluster and simulator device streams must be identical"
    );
    // Every node mirrored committed records to its archive tier (the
    // final sweep may catch a record still in flight, hence the sum).
    for (pid, status) in &report.final_status {
        assert!(
            status.archive_uploads + status.archive_pending > 0,
            "pid {pid} mirrored records to the archive tier"
        );
        assert_eq!(status.rehydrated, 0, "pid {pid}: no wipe, no rehydration");
    }
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn wiped_node_rehydrates_from_the_archive_and_matches_the_simulator() {
    // The victim's entire data directory is destroyed while it is down;
    // its restart must rebuild tier 0 from the archive tier and rejoin
    // with the same committed history — the stream stays byte-identical.
    let seed = 11;
    let steps = 8;
    let kill_epoch = 3;
    let victim = NodeId::P2;
    let data_root = unique_dir("wipe");

    let mut cfg = ClusterConfig::new(
        seed,
        steps,
        TB_INTERVAL_SECS,
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.to_path_buf(),
    );
    cfg.delta_k = 4;
    cfg.wipe = true;
    cfg.crashes.push(CrashEvent {
        victim,
        epoch: kill_epoch,
        kind: CrashKind::MidRound,
    });
    let report = Cluster::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("mission completes despite the wipe");
    let kill = report.kills.first().expect("kill executed");

    assert!(kill.wiped, "the victim's disk was wiped while it was down");
    assert_eq!(
        kill.reload_epoch,
        Some(kill_epoch - 1),
        "the wiped victim recovers its full committed history from the archive"
    );
    assert_eq!(
        kill.reload_torn_writes, 0,
        "the torn temp file went with the wipe; rehydration has no tear"
    );
    let p_victim = victim.index() as u32 + 1;
    let victim_status = report
        .final_status
        .iter()
        .find(|(pid, _)| *pid == p_victim)
        .map(|(_, s)| s)
        .expect("victim status present");
    assert!(
        victim_status.rehydrated > 0,
        "tier 0 was rebuilt from archive objects"
    );

    let reference = simulate_reference(seed, steps, TB_INTERVAL_SECS, Some((victim, kill_epoch)));
    assert!(reference.verdicts_hold);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "wiped-and-rehydrated cluster must match the simulator byte-for-byte"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn rotted_chain_record_is_refused_on_reload_and_the_stream_is_unchanged() {
    // Delta-chain bit-rot: the victim's oldest chain record is corrupted
    // behind a valid disk frame, so only the chain-link verification can
    // catch it. The damaged prefix is dropped, the newest record still
    // replays, and the device stream is unchanged.
    let seed = 11;
    let steps = 8;
    let kill_epoch = 4; // victim holds Full, Delta, Full before the kill (k=2)
    let victim = NodeId::P2;
    let data_root = unique_dir("deltarot");

    let mut cfg = ClusterConfig::new(
        seed,
        steps,
        TB_INTERVAL_SECS,
        PathBuf::from(env!("CARGO_BIN_EXE_synergy-node")),
        data_root.to_path_buf(),
    );
    cfg.delta_k = 2;
    cfg.deltarot = true;
    cfg.crashes.push(CrashEvent {
        victim,
        epoch: kill_epoch,
        kind: CrashKind::MidRound,
    });
    let report = Cluster::launch(cfg)
        .expect("cluster launches")
        .run()
        .expect("mission completes despite the rotted chain record");
    let kill = report.kills.first().expect("kill executed");

    assert!(
        kill.reload_corrupt_records >= 1,
        "the rotted record (and anything chained on it) is refused as an orphan"
    );
    assert_eq!(
        kill.reload_epoch,
        Some(kill_epoch - 1),
        "the newest record replays from the later full image"
    );

    let reference = simulate_reference(seed, steps, TB_INTERVAL_SECS, Some((victim, kill_epoch)));
    assert!(reference.verdicts_hold);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "masked chain rot must not change the device stream"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn first_round_kill_rolls_every_node_back_to_the_initial_state() {
    // Killing the victim in round 1 leaves it with no committed checkpoint
    // at all: the epoch line is 0 and every node — survivors included —
    // must restart from the initial application state, exactly as the
    // simulator's hardware recovery does.
    let seed = 5;
    let steps = 8;
    let victim = NodeId::P2;
    let data_root = unique_dir("line0");

    let report = launch(
        seed,
        steps,
        Some(CrashEvent {
            victim,
            epoch: 1,
            kind: CrashKind::MidRound,
        }),
        &data_root,
    )
    .run()
    .expect("mission completes despite the round-1 kill");
    let kill = report.kills.first().expect("kill executed");

    assert!(kill.victim_began_writing);
    assert_eq!(kill.reload_epoch, None, "nothing committed before the kill");
    assert_eq!(kill.reload_torn_writes, 1);
    assert_eq!(kill.line, 0, "no committed epoch anywhere: the line is 0");
    for (pid, restored, _) in &kill.rollbacks {
        assert_eq!(*restored, None, "pid {pid}: initial-state restart");
    }

    let reference = simulate_reference(seed, steps, TB_INTERVAL_SECS, Some((victim, 1)));
    assert!(reference.verdicts_hold);
    assert_eq!(reference.torn_writes, 1);
    assert_eq!(
        report.device_payloads, reference.device_payloads,
        "cluster and simulator device streams must be identical"
    );
    let _ = std::fs::remove_dir_all(&data_root);
}
