//! Deterministic campaign generation.
//!
//! A [`CampaignSpec`] is fully determined by `(base_seed, index)`: every
//! parameter is drawn from a labelled [`DetRng`] stream, so re-running the
//! same seed reproduces the same mission, the same fault cocktail, and —
//! because every injected layer is deterministic too — the same realized
//! schedule. [`CampaignToggles`] disable whole fault groups *after*
//! drawing, so `--no-link` keeps the mission shape (steps, crash) of the
//! full campaign; the shrinker relies on the same property.
//!
//! The drawn parameters deliberately stay inside the region the masking
//! argument covers (see `DESIGN.md` §11): drop probability below 0.25
//! against a 16-attempt retransmit budget, transient disk faults charged at
//! most twice against the runtime's retry budget of eight, partitions that
//! close well before the quiesce deadline, and bit-rot only when the victim
//! is guaranteed two committed records. Campaigns outside that region are
//! for negative tests, not for the byte-identical sweep.

use synergy::NodeId;
use synergy_archive::{ArchiveFaultPlan, OutageWindow};
use synergy_cluster::{CrashEvent, CrashKind};
use synergy_des::DetRng;
use synergy_net::{LinkFaultPlan, LinkFaults, PartitionWindow, WireKind};
use synergy_storage::{DiskFault, DiskFaultPlan, DiskOp};

/// The checkpoint grid spacing every campaign uses, chosen so no grid
/// point lands within the verifier's ε-scan radius of a produce instant.
pub const CAMPAIGN_DELTA_SECS: f64 = 1.7;

/// Which fault groups a campaign may include.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignToggles {
    /// Link faults: drops, ack duplication, delays, partitions.
    pub link: bool,
    /// Transient stable-storage faults under the TB runtime.
    pub disk: bool,
    /// The scheduled crash (kill + restart + global rollback).
    pub crash: bool,
    /// Read-back bit-rot in the victim's checkpoint directory.
    pub bitrot: bool,
    /// Chain-link rot in the victim's delta chain (delta-mode campaigns).
    pub deltarot: bool,
    /// Archive-tier faults: object-store outages, PUT failures, and the
    /// wiped-disk rehydration axis (delta-mode campaigns).
    pub archive: bool,
    /// Byzantine-lite value corruption of a node's latest checkpoint
    /// behind a valid CRC (unmasked-regime campaigns only — the masked
    /// sweep never draws it).
    pub corrupt: bool,
}

impl Default for CampaignToggles {
    fn default() -> Self {
        CampaignToggles {
            link: true,
            disk: true,
            crash: true,
            bitrot: true,
            deltarot: true,
            archive: true,
            corrupt: true,
        }
    }
}

/// One fully specified fault campaign against the live cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignSpec {
    /// Mission seed (shared by the cluster and the simulator reference).
    pub seed: u64,
    /// External produces at grid seconds `1..=steps`.
    pub steps: u32,
    /// Precede each external produce with an internal (acked P1 → P2)
    /// produce, putting application traffic — and its acks — on the chaos
    /// wire.
    pub internal_traffic: bool,
    /// Checkpoint grid spacing Δ.
    pub tb_interval_secs: f64,
    /// The scheduled hardware fault, if any.
    pub crash: Option<CrashEvent>,
    /// Link-fault plan shipped to every node.
    pub link: LinkFaultPlan,
    /// Per-node stable-storage fault plans.
    pub disk: Vec<DiskFaultPlan>,
    /// Whether to flip a bit in the victim's oldest committed record.
    pub bitrot: bool,
    /// Delta-chain cadence: full image every `delta_k` rounds, dirty-region
    /// deltas between. Zero keeps the legacy full-image store. Mission
    /// shape, not a fault: the shrinker never removes it.
    pub delta_k: u32,
    /// Whether to corrupt a chain record behind a valid disk frame on the
    /// victim's restart, so only chain-link verification can refuse it.
    pub deltarot: bool,
    /// Per-node archive-tier fault plans (delta-mode campaigns only).
    pub archive: Vec<ArchiveFaultPlan>,
    /// Whether the victim's whole data directory is wiped at the kill,
    /// forcing a full rehydration from the archive tier.
    pub wipe: bool,
    /// Byzantine-lite target: flip value bytes inside this node's latest
    /// committed checkpoint (behind a valid CRC) before the first crash's
    /// global rollback. `None` for the masked sweep; regime campaigns set
    /// node 0 so the restored lie reaches the device stream and the
    /// cluster-vs-sim diff documents the escape.
    pub corrupt: Option<usize>,
    /// Which live-wire transport the cluster's nodes run. Not part of the
    /// fault cocktail: the campaign must converge byte-identically on
    /// either wire, which is exactly what the sweep checks.
    pub transport: WireKind,
}

/// Commanded checkpoint rounds a mission of `steps` produces executes:
/// grid rounds `g ≥ 1` with `g·Δ < steps`.
pub fn grid_rounds(steps: u32, tb_interval_secs: f64) -> u64 {
    let mut g = 0u64;
    while tb_interval_secs * ((g + 1) as f64) < f64::from(steps) {
        g += 1;
    }
    g
}

impl CampaignSpec {
    /// Generates campaign `index` of the sweep rooted at `base_seed`.
    ///
    /// The crash kind rotates with the index so any consecutive run of
    /// three campaigns covers every [`CrashKind`]; everything else is
    /// drawn from per-campaign RNG streams.
    pub fn generate(base_seed: u64, index: u64, toggles: CampaignToggles) -> CampaignSpec {
        let root = DetRng::new(base_seed);
        let mut rng = root.stream_indexed("campaign", index);

        let steps = rng.gen_range(5u64..=9) as u32;
        let rounds = grid_rounds(steps, CAMPAIGN_DELTA_SECS);
        // Most campaigns carry acked P1 → P2 traffic so the chaos wire has
        // application frames and acks to work on, not just device output.
        let internal_traffic = rng.gen_bool(0.75);

        // The crash: victim P2 (the fault-plan index mapping the verifier's
        // equivalence tests pin down), epoch anywhere on the grid, kind
        // rotating so kills land idle, mid-write, and during recovery.
        let kind = match index % 3 {
            0 => CrashKind::MidRound,
            1 => CrashKind::RoundStart,
            _ => CrashKind::DoubleKill,
        };
        let crash = (rounds >= 1).then(|| CrashEvent {
            victim: NodeId::P2,
            epoch: rng.gen_range(1..=rounds),
            kind,
        });

        // Link faults, inside the masked regime: loss below 0.25 against a
        // 16-attempt budget leaves residual frame loss around 2e-10.
        let mut link_rng = root.stream_indexed("campaign-link", index);
        let drop_prob = link_rng.next_f64() * 0.25;
        let dup_prob = link_rng.next_f64() * 0.30;
        let delay_hi = link_rng.gen_range(5u64..=30);
        let mut partitions = Vec::new();
        if link_rng.gen_bool(0.6) {
            let start_ms = link_rng.gen_range(500u64..=2500);
            let len_ms = link_rng.gen_range(300u64..=900);
            partitions.push(PartitionWindow {
                start_ms,
                end_ms: start_ms + len_ms,
            });
        }
        let link = LinkFaultPlan {
            faults: LinkFaults::new(drop_prob, dup_prob),
            delay_ms: (0, delay_hi),
            partitions,
            max_attempts: 16,
            retry_ms: (4, 60),
            seed: link_rng.next_u64(),
        };

        // Transient disk faults: at most two charges per fault, well under
        // the runtime's retry budget of eight, so every one is masked.
        let mut disk_rng = root.stream_indexed("campaign-disk", index);
        let mut disk = Vec::with_capacity(NodeId::ALL.len());
        for _ in NodeId::ALL {
            let mut plan = DiskFaultPlan::inert();
            if disk_rng.gen_bool(0.6) {
                let count = disk_rng.gen_range(1u64..=2);
                for _ in 0..count {
                    plan.faults.push(DiskFault {
                        seq: disk_rng.gen_range(1..=rounds.max(1)),
                        op: if disk_rng.gen_bool(0.5) {
                            DiskOp::Begin
                        } else {
                            DiskOp::Commit
                        },
                        times: disk_rng.gen_range(1u64..=2) as u32,
                    });
                }
            }
            disk.push(plan);
        }

        // Delta-chain cadence: most campaigns exercise the delta store,
        // with k spanning all-full (1), mixed (2, 4), and legacy (0).
        let mut delta_rng = root.stream_indexed("campaign-delta", index);
        let delta_k = [0u32, 1, 2, 4][delta_rng.gen_range(0u64..4) as usize];

        // Archive-tier axis (delta mode only): at most one of an outage
        // window, PUT faults, or a wiped-disk rehydration, always on the
        // crash victim so the injection composes with the kill schedule.
        let mut archive_rng = root.stream_indexed("campaign-archive", index);
        let mut archive = vec![ArchiveFaultPlan::inert(); NodeId::ALL.len()];
        let mut wipe = false;
        if delta_k > 0 {
            match archive_rng.gen_range(0u64..4) {
                0 => {
                    // Outage closing well before the 30 s quiesce deadline;
                    // the upload queue retries through it.
                    let start_ms = archive_rng.gen_range(200u64..=1500);
                    let len_ms = archive_rng.gen_range(300u64..=800);
                    archive[2] = ArchiveFaultPlan {
                        seed: archive_rng.next_u64(),
                        outages: vec![OutageWindow {
                            start_ms,
                            end_ms: start_ms + len_ms,
                        }],
                        ..ArchiveFaultPlan::inert()
                    };
                }
                1 => {
                    // PUT faults under the upload queue's retry budget;
                    // partial PUTs are dropped by the object CRC on read.
                    archive[2] = ArchiveFaultPlan {
                        seed: archive_rng.next_u64(),
                        put_fail: archive_rng.next_f64() * 0.3,
                        put_partial: archive_rng.next_f64() * 0.3,
                        latency_ms: archive_rng.gen_range(0u64..=10),
                        ..ArchiveFaultPlan::inert()
                    };
                }
                2 => wipe = crash.is_some(),
                _ => {}
            }
        }

        // Bit-rot needs the victim to hold ≥ 2 committed records at the
        // kill (epoch ≥ 3 commits epochs 1..=epoch−1 first), so the CRC
        // skip hits the oldest record and never moves the epoch line.
        // Legacy store only: in delta mode a frame-level skip can orphan
        // the whole delta suffix and move the epoch line, which is what
        // chain-aware delta-rot covers instead.
        let bitrot = delta_k == 0 && crash.is_some_and(|c| c.epoch >= 3);

        // Delta-rot corrupts the oldest record *behind* a valid disk
        // frame; the injector keeps the restore target replayable by
        // requiring an intact full image later in the chain. The next
        // full lands at seq 1+k, committed once epoch ≥ k+2 — below
        // that the injector would refuse, so don't schedule it. A wipe
        // supersedes it: there is no chain left to rot.
        let deltarot =
            delta_k > 0 && !wipe && crash.is_some_and(|c| c.epoch >= u64::from(delta_k) + 2);

        let mut spec = CampaignSpec {
            seed: base_seed.wrapping_add(index),
            steps,
            internal_traffic,
            tb_interval_secs: CAMPAIGN_DELTA_SECS,
            crash,
            link,
            disk,
            bitrot,
            delta_k,
            deltarot,
            archive,
            wipe,
            corrupt: None,
            transport: WireKind::default(),
        };
        if !toggles.link {
            spec.disable_link();
        }
        if !toggles.disk {
            spec.disable_disk();
        }
        if !toggles.bitrot {
            spec.disable_bitrot();
        }
        if !toggles.deltarot {
            spec.disable_deltarot();
        }
        if !toggles.archive {
            spec.disable_archive();
        }
        if !toggles.crash {
            spec.disable_crash();
        }
        if !toggles.corrupt {
            spec.disable_corrupt();
        }
        spec
    }

    /// Generates unmasked-regime cluster campaign `index`: a Byzantine-lite
    /// value corruption of the active's latest checkpoint riding on a
    /// scheduled crash, on its own seed family (the `"regime-cluster"`
    /// stream) so regime sweeps never collide with the masked sweep.
    ///
    /// The cocktail is deliberately minimal — no link or disk chaos — so
    /// the *only* unmasked ingredient is the corruption, and the
    /// cluster-vs-sim diff attributes every divergent byte to it. Legacy
    /// store only (`delta_k = 0`): delta chains refuse to rewrite committed
    /// history, which would silently un-inject the axis.
    pub fn generate_byzantine(base_seed: u64, index: u64) -> CampaignSpec {
        let root = DetRng::new(base_seed);
        let mut rng = root.stream_indexed("regime-cluster", index);
        let steps = rng.gen_range(6u64..=9) as u32;
        let rounds = grid_rounds(steps, CAMPAIGN_DELTA_SECS);
        let kind = match index % 3 {
            0 => CrashKind::MidRound,
            1 => CrashKind::RoundStart,
            _ => CrashKind::DoubleKill,
        };
        // Epoch ≥ 2 so node 0 holds a committed checkpoint to corrupt and
        // the rollback has a line strictly behind the crash round.
        let crash = CrashEvent {
            victim: NodeId::P2,
            epoch: rng.gen_range(2..=rounds.max(2)),
            kind,
        };
        CampaignSpec {
            seed: base_seed.wrapping_add(index),
            steps,
            internal_traffic: rng.gen_bool(0.5),
            tb_interval_secs: CAMPAIGN_DELTA_SECS,
            crash: Some(crash),
            link: LinkFaultPlan::inert(rng.next_u64()),
            disk: vec![DiskFaultPlan::inert(); NodeId::ALL.len()],
            bitrot: false,
            delta_k: 0,
            deltarot: false,
            archive: vec![ArchiveFaultPlan::inert(); NodeId::ALL.len()],
            wipe: false,
            corrupt: Some(NodeId::P1Act.index()),
            transport: WireKind::default(),
        }
    }

    /// Removes the link-fault group (wire becomes a passthrough).
    pub fn disable_link(&mut self) {
        self.link = LinkFaultPlan::inert(self.link.seed);
    }

    /// Removes every stable-storage fault.
    pub fn disable_disk(&mut self) {
        for plan in &mut self.disk {
            *plan = DiskFaultPlan::inert();
        }
    }

    /// Removes the bit-rot injection.
    pub fn disable_bitrot(&mut self) {
        self.bitrot = false;
    }

    /// Removes the chain-rot injection.
    pub fn disable_deltarot(&mut self) {
        self.deltarot = false;
    }

    /// Removes the archive-tier fault group: object-store fault plans and
    /// the wiped-disk rehydration. The delta cadence itself stays — it is
    /// mission shape, not a fault.
    pub fn disable_archive(&mut self) {
        for plan in &mut self.archive {
            *plan = ArchiveFaultPlan::inert();
        }
        self.wipe = false;
    }

    /// Removes the Byzantine-lite checkpoint corruption.
    pub fn disable_corrupt(&mut self) {
        self.corrupt = None;
    }

    /// Removes the scheduled crash (and with it the bit-rot, chain-rot,
    /// wipe, and checkpoint corruption, which all ride on a crash's
    /// global rollback).
    pub fn disable_crash(&mut self) {
        self.crash = None;
        self.bitrot = false;
        self.deltarot = false;
        self.wipe = false;
        self.corrupt = None;
    }

    /// Which fault groups the spec still carries, for shrink ordering.
    pub fn active_toggles(&self) -> CampaignToggles {
        CampaignToggles {
            link: !self.link.is_inert(),
            disk: self.disk.iter().any(|p| !p.is_inert()),
            crash: self.crash.is_some(),
            bitrot: self.bitrot,
            deltarot: self.deltarot,
            archive: self.wipe || self.archive.iter().any(|p| !p.is_inert()),
            corrupt: self.corrupt.is_some(),
        }
    }

    /// One-line human summary of the fault cocktail.
    pub fn cocktail(&self) -> String {
        let mut parts = Vec::new();
        match self.crash {
            Some(c) => parts.push(format!("{:?}@{}", c.kind, c.epoch)),
            None => parts.push("no-crash".to_string()),
        }
        if self.link.is_inert() {
            parts.push("link:off".to_string());
        } else {
            parts.push(format!(
                "link:drop={:.2},part={}",
                self.link.faults.drop_prob,
                self.link.partitions.len()
            ));
        }
        let disk_faults: usize = self.disk.iter().map(|p| p.faults.len()).sum();
        parts.push(format!("disk:{disk_faults}"));
        if self.delta_k > 0 {
            parts.push(format!("delta-k{}", self.delta_k));
        }
        if self.bitrot {
            parts.push("bitrot".to_string());
        }
        if self.deltarot {
            parts.push("deltarot".to_string());
        }
        if let Some(node) = self.corrupt {
            parts.push(format!("corrupt:n{node}"));
        }
        if self.wipe {
            parts.push("wipe".to_string());
        } else if self.archive.iter().any(|p| !p.is_inert()) {
            let outage = self.archive.iter().any(|p| !p.outages.is_empty());
            parts.push(if outage {
                "archive:outage".to_string()
            } else {
                "archive:puts".to_string()
            });
        }
        if self.internal_traffic {
            parts.push("acked-traffic".to_string());
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = CampaignSpec::generate(42, 7, CampaignToggles::default());
        let b = CampaignSpec::generate(42, 7, CampaignToggles::default());
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_indices_draw_distinct_campaigns() {
        let a = CampaignSpec::generate(42, 0, CampaignToggles::default());
        let b = CampaignSpec::generate(42, 3, CampaignToggles::default());
        // Same crash-kind rotation slot, different draws.
        assert_eq!(a.crash.map(|c| c.kind), b.crash.map(|c| c.kind));
        assert_ne!((a.seed, a.link.seed), (b.seed, b.link.seed));
    }

    #[test]
    fn crash_kind_rotation_covers_every_kind() {
        let kinds: Vec<CrashKind> = (0..3)
            .map(|i| {
                CampaignSpec::generate(1, i, CampaignToggles::default())
                    .crash
                    .expect("crash present")
                    .kind
            })
            .collect();
        assert!(kinds.contains(&CrashKind::MidRound));
        assert!(kinds.contains(&CrashKind::RoundStart));
        assert!(kinds.contains(&CrashKind::DoubleKill));
    }

    #[test]
    fn drawn_parameters_stay_in_the_masked_regime() {
        for index in 0..64 {
            let spec = CampaignSpec::generate(99, index, CampaignToggles::default());
            let rounds = grid_rounds(spec.steps, spec.tb_interval_secs);
            assert!((5..=9).contains(&spec.steps));
            let crash = spec.crash.expect("every campaign schedules a crash");
            assert!((1..=rounds).contains(&crash.epoch), "epoch on the grid");
            assert!(spec.link.faults.drop_prob < 0.25);
            assert_eq!(spec.link.max_attempts, 16);
            for w in &spec.link.partitions {
                assert!(w.start_ms >= 500 && w.end_ms <= 3400);
            }
            for plan in &spec.disk {
                for f in &plan.faults {
                    assert!(f.times <= 2, "transient faults stay under the retry budget");
                    assert!((1..=rounds.max(1)).contains(&f.seq));
                }
            }
            if spec.bitrot {
                assert!(crash.epoch >= 3, "bit-rot only with ≥ 2 committed records");
                assert_eq!(
                    spec.delta_k, 0,
                    "frame-level bit-rot is a legacy-store axis"
                );
            }
            assert!([0, 1, 2, 4].contains(&spec.delta_k));
            if spec.deltarot {
                assert!(spec.delta_k > 0, "chain-rot needs a chain");
                assert!(!spec.wipe, "a wipe supersedes chain-rot");
                assert!(
                    crash.epoch >= u64::from(spec.delta_k) + 2,
                    "chain-rot needs a committed full image after the rotted record"
                );
            }
            if spec.wipe || spec.archive.iter().any(|p| !p.is_inert()) {
                assert!(spec.delta_k > 0, "archive axes need the tiered store");
            }
            for plan in &spec.archive {
                assert!(plan.put_fail < 0.3 && plan.put_partial < 0.3);
                for w in &plan.outages {
                    assert!(w.start_ms >= 200 && w.end_ms <= 2300, "outage closes early");
                }
            }
            spec.link.validate();
        }
    }

    #[test]
    fn toggles_disable_groups_without_changing_the_mission() {
        let full = CampaignSpec::generate(7, 4, CampaignToggles::default());
        let bare = CampaignSpec::generate(
            7,
            4,
            CampaignToggles {
                link: false,
                disk: false,
                crash: false,
                bitrot: false,
                deltarot: false,
                archive: false,
                corrupt: false,
            },
        );
        assert_eq!(bare.steps, full.steps, "mission shape preserved");
        assert_eq!(bare.seed, full.seed);
        assert_eq!(bare.delta_k, full.delta_k, "the cadence is mission shape");
        assert!(bare.link.is_inert());
        assert!(bare.disk.iter().all(|p| p.is_inert()));
        assert!(bare.crash.is_none());
        assert!(!bare.bitrot);
        assert!(!bare.deltarot);
        assert!(!bare.wipe);
        assert!(bare.archive.iter().all(|p| p.is_inert()));
    }

    #[test]
    fn the_sweep_exercises_every_new_axis() {
        let mut saw = (false, false, false, false);
        for index in 0..64 {
            let spec = CampaignSpec::generate(99, index, CampaignToggles::default());
            saw.0 |= spec.delta_k > 0;
            saw.1 |= spec.deltarot;
            saw.2 |= spec.wipe;
            saw.3 |= spec.archive.iter().any(|p| !p.is_inert());
        }
        assert!(saw.0, "some campaigns run the delta chain");
        assert!(saw.1, "some campaigns rot a chain record");
        assert!(saw.2, "some campaigns wipe the victim's disk");
        assert!(saw.3, "some campaigns fault the archive tier");
    }

    #[test]
    fn the_masked_sweep_never_draws_the_corrupt_axis() {
        for index in 0..64 {
            let spec = CampaignSpec::generate(99, index, CampaignToggles::default());
            assert_eq!(spec.corrupt, None, "corruption is a regime axis");
        }
    }

    #[test]
    fn byzantine_campaigns_are_deterministic_and_well_formed() {
        for index in 0..8 {
            let a = CampaignSpec::generate_byzantine(5, index);
            let b = CampaignSpec::generate_byzantine(5, index);
            assert_eq!(a, b);
            assert_eq!(a.corrupt, Some(NodeId::P1Act.index()));
            assert_eq!(a.delta_k, 0, "corruption needs the legacy store");
            assert!(a.link.is_inert(), "the only unmasked axis is the flip");
            assert!(a.disk.iter().all(|p| p.is_inert()));
            let crash = a.crash.expect("corruption rides on a crash");
            assert!(crash.epoch >= 2, "node 0 must hold a committed record");
        }
    }

    #[test]
    fn grid_round_count_matches_the_orchestrator_loop() {
        // The orchestrator runs round g when g·Δ < s for some produce s.
        assert_eq!(grid_rounds(5, 1.7), 2);
        assert_eq!(grid_rounds(6, 1.7), 3);
        assert_eq!(grid_rounds(7, 1.7), 4);
        assert_eq!(grid_rounds(9, 1.7), 5);
    }

    #[test]
    fn active_toggles_reflect_the_spec() {
        let mut spec = CampaignSpec::generate(11, 0, CampaignToggles::default());
        spec.disable_link();
        let t = spec.active_toggles();
        assert!(!t.link);
        assert!(t.crash);
        spec.disable_crash();
        assert!(!spec.active_toggles().crash);
        assert!(!spec.active_toggles().bitrot, "bit-rot rides on the crash");
        assert!(
            !spec.active_toggles().deltarot,
            "chain-rot rides on the crash"
        );
    }
}
