//! One campaign end-to-end: launch the live cluster under the spec's fault
//! cocktail, run the mission, replay the same seed and crash schedule in
//! the [`synergy`] simulator, and compare device streams **byte for byte**.
//!
//! Three outcomes:
//!
//! * [`Converged`](CampaignOutcome::Converged) — the streams are
//!   identical: every injected fault was masked exactly as the layering
//!   argument predicts.
//! * [`Diverged`](CampaignOutcome::Diverged) — the cluster completed but
//!   its observable surface differs from the reference; the runner then
//!   [shrinks](shrink_failure) the spec to the smallest fault cocktail
//!   that still reproduces the failure.
//! * [`Aborted`](CampaignOutcome::Aborted) — the orchestrator gave up with
//!   a structured [`ClusterError`](synergy_cluster::ClusterError) (quiesce
//!   deadline, unscheduled death, control timeout). Never a hang: every
//!   orchestrator interaction is deadline-bounded.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use synergy::RegimeVerdict;
use synergy_cluster::{
    simulate_reference_schedule, Cluster, ClusterConfig, ClusterReport, CrashEvent,
};

use crate::plan::CampaignSpec;

/// How a campaign ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CampaignOutcome {
    /// Cluster and simulator device streams are byte-identical.
    Converged,
    /// Both completed, but the observable surfaces differ.
    Diverged {
        /// Payload count from the live cluster.
        cluster_len: usize,
        /// Payload count from the simulator reference.
        sim_len: usize,
        /// Index of the first differing payload, if within both streams.
        first_diff: Option<usize>,
        /// Byte offset of the first differing byte inside that payload
        /// (the length of the shorter payload if one is a prefix of the
        /// other) — together with `first_diff`, the escaped-payload
        /// localization a shrink report carries.
        first_offset: Option<usize>,
    },
    /// The orchestrator aborted with a structured error.
    Aborted {
        /// The rendered [`ClusterError`](synergy_cluster::ClusterError).
        reason: String,
    },
}

impl CampaignOutcome {
    /// Whether the campaign converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, CampaignOutcome::Converged)
    }
}

/// Fault accounting aggregated from a finished cluster mission.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Attempt-level drops injected by the chaos wire (all nodes).
    pub chaos_drops: u64,
    /// Ack frames duplicated by the chaos wire.
    pub chaos_dups: u64,
    /// Frames the link layer gave up on (must be zero for convergence).
    pub chaos_lost: u64,
    /// Retry attempts against transiently failing stable backends.
    pub stable_retries: u64,
    /// Torn writes detected on victim reload.
    pub torn_writes: u64,
    /// Committed records rejected by CRC on reload (bit-rot).
    pub corrupt_records: u64,
    /// Completed kill → restart → rollback cycles.
    pub recoveries: u64,
    /// Rollback distance of each recovery, in grid epochs.
    pub rollback_epochs: Vec<u64>,
    /// Checkpoint objects uploaded to the archive tier (all nodes).
    pub archive_uploads: u64,
    /// Archive PUTs that failed and were retried.
    pub archive_failures: u64,
    /// Records rehydrated from the archive after a wiped disk.
    pub rehydrated: u64,
}

/// Aggregates the fault counters of a finished mission: chaos wire and
/// stable-retry totals from the final status sweep, torn/corrupt counts
/// from the kill reports (the reload observations, counted once per
/// crash rather than re-read from the restarted victim's status).
pub fn fault_summary(report: &ClusterReport) -> FaultSummary {
    let mut s = FaultSummary::default();
    for (_, status) in &report.final_status {
        s.chaos_drops += status.chaos_drops;
        s.chaos_dups += status.chaos_dups;
        s.chaos_lost += status.chaos_lost;
        s.stable_retries += status.stable_retries;
        s.archive_uploads += status.archive_uploads;
        s.archive_failures += status.archive_failures;
        s.rehydrated += status.rehydrated;
    }
    for kill in &report.kills {
        s.torn_writes += kill.reload_torn_writes;
        s.corrupt_records += kill.reload_corrupt_records;
        s.rollback_epochs.push(kill.rollback_epochs);
    }
    s.recoveries = report.kills.len() as u64;
    s
}

/// One campaign's full record.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// The spec that ran.
    pub spec: CampaignSpec,
    /// How it ended.
    pub outcome: CampaignOutcome,
    /// Fault accounting (absent when the mission aborted before reporting).
    pub faults: Option<FaultSummary>,
    /// Wall-clock duration of the cluster run.
    pub wall: Duration,
}

fn cluster_config(spec: &CampaignSpec, node_bin: &Path, run_dir: PathBuf) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        spec.seed,
        spec.steps,
        spec.tb_interval_secs,
        node_bin.to_path_buf(),
        run_dir,
    );
    cfg.crashes.extend(spec.crash);
    cfg.internal_traffic = spec.internal_traffic;
    cfg.link_plan = spec.link.clone();
    cfg.disk_plans = spec.disk.clone();
    cfg.bitrot = spec.bitrot;
    cfg.delta_k = spec.delta_k;
    cfg.archive_plans = spec.archive.clone();
    cfg.wipe = spec.wipe;
    cfg.deltarot = spec.deltarot;
    cfg.transport = spec.transport;
    cfg.corrupt = spec.corrupt;
    cfg
}

/// The [`RegimeVerdict`] class a campaign outcome maps to.
///
/// A converged campaign is the masked regime: every injected fault was
/// absorbed without touching the observable surface. A divergence is a
/// documented escape — corrupted or missing device bytes got past every
/// checker, and the byte diff is the evidence. An abort is detected-and-
/// flagged: the orchestrator saw the failure (quiesce deadline, protocol
/// violation) and stopped with a structured error instead of letting bad
/// output through.
pub fn outcome_verdict(outcome: &CampaignOutcome) -> RegimeVerdict {
    match outcome {
        CampaignOutcome::Converged => RegimeVerdict::Masked,
        CampaignOutcome::Diverged { .. } => RegimeVerdict::DocumentedEscape,
        CampaignOutcome::Aborted { .. } => RegimeVerdict::DetectedAndFlagged,
    }
}

/// A fresh per-run data directory: campaigns (and shrink re-runs of the
/// same campaign) must never share node state on disk.
fn unique_run_dir(data_root: &Path, seed: u64) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    data_root.join(format!(
        "run-{seed}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn compare_streams(cluster: &[Vec<u8>], sim: &[Vec<u8>]) -> CampaignOutcome {
    if cluster == sim {
        return CampaignOutcome::Converged;
    }
    let first_diff = cluster.iter().zip(sim.iter()).position(|(c, s)| c != s);
    let first_offset = first_diff.map(|i| {
        let (c, s) = (&cluster[i], &sim[i]);
        c.iter()
            .zip(s.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| c.len().min(s.len()))
    });
    CampaignOutcome::Diverged {
        cluster_len: cluster.len(),
        sim_len: sim.len(),
        first_diff,
        first_offset,
    }
}

/// Runs one campaign: live cluster, simulator reference, byte comparison.
///
/// The run directory is removed on convergence and kept on failure so a
/// diverged or aborted campaign leaves its node state behind for autopsy.
pub fn run_campaign(spec: &CampaignSpec, node_bin: &Path, data_root: &Path) -> CampaignResult {
    let run_dir = unique_run_dir(data_root, spec.seed);
    let started = Instant::now();
    let report =
        Cluster::launch(cluster_config(spec, node_bin, run_dir.clone())).and_then(Cluster::run);
    let wall = started.elapsed();
    let (outcome, faults) = match report {
        Err(e) => (
            CampaignOutcome::Aborted {
                reason: e.to_string(),
            },
            None,
        ),
        Ok(report) => {
            let crashes: Vec<CrashEvent> = spec.crash.into_iter().collect();
            let reference = simulate_reference_schedule(
                spec.seed,
                spec.steps,
                spec.tb_interval_secs,
                spec.internal_traffic,
                &crashes,
            );
            (
                compare_streams(&report.device_payloads, &reference.device_payloads),
                Some(fault_summary(&report)),
            )
        }
    };
    if outcome.is_converged() {
        let _ = std::fs::remove_dir_all(&run_dir);
    }
    CampaignResult {
        spec: spec.clone(),
        outcome,
        faults,
        wall,
    }
}

/// A minimal reproduction found by [`shrink_failure`].
#[derive(Clone, Debug)]
pub struct ShrinkReport {
    /// The minimal spec that still reproduces the failure class.
    pub spec: CampaignSpec,
    /// The outcome of the minimal spec's run.
    pub outcome: CampaignOutcome,
    /// Fault groups removed during shrinking, in removal order. Each
    /// name matches a `--no-<group>` runner flag, so the minimal
    /// cocktail is reproducible from the report alone: re-run the
    /// original (base seed, index) with these groups disabled.
    pub removed: Vec<&'static str>,
}

/// Greedily shrinks a failing campaign: tries to drop each fault group
/// (link → disk → bit-rot → chain-rot → archive → corrupt → crash) and
/// keeps any removal whose re-run lands in the **same verdict class**
/// ([`outcome_verdict`]) as the original failure — a divergence must
/// still diverge, an abort must still abort. Shrinking that swaps the
/// failure class would "minimize" to a different bug. The delta cadence
/// is mission shape, not a fault group, so a delta-mode failure shrinks
/// while staying in delta mode.
///
/// At most seven re-runs — bounded, like everything else in the runner.
pub fn shrink_failure(
    spec: &CampaignSpec,
    failing_outcome: &CampaignOutcome,
    node_bin: &Path,
    data_root: &Path,
) -> ShrinkReport {
    let class = outcome_verdict(failing_outcome);
    let mut current = spec.clone();
    let mut outcome = failing_outcome.clone();
    let mut removed = Vec::new();
    type Removal = (&'static str, fn(&mut CampaignSpec));
    let removals: [Removal; 7] = [
        ("link", CampaignSpec::disable_link),
        ("disk", CampaignSpec::disable_disk),
        ("bitrot", CampaignSpec::disable_bitrot),
        ("deltarot", CampaignSpec::disable_deltarot),
        ("archive", CampaignSpec::disable_archive),
        ("corrupt", CampaignSpec::disable_corrupt),
        ("crash", CampaignSpec::disable_crash),
    ];
    for (group, remove) in removals {
        let toggles = current.active_toggles();
        let active = match group {
            "link" => toggles.link,
            "disk" => toggles.disk,
            "bitrot" => toggles.bitrot,
            "deltarot" => toggles.deltarot,
            "archive" => toggles.archive,
            "corrupt" => toggles.corrupt,
            _ => toggles.crash,
        };
        if !active {
            continue;
        }
        let mut candidate = current.clone();
        remove(&mut candidate);
        let result = run_campaign(&candidate, node_bin, data_root);
        if outcome_verdict(&result.outcome) == class {
            current = candidate;
            outcome = result.outcome;
            removed.push(group);
        }
    }
    ShrinkReport {
        spec: current,
        outcome,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_cluster::{CrashKind, KillReport, WireStatus};

    fn status(drops: u64, retries: u64) -> WireStatus {
        WireStatus {
            dirty: false,
            delivered: 0,
            at_runs: 0,
            stable_epoch: Some(2),
            torn_writes: 0,
            unacked: 0,
            promoted: false,
            logged: 0,
            net_queued: 0,
            chaos_drops: drops,
            chaos_dups: 1,
            chaos_lost: 0,
            stable_retries: retries,
            corrupt_records: 0,
            backpressure: 0,
            archive_pending: 0,
            archive_uploads: 2,
            archive_failures: 1,
            rehydrated: 5,
        }
    }

    #[test]
    fn fault_summary_aggregates_nodes_and_kills() {
        let report = ClusterReport {
            device_payloads: vec![vec![1], vec![2]],
            kills: vec![KillReport {
                epoch: 2,
                kind: CrashKind::MidRound,
                victim_began_writing: true,
                reload_epoch: Some(1),
                reload_torn_writes: 1,
                reload_corrupt_records: 1,
                wiped: false,
                line: 1,
                rollback_epochs: 1,
                rollbacks: vec![(1, Some(1), 0), (2, Some(1), 0), (3, Some(1), 0)],
                corrupted_epoch: None,
            }],
            final_status: vec![(1, status(4, 2)), (2, status(3, 0)), (3, status(0, 1))],
        };
        let s = fault_summary(&report);
        assert_eq!(s.chaos_drops, 7);
        assert_eq!(s.chaos_dups, 3);
        assert_eq!(s.chaos_lost, 0);
        assert_eq!(s.stable_retries, 3);
        assert_eq!(s.torn_writes, 1);
        assert_eq!(s.corrupt_records, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.rollback_epochs, vec![1]);
        assert_eq!(s.archive_uploads, 6);
        assert_eq!(s.archive_failures, 3);
        assert_eq!(s.rehydrated, 15);
    }

    #[test]
    fn identical_streams_converge() {
        let a = vec![vec![1, 2], vec![3]];
        assert!(compare_streams(&a, &a).is_converged());
    }

    #[test]
    fn divergence_reports_the_first_differing_payload() {
        let cluster = vec![vec![1], vec![0, 9], vec![3]];
        let sim = vec![vec![1], vec![0, 2], vec![3]];
        match compare_streams(&cluster, &sim) {
            CampaignOutcome::Diverged {
                cluster_len,
                sim_len,
                first_diff,
                first_offset,
            } => {
                assert_eq!((cluster_len, sim_len), (3, 3));
                assert_eq!(first_diff, Some(1));
                assert_eq!(first_offset, Some(1));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn payload_length_mismatch_localizes_to_the_shorter_length() {
        let cluster = vec![vec![1, 2, 3]];
        let sim = vec![vec![1, 2]];
        match compare_streams(&cluster, &sim) {
            CampaignOutcome::Diverged {
                first_diff,
                first_offset,
                ..
            } => {
                assert_eq!(first_diff, Some(0));
                assert_eq!(first_offset, Some(2));
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn length_mismatch_diverges_without_an_index_when_prefixes_agree() {
        let cluster = vec![vec![1], vec![2]];
        let sim = vec![vec![1], vec![2], vec![3]];
        match compare_streams(&cluster, &sim) {
            CampaignOutcome::Diverged {
                cluster_len,
                sim_len,
                first_diff,
                first_offset,
            } => {
                assert_eq!((cluster_len, sim_len), (2, 3));
                assert_eq!(first_diff, None);
                assert_eq!(first_offset, None);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn outcomes_map_onto_verdict_classes() {
        assert_eq!(
            outcome_verdict(&CampaignOutcome::Converged),
            RegimeVerdict::Masked
        );
        assert_eq!(
            outcome_verdict(&CampaignOutcome::Diverged {
                cluster_len: 1,
                sim_len: 1,
                first_diff: Some(0),
                first_offset: Some(8),
            }),
            RegimeVerdict::DocumentedEscape
        );
        assert_eq!(
            outcome_verdict(&CampaignOutcome::Aborted {
                reason: "quiesce deadline".into()
            }),
            RegimeVerdict::DetectedAndFlagged
        );
    }
}
