//! The node process the chaos runner spawns: the same node runtime as
//! `synergy-node`, rebuilt inside this package so integration tests (and a
//! standalone install of `synergy-chaos`) have a node binary of their own
//! next to the runner executable.

use std::process::ExitCode;

use synergy_cluster::{run_node, NodeOpts};

fn main() -> ExitCode {
    let opts = match NodeOpts::from_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("synergy-chaos-node: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_node(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("synergy-chaos-node (pid {}): {e}", opts.pid);
            ExitCode::FAILURE
        }
    }
}
