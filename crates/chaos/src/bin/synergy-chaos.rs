//! The fault-campaign runner: generates deterministic campaigns from a
//! base seed, runs each against a live three-process cluster, verifies the
//! device stream byte-for-byte against a simulator reference, and shrinks
//! the first failure to the smallest fault cocktail that reproduces it.
//!
//! ```text
//! synergy-chaos [--seeds <n>] [--base-seed <u64>] [--jobs <n>]
//!               [--data-root <path>] [--node-bin <path>]
//!               [--transport reactor|threads] [--regime]
//!               [--no-link] [--no-disk] [--no-crash] [--no-bitrot]
//!               [--no-deltarot] [--no-archive] [--no-corrupt]
//! ```
//!
//! Exit status is nonzero iff any campaign diverged or aborted. There is
//! no hang mode: every orchestrator interaction is deadline-bounded, so a
//! stuck campaign surfaces as a structured abort in the table.
//!
//! `--regime` switches to the **unmasked-regime** sweep: `--seeds`
//! simulator campaigns per regime (AT catches, seeded escapes, resync
//! violations, Byzantine-lite), each classified into a verdict class, plus
//! live-cluster Byzantine campaigns whose divergence against the simulator
//! reference must document the escape. Here divergence in the Byzantine
//! campaigns is the *expected* outcome; the sweep fails on silent escapes,
//! on a verdict class worse than the regime's design target, or on
//! nondeterminism.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use synergy::RegimeVerdict;
use synergy_chaos::{
    outcome_verdict, regime, run_campaign, shrink_failure, CampaignOutcome, CampaignResult,
    CampaignSpec, CampaignToggles, RegimeKind,
};
use synergy_net::WireKind;

struct Args {
    seeds: u64,
    base_seed: u64,
    jobs: usize,
    data_root: PathBuf,
    node_bin: Option<PathBuf>,
    toggles: CampaignToggles,
    transport: WireKind,
    regime: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        seeds: 8,
        base_seed: 1,
        jobs: 4,
        data_root: std::env::temp_dir().join(format!("synergy-chaos-{}", std::process::id())),
        node_bin: None,
        toggles: CampaignToggles::default(),
        transport: WireKind::default(),
        regime: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => out.seeds = value()?.parse().map_err(|e| format!("{e}"))?,
            "--base-seed" => out.base_seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => {
                out.jobs = value()?.parse().map_err(|e| format!("{e}"))?;
                if out.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--data-root" => out.data_root = PathBuf::from(value()?),
            "--node-bin" => out.node_bin = Some(PathBuf::from(value()?)),
            "--transport" => out.transport = value()?.parse()?,
            "--no-link" => out.toggles.link = false,
            "--no-disk" => out.toggles.disk = false,
            "--no-crash" => out.toggles.crash = false,
            "--no-bitrot" => out.toggles.bitrot = false,
            "--no-deltarot" => out.toggles.deltarot = false,
            "--no-archive" => out.toggles.archive = false,
            "--no-corrupt" => out.toggles.corrupt = false,
            "--regime" => out.regime = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

/// The node binary: an explicit `--node-bin`, else a sibling of this
/// executable — `synergy-node` from a full workspace build, falling back
/// to this package's own `synergy-chaos-node`.
fn node_bin(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return p
            .exists()
            .then_some(p.clone())
            .ok_or_else(|| format!("--node-bin {} does not exist", p.display()));
    }
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    for name in ["synergy-node", "synergy-chaos-node"] {
        let sibling = me.with_file_name(name);
        if sibling.exists() {
            return Ok(sibling);
        }
    }
    Err(format!(
        "no node binary (synergy-node or synergy-chaos-node) next to {}",
        me.display()
    ))
}

fn outcome_cell(outcome: &CampaignOutcome) -> String {
    match outcome {
        CampaignOutcome::Converged => "converged".to_string(),
        CampaignOutcome::Diverged {
            cluster_len,
            sim_len,
            first_diff,
            first_offset,
        } => match (first_diff, first_offset) {
            (Some(i), Some(o)) => {
                format!("DIVERGED at payload {i} byte +{o} ({cluster_len} vs {sim_len})")
            }
            (Some(i), None) => format!("DIVERGED at payload {i} ({cluster_len} vs {sim_len})"),
            _ => format!("DIVERGED on length ({cluster_len} vs {sim_len})"),
        },
        CampaignOutcome::Aborted { reason } => format!("ABORTED: {reason}"),
    }
}

fn print_result(index: u64, r: &CampaignResult) {
    let faults = r
        .faults
        .as_ref()
        .map(|f| {
            format!(
                "drops={} dups={} lost={} retries={} torn={} corrupt={} uploads={} rehydrated={} rollbacks={:?}",
                f.chaos_drops,
                f.chaos_dups,
                f.chaos_lost,
                f.stable_retries,
                f.torn_writes,
                f.corrupt_records,
                f.archive_uploads,
                f.rehydrated,
                f.rollback_epochs
            )
        })
        .unwrap_or_else(|| "-".to_string());
    println!(
        "campaign {index:>3}  seed {:<6} steps {}  [{}]  {:<9}  {}  ({} ms)",
        r.spec.seed,
        r.spec.steps,
        r.spec.cocktail(),
        if r.outcome.is_converged() {
            "converged"
        } else {
            "FAILED"
        },
        faults,
        r.wall.as_millis()
    );
    if !r.outcome.is_converged() {
        println!("             -> {}", outcome_cell(&r.outcome));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("synergy-chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node_bin = match node_bin(args.node_bin.clone()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("synergy-chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.data_root) {
        eprintln!("synergy-chaos: create {}: {e}", args.data_root.display());
        return ExitCode::FAILURE;
    }
    if args.regime {
        return run_regime_mode(&args, &node_bin);
    }
    println!(
        "sweep: {} campaigns from base seed {}, {} jobs, {} wire, node binary {}",
        args.seeds,
        args.base_seed,
        args.jobs,
        args.transport,
        node_bin.display()
    );

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, CampaignResult)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..args.jobs.min(args.seeds.max(1) as usize) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= args.seeds {
                    break;
                }
                let mut spec = CampaignSpec::generate(args.base_seed, index, args.toggles);
                spec.transport = args.transport;
                let result = run_campaign(&spec, &node_bin, &args.data_root);
                print_result(index, &result);
                results.lock().expect("results lock").push((index, result));
            });
        }
    });
    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(index, _)| *index);

    let converged = results
        .iter()
        .filter(|(_, r)| r.outcome.is_converged())
        .count();
    println!(
        "\nsweep summary: {converged}/{} campaigns converged (device streams byte-identical \
         to the simulator reference)",
        results.len()
    );

    let first_failure = results.iter().find(|(_, r)| !r.outcome.is_converged());
    if let Some((index, failed)) = first_failure {
        println!(
            "\nfirst divergent seed: {} (campaign {index}); shrinking the fault cocktail…",
            failed.spec.seed
        );
        let shrink = shrink_failure(&failed.spec, &failed.outcome, &node_bin, &args.data_root);
        print_shrink_report(args.base_seed, *index, &shrink);
        println!(
            "node state kept under {} for autopsy",
            args.data_root.display()
        );
        return ExitCode::FAILURE;
    }
    let _ = std::fs::remove_dir_all(&args.data_root);
    ExitCode::SUCCESS
}

/// The unmasked-regime sweep: four simulator regime lattices (one sweep
/// per [`RegimeKind`], `--seeds` campaigns each, all four in parallel),
/// then live-cluster Byzantine campaigns whose divergence against the
/// simulator reference is the expected, documented escape.
fn run_regime_mode(args: &Args, node_bin: &std::path::Path) -> ExitCode {
    println!(
        "unmasked-regime sweep: {} campaigns per regime from base seed {}",
        args.seeds, args.base_seed
    );
    let mut failed = false;

    let sweeps: Vec<regime::RegimeSweep> = std::thread::scope(|scope| {
        let handles: Vec<_> = RegimeKind::ALL
            .iter()
            .map(|&kind| scope.spawn(move || regime::run_sweep(kind, args.base_seed, args.seeds)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("regime sweep thread"))
            .collect()
    });

    println!(
        "\n{:<10} {:>5} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>12} {:>11}",
        "regime",
        "runs",
        "masked",
        "recovered",
        "flagged",
        "escaped",
        "catches",
        "misses",
        "latency(s)",
        "escape-rate"
    );
    for sweep in &sweeps {
        let s = sweep.summary();
        println!(
            "{:<10} {:>5} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>12} {:>11.5}",
            s.kind.name(),
            s.runs,
            s.masked,
            s.recovered,
            s.flagged,
            s.escaped,
            s.at_catches,
            s.at_escapes,
            s.mean_detection_latency_secs
                .map_or_else(|| "-".to_string(), |l| format!("{l:.3}")),
            s.escape_rate
        );
        let silent = sweep.silent_escape_rows();
        if !silent.is_empty() {
            eprintln!(
                "FAIL [{}]: silent escapes — AT misses without oracle localization in campaigns {silent:?}",
                sweep.kind
            );
            failed = true;
        }
        let worse = sweep.worse_than_expected_rows();
        if !worse.is_empty() {
            eprintln!(
                "FAIL [{}]: campaigns {worse:?} classified worse than the design target {}",
                sweep.kind,
                sweep.kind.expected()
            );
            failed = true;
        }
        if let Err(index) = sweep.recheck_determinism() {
            eprintln!(
                "FAIL [{}]: campaign {index} did not reproduce bit-for-bit on replay",
                sweep.kind
            );
            failed = true;
        }
    }

    // The live-cluster leg: Byzantine-lite campaigns where the cluster's
    // divergence from the simulator reference *is* the documented escape.
    println!("\nlive-cluster Byzantine campaigns (expected class: documented-escape)");
    for index in 0..3u64 {
        let mut spec = CampaignSpec::generate_byzantine(args.base_seed, index);
        spec.transport = args.transport;
        let result = run_campaign(&spec, node_bin, &args.data_root);
        let verdict = outcome_verdict(&result.outcome);
        println!(
            "byzantine {index}  seed {:<6} steps {}  [{}]  {}  -> {}  ({} ms)",
            spec.seed,
            spec.steps,
            spec.cocktail(),
            verdict,
            outcome_cell(&result.outcome),
            result.wall.as_millis()
        );
        if verdict != RegimeVerdict::DocumentedEscape {
            eprintln!(
                "FAIL [byzantine-cluster {index}]: expected documented-escape, got {verdict}"
            );
            failed = true;
        }
    }

    if failed {
        println!(
            "\nregime sweep FAILED; node state kept under {} for autopsy",
            args.data_root.display()
        );
        ExitCode::FAILURE
    } else {
        println!("\nregime sweep passed: every campaign classified, no silent escapes");
        let _ = std::fs::remove_dir_all(&args.data_root);
        ExitCode::SUCCESS
    }
}

/// The minimal-cocktail report. Everything needed to reproduce the failure
/// without this process's state: the (base seed, campaign index) pair that
/// regenerates the spec, the `--no-*` flags matching the removed groups,
/// the verdict class the failure belongs to, and — for divergences — the
/// first divergent payload and byte offset.
fn print_shrink_report(base_seed: u64, index: u64, shrink: &synergy_chaos::ShrinkReport) {
    println!(
        "minimal failing spec: seed {} steps {} [{}]",
        shrink.spec.seed,
        shrink.spec.steps,
        shrink.spec.cocktail()
    );
    println!(
        "verdict class: {}  (preserved while shrinking)",
        outcome_verdict(&shrink.outcome)
    );
    println!("minimal outcome: {}", outcome_cell(&shrink.outcome));
    if let CampaignOutcome::Diverged {
        first_diff: Some(i),
        first_offset: Some(o),
        ..
    } = shrink.outcome
    {
        println!("first divergent/escaped payload: msg[{i}]+{o}");
    }
    let flags = if shrink.removed.is_empty() {
        "(none — every fault group is load-bearing)".to_string()
    } else {
        shrink
            .removed
            .iter()
            .map(|g| format!("--no-{g}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!(
        "reproduce: --base-seed {base_seed} --seeds {} {flags}  (campaign {index})",
        index + 1
    );
}
