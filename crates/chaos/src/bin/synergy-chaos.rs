//! The fault-campaign runner: generates deterministic campaigns from a
//! base seed, runs each against a live three-process cluster, verifies the
//! device stream byte-for-byte against a simulator reference, and shrinks
//! the first failure to the smallest fault cocktail that reproduces it.
//!
//! ```text
//! synergy-chaos [--seeds <n>] [--base-seed <u64>] [--jobs <n>]
//!               [--data-root <path>] [--node-bin <path>]
//!               [--transport reactor|threads]
//!               [--no-link] [--no-disk] [--no-crash] [--no-bitrot]
//!               [--no-deltarot] [--no-archive]
//! ```
//!
//! Exit status is nonzero iff any campaign diverged or aborted. There is
//! no hang mode: every orchestrator interaction is deadline-bounded, so a
//! stuck campaign surfaces as a structured abort in the table.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use synergy_chaos::{
    run_campaign, shrink_failure, CampaignOutcome, CampaignResult, CampaignSpec, CampaignToggles,
};
use synergy_net::WireKind;

struct Args {
    seeds: u64,
    base_seed: u64,
    jobs: usize,
    data_root: PathBuf,
    node_bin: Option<PathBuf>,
    toggles: CampaignToggles,
    transport: WireKind,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        seeds: 8,
        base_seed: 1,
        jobs: 4,
        data_root: std::env::temp_dir().join(format!("synergy-chaos-{}", std::process::id())),
        node_bin: None,
        toggles: CampaignToggles::default(),
        transport: WireKind::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--seeds" => out.seeds = value()?.parse().map_err(|e| format!("{e}"))?,
            "--base-seed" => out.base_seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--jobs" => {
                out.jobs = value()?.parse().map_err(|e| format!("{e}"))?;
                if out.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--data-root" => out.data_root = PathBuf::from(value()?),
            "--node-bin" => out.node_bin = Some(PathBuf::from(value()?)),
            "--transport" => out.transport = value()?.parse()?,
            "--no-link" => out.toggles.link = false,
            "--no-disk" => out.toggles.disk = false,
            "--no-crash" => out.toggles.crash = false,
            "--no-bitrot" => out.toggles.bitrot = false,
            "--no-deltarot" => out.toggles.deltarot = false,
            "--no-archive" => out.toggles.archive = false,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(out)
}

/// The node binary: an explicit `--node-bin`, else a sibling of this
/// executable — `synergy-node` from a full workspace build, falling back
/// to this package's own `synergy-chaos-node`.
fn node_bin(explicit: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(p) = explicit {
        return p
            .exists()
            .then_some(p.clone())
            .ok_or_else(|| format!("--node-bin {} does not exist", p.display()));
    }
    let me = std::env::current_exe().map_err(|e| e.to_string())?;
    for name in ["synergy-node", "synergy-chaos-node"] {
        let sibling = me.with_file_name(name);
        if sibling.exists() {
            return Ok(sibling);
        }
    }
    Err(format!(
        "no node binary (synergy-node or synergy-chaos-node) next to {}",
        me.display()
    ))
}

fn outcome_cell(outcome: &CampaignOutcome) -> String {
    match outcome {
        CampaignOutcome::Converged => "converged".to_string(),
        CampaignOutcome::Diverged {
            cluster_len,
            sim_len,
            first_diff,
        } => match first_diff {
            Some(i) => format!("DIVERGED at payload {i} ({cluster_len} vs {sim_len})"),
            None => format!("DIVERGED on length ({cluster_len} vs {sim_len})"),
        },
        CampaignOutcome::Aborted { reason } => format!("ABORTED: {reason}"),
    }
}

fn print_result(index: u64, r: &CampaignResult) {
    let faults = r
        .faults
        .as_ref()
        .map(|f| {
            format!(
                "drops={} dups={} lost={} retries={} torn={} corrupt={} uploads={} rehydrated={} rollbacks={:?}",
                f.chaos_drops,
                f.chaos_dups,
                f.chaos_lost,
                f.stable_retries,
                f.torn_writes,
                f.corrupt_records,
                f.archive_uploads,
                f.rehydrated,
                f.rollback_epochs
            )
        })
        .unwrap_or_else(|| "-".to_string());
    println!(
        "campaign {index:>3}  seed {:<6} steps {}  [{}]  {:<9}  {}  ({} ms)",
        r.spec.seed,
        r.spec.steps,
        r.spec.cocktail(),
        if r.outcome.is_converged() {
            "converged"
        } else {
            "FAILED"
        },
        faults,
        r.wall.as_millis()
    );
    if !r.outcome.is_converged() {
        println!("             -> {}", outcome_cell(&r.outcome));
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("synergy-chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    let node_bin = match node_bin(args.node_bin.clone()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("synergy-chaos: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.data_root) {
        eprintln!("synergy-chaos: create {}: {e}", args.data_root.display());
        return ExitCode::FAILURE;
    }
    println!(
        "sweep: {} campaigns from base seed {}, {} jobs, {} wire, node binary {}",
        args.seeds,
        args.base_seed,
        args.jobs,
        args.transport,
        node_bin.display()
    );

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, CampaignResult)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..args.jobs.min(args.seeds.max(1) as usize) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= args.seeds {
                    break;
                }
                let mut spec = CampaignSpec::generate(args.base_seed, index, args.toggles);
                spec.transport = args.transport;
                let result = run_campaign(&spec, &node_bin, &args.data_root);
                print_result(index, &result);
                results.lock().expect("results lock").push((index, result));
            });
        }
    });
    let mut results = results.into_inner().expect("results lock");
    results.sort_by_key(|(index, _)| *index);

    let converged = results
        .iter()
        .filter(|(_, r)| r.outcome.is_converged())
        .count();
    println!(
        "\nsweep summary: {converged}/{} campaigns converged (device streams byte-identical \
         to the simulator reference)",
        results.len()
    );

    let first_failure = results.iter().find(|(_, r)| !r.outcome.is_converged());
    if let Some((index, failed)) = first_failure {
        println!(
            "\nfirst divergent seed: {} (campaign {index}); shrinking the fault cocktail…",
            failed.spec.seed
        );
        let (minimal, outcome) =
            shrink_failure(&failed.spec, &failed.outcome, &node_bin, &args.data_root);
        println!(
            "minimal failing spec: seed {} steps {} [{}]",
            minimal.seed,
            minimal.steps,
            minimal.cocktail()
        );
        println!("minimal outcome: {}", outcome_cell(&outcome));
        println!(
            "node state kept under {} for autopsy",
            args.data_root.display()
        );
        return ExitCode::FAILURE;
    }
    let _ = std::fs::remove_dir_all(&args.data_root);
    ExitCode::SUCCESS
}
