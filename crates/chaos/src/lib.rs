//! `synergy-chaos` — a deterministic fault-campaign runner for the live
//! three-process cluster.
//!
//! A *campaign* is a seeded mission plus a seeded fault cocktail: link
//! faults (drops, ack duplication, bounded delays, timed partitions) on
//! every node's data plane, transient stable-storage faults under the TB
//! runtime, read-back bit-rot in a victim's checkpoint directory, and a
//! crash scheduled at a protocol-relative instant
//! ([`CrashKind`](synergy_cluster::CrashKind)). Everything below the
//! protocol layer is *masked* — retransmission over drops, bounded retry
//! over fsync failures, CRC-skip over bit-rot — so every completed
//! campaign must produce a device stream **byte-identical** to a
//! [`synergy`] simulator reference of the same seed and crash schedule.
//!
//! The runner executes campaigns for consecutive seeds, compares each
//! device stream against its reference, and on the first divergence (or
//! structured abort) *shrinks* the failing campaign by greedily disabling
//! fault groups, reporting the minimal failing spec alongside the seed.
//!
//! Layers:
//!
//! * [`plan`] — deterministic campaign generation from a base seed.
//! * [`campaign`] — one campaign end-to-end (cluster run + simulator
//!   reference + byte comparison), fault accounting, and the shrinker.
//! * [`regime`] — unmasked-regime sweeps: seeded simulator campaigns per
//!   fault regime (AT catches, seeded escapes, clock-resync violations,
//!   Byzantine-lite nodes), each classified into a
//!   [`RegimeVerdict`](synergy::RegimeVerdict).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod plan;
pub mod regime;

pub use campaign::{
    outcome_verdict, run_campaign, shrink_failure, CampaignOutcome, CampaignResult, FaultSummary,
    ShrinkReport,
};
pub use plan::{CampaignSpec, CampaignToggles};
pub use regime::{RegimeKind, RegimeRow, RegimeSummary, RegimeSweep};
