//! Unmasked-regime sweeps: seeded simulator campaigns per fault regime.
//!
//! The cluster sweep ([`campaign`](crate::campaign)) checks that *masked*
//! faults leave the device stream byte-identical to the reference. This
//! module sweeps the four ways a run can **leave** the masked regime
//! (DESIGN.md §15) and verifies that each campaign lands in exactly one
//! [`RegimeVerdict`] class with its evidence attached:
//!
//! * [`Caught`](RegimeKind::Caught) — bad messages at full AT coverage:
//!   the acceptance test detects, the shadow takes over.
//! * [`Escape`](RegimeKind::Escape) — bad messages under a seeded AT
//!   false-negative knob: escapes are counted and localized against an
//!   oracle run, never silent.
//! * [`Resync`](RegimeKind::Resync) — a clock resynchronization leaves one
//!   node outside the δ envelope; any later epoch line is provably stale.
//! * [`Byzantine`](RegimeKind::Byzantine) — a node serves value-flipped
//!   checkpoints behind valid CRCs; the restored lie surfaces only in the
//!   oracle diff.
//!
//! Every campaign is fully determined by `(base_seed, index)`: parameters
//! come from the labelled `"regime-campaign-<kind>"` stream, the mission
//! seed is `base_seed + index`, and re-running any row reproduces its
//! report bit for bit — which [`RegimeSweep::recheck_determinism`] asserts
//! by replaying a row.

use synergy::{run_regime_mission, HardwareFault, RegimeReport, RegimeVerdict, SystemConfig};
use synergy_des::{DetRng, SimDuration, SimTime};

/// Which unmasked regime a sweep exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegimeKind {
    /// Bad messages at full acceptance-test coverage (detected takeover).
    Caught,
    /// Bad messages under a lowered AT coverage knob (documented escapes).
    Escape,
    /// Clock-resync violations of the δ bound (flagged, epoch line stale).
    Resync,
    /// Byzantine-lite valid-CRC checkpoint corruption (documented escape).
    Byzantine,
}

impl RegimeKind {
    /// Every regime, in sweep order.
    pub const ALL: [RegimeKind; 4] = [
        RegimeKind::Caught,
        RegimeKind::Escape,
        RegimeKind::Resync,
        RegimeKind::Byzantine,
    ];

    /// Stable machine-readable name (also the RNG stream suffix).
    pub fn name(self) -> &'static str {
        match self {
            RegimeKind::Caught => "caught",
            RegimeKind::Escape => "escape",
            RegimeKind::Resync => "resync",
            RegimeKind::Byzantine => "byzantine",
        }
    }

    /// The verdict class the regime is designed to drive runs into. Not
    /// every seed reaches it (a low-rate draw can mask), but no seed may
    /// land in a *worse* class than this.
    pub fn expected(self) -> RegimeVerdict {
        match self {
            RegimeKind::Caught => RegimeVerdict::DetectedAndRecovered,
            RegimeKind::Escape => RegimeVerdict::DocumentedEscape,
            RegimeKind::Resync => RegimeVerdict::DetectedAndFlagged,
            RegimeKind::Byzantine => RegimeVerdict::DocumentedEscape,
        }
    }

    /// Builds campaign `index` of the sweep rooted at `base_seed`: a
    /// 120-second mission (60 internal + 6 external msgs/min) with this
    /// regime's axes drawn from the `"regime-campaign-<name>"` stream.
    pub fn config(self, base_seed: u64, index: u64) -> SystemConfig {
        let root = DetRng::new(base_seed);
        let mut rng = root.stream_indexed(&format!("regime-campaign-{}", self.name()), index);
        let builder = SystemConfig::builder()
            .seed(base_seed + index)
            .duration_secs(120.0)
            .internal_rate_per_min(60.0)
            .external_rate_per_min(6.0)
            .trace(false);
        match self {
            RegimeKind::Caught => {
                let after = rng.gen_range(30.0..60.0);
                let rate = rng.gen_range(0.5..1.0);
                builder.bad_messages(after, rate).at_coverage(1.0).build()
            }
            RegimeKind::Escape => {
                let after = rng.gen_range(30.0..60.0);
                let rate = rng.gen_range(0.3..0.8);
                let coverage = rng.gen_range(0.0..0.5);
                builder
                    .bad_messages(after, rate)
                    .at_coverage(coverage)
                    .build()
            }
            RegimeKind::Resync => {
                let after = rng.gen_range(30.0..60.0);
                let excess = SimDuration::from_micros(rng.gen_range(200u64..=800));
                let node = rng.gen_range(0u64..3) as usize;
                builder.resync_violation(after, excess, node).build()
            }
            RegimeKind::Byzantine => {
                let node = rng.gen_range(0u64..3) as usize;
                let at = rng.gen_range(30.0..50.0);
                let crash_at = at + rng.gen_range(10.0..30.0);
                builder
                    .byzantine_flip(at, node)
                    .hardware_fault(HardwareFault {
                        at: SimTime::from_secs_f64(crash_at),
                        node,
                    })
                    .build()
            }
        }
    }
}

impl std::fmt::Display for RegimeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One campaign of a sweep: its index, the mission seed it resolved to,
/// and the classified report.
#[derive(Clone, Debug, PartialEq)]
pub struct RegimeRow {
    /// Campaign index within the sweep.
    pub index: u64,
    /// Mission seed (`base_seed + index`).
    pub seed: u64,
    /// The classified regime report.
    pub report: RegimeReport,
}

/// A finished sweep of one regime.
#[derive(Clone, Debug)]
pub struct RegimeSweep {
    /// The regime swept.
    pub kind: RegimeKind,
    /// Root seed of the sweep.
    pub base_seed: u64,
    /// One row per campaign, in index order.
    pub rows: Vec<RegimeRow>,
}

/// Runs one campaign of a regime sweep.
pub fn run_row(kind: RegimeKind, base_seed: u64, index: u64) -> RegimeRow {
    let cfg = kind.config(base_seed, index);
    RegimeRow {
        index,
        seed: cfg.seed,
        report: run_regime_mission(&cfg),
    }
}

/// Runs `count` campaigns of `kind` rooted at `base_seed`.
pub fn run_sweep(kind: RegimeKind, base_seed: u64, count: u64) -> RegimeSweep {
    RegimeSweep {
        kind,
        base_seed,
        rows: (0..count).map(|i| run_row(kind, base_seed, i)).collect(),
    }
}

impl RegimeSweep {
    /// Aggregates the sweep into per-verdict counts and rates.
    pub fn summary(&self) -> RegimeSummary {
        let mut s = RegimeSummary {
            kind: self.kind,
            runs: self.rows.len() as u64,
            ..RegimeSummary::default_for(self.kind)
        };
        let mut latencies = Vec::new();
        for row in &self.rows {
            let r = &row.report;
            match r.verdict {
                RegimeVerdict::Masked => s.masked += 1,
                RegimeVerdict::DetectedAndRecovered => s.recovered += 1,
                RegimeVerdict::DetectedAndFlagged => s.flagged += 1,
                RegimeVerdict::DocumentedEscape => s.escaped += 1,
            }
            s.at_catches += r.at_catches;
            s.at_escapes += r.at_escapes;
            s.escapes_documented += r.escapes.len() as u64;
            s.resync_violations += r.resync_violations;
            s.stale_epoch_lines += r.stale_epoch_lines;
            s.byz_corruptions += r.byz_corruptions;
            s.device_messages += r.device_messages as u64;
            if let Some(lat) = r.detection_latency_secs {
                latencies.push(lat);
            }
        }
        if !latencies.is_empty() {
            s.mean_detection_latency_secs =
                Some(latencies.iter().sum::<f64>() / latencies.len() as f64);
        }
        if s.device_messages > 0 {
            s.escape_rate = s.at_escapes as f64 / s.device_messages as f64;
        }
        s
    }

    /// Row indices whose escapes went **silent**: the AT missed more
    /// corrupt payloads than the oracle diff documented. Must be empty —
    /// every escape is counted and localized, or the sweep fails.
    pub fn silent_escape_rows(&self) -> Vec<u64> {
        self.rows
            .iter()
            .filter(|row| (row.report.escapes.len() as u64) < row.report.at_escapes)
            .map(|row| row.index)
            .collect()
    }

    /// Row indices that classified into a verdict class *worse* than the
    /// regime's design target ([`RegimeKind::expected`]). Milder is fine
    /// (a low-rate draw can stay masked); worse means the lattice leaks.
    pub fn worse_than_expected_rows(&self) -> Vec<u64> {
        let ceiling = self.kind.expected();
        self.rows
            .iter()
            .filter(|row| row.report.verdict > ceiling)
            .map(|row| row.index)
            .collect()
    }

    /// Replays row 0 from scratch and checks it reproduces bit for bit.
    /// Returns the offending index on mismatch.
    pub fn recheck_determinism(&self) -> Result<(), u64> {
        match self.rows.first() {
            None => Ok(()),
            Some(row) => {
                let replay = run_row(self.kind, self.base_seed, row.index);
                if replay == *row {
                    Ok(())
                } else {
                    Err(row.index)
                }
            }
        }
    }
}

/// Aggregated counts for one regime sweep (the chaos table row and the
/// bench `"regimes"` section both render from this).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegimeSummary {
    /// The regime swept.
    pub kind: RegimeKind,
    /// Campaigns run.
    pub runs: u64,
    /// Campaigns that stayed fully masked.
    pub masked: u64,
    /// Campaigns classified detected-and-recovered.
    pub recovered: u64,
    /// Campaigns classified detected-and-flagged.
    pub flagged: u64,
    /// Campaigns classified documented-escape.
    pub escaped: u64,
    /// Total corrupt payloads the AT caught.
    pub at_catches: u64,
    /// Total corrupt payloads the AT missed.
    pub at_escapes: u64,
    /// Total escapes localized against oracle device streams.
    pub escapes_documented: u64,
    /// Total δ-bound violations flagged.
    pub resync_violations: u64,
    /// Total recoveries whose epoch line was provably stale.
    pub stale_epoch_lines: u64,
    /// Total valid-CRC checkpoint corruptions served.
    pub byz_corruptions: u64,
    /// Total device messages across observed runs.
    pub device_messages: u64,
    /// Mean true-time latency from regime activation to first AT catch,
    /// over the campaigns that caught anything.
    pub mean_detection_latency_secs: Option<f64>,
    /// AT escapes per delivered device message.
    pub escape_rate: f64,
}

impl RegimeSummary {
    fn default_for(kind: RegimeKind) -> Self {
        RegimeSummary {
            kind,
            runs: 0,
            masked: 0,
            recovered: 0,
            flagged: 0,
            escaped: 0,
            at_catches: 0,
            at_escapes: 0,
            escapes_documented: 0,
            resync_violations: 0,
            stale_epoch_lines: 0,
            byz_corruptions: 0,
            device_messages: 0,
            mean_detection_latency_secs: None,
            escape_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_deterministic_per_index() {
        for kind in RegimeKind::ALL {
            let a = kind.config(11, 3);
            let b = kind.config(11, 3);
            assert_eq!(a.regime, b.regime, "{kind} regime plan must reproduce");
            assert_eq!(a.seed, 14);
            assert!(a.regime.is_unmasked(), "{kind} must arm an axis");
        }
    }

    #[test]
    fn generated_configs_pass_plan_validation() {
        for kind in RegimeKind::ALL {
            assert_eq!(kind.config(9, 1).validate(), Ok(()));
        }
    }

    #[test]
    fn distinct_kinds_arm_distinct_axes() {
        let caught = RegimeKind::Caught.config(5, 0).regime;
        assert!(caught.bad_messages.is_some() && caught.byzantine.is_none());
        let escape = RegimeKind::Escape.config(5, 0).regime;
        let cov = escape.at_coverage.expect("escape arms the coverage knob");
        assert!(cov.coverage < 0.5);
        let resync = RegimeKind::Resync.config(5, 0).regime;
        assert!(resync.resync_violation.is_some() && resync.bad_messages.is_none());
        let byz = RegimeKind::Byzantine.config(5, 0);
        let plan = byz.regime.byzantine.expect("byzantine arms the flip");
        // The paired hardware fault must hit the corrupted node, or the lie
        // is never restored.
        assert_eq!(byz.faults.hardware.len(), 1);
        assert_eq!(byz.faults.hardware[0].node, plan.node);
        assert!(byz.faults.hardware[0].at > plan.at);
    }

    #[test]
    fn small_caught_sweep_detects_and_never_escapes() {
        let sweep = run_sweep(RegimeKind::Caught, 7, 4);
        let s = sweep.summary();
        assert_eq!(s.runs, 4);
        assert!(s.at_catches > 0, "full coverage must catch something");
        assert_eq!(s.at_escapes, 0, "full coverage never escapes");
        assert!(sweep.silent_escape_rows().is_empty());
        assert!(sweep.worse_than_expected_rows().is_empty());
        assert_eq!(sweep.recheck_determinism(), Ok(()));
    }

    #[test]
    fn small_escape_sweep_documents_every_miss() {
        let sweep = run_sweep(RegimeKind::Escape, 7, 4);
        let s = sweep.summary();
        assert!(s.at_escapes > 0, "a sub-0.5 coverage sweep must miss");
        assert!(
            s.escapes_documented >= s.at_escapes,
            "every AT miss must be localized against the oracle"
        );
        assert!(sweep.silent_escape_rows().is_empty());
    }
}
