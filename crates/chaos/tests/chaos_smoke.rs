//! Deterministic chaos smoke: a small fixed-seed campaign set against the
//! live cluster, covering every crash kind across the rotation, each
//! campaign's device stream byte-checked against the simulator reference.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use synergy::RegimeVerdict;
use synergy_chaos::{
    outcome_verdict, run_campaign, CampaignOutcome, CampaignSpec, CampaignToggles,
};

fn unique_dir(label: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "synergy-chaos-smoke-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create data root");
    dir
}

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_synergy-chaos-node"))
}

/// The first three campaigns of the fixed smoke sweep (base seed 7) cover
/// MidRound, RoundStart, and DoubleKill; each must converge byte-for-byte.
#[test]
fn fixed_seed_campaigns_converge_on_the_reference_stream() {
    let data_root = unique_dir("sweep");
    let node_bin = node_bin();
    for index in 0..3 {
        let spec = CampaignSpec::generate(7, index, CampaignToggles::default());
        let result = run_campaign(&spec, &node_bin, &data_root);
        assert!(
            result.outcome.is_converged(),
            "campaign {index} (seed {}, [{}]) failed: {:?}",
            spec.seed,
            spec.cocktail(),
            result.outcome
        );
        let faults = result.faults.expect("completed campaigns report faults");
        assert_eq!(faults.chaos_lost, 0, "masked regime never exhausts retries");
        assert_eq!(faults.recoveries, 1, "each campaign schedules one crash");
    }
    let _ = std::fs::remove_dir_all(&data_root);
}

/// With every fault group toggled off the campaign degenerates to a clean
/// mission and still converges — the runner itself adds no noise.
#[test]
fn fault_free_campaign_converges() {
    let data_root = unique_dir("clean");
    let spec = CampaignSpec::generate(
        7,
        0,
        CampaignToggles {
            link: false,
            disk: false,
            crash: false,
            bitrot: false,
            deltarot: false,
            archive: false,
            corrupt: false,
        },
    );
    let result = run_campaign(&spec, &node_bin(), &data_root);
    assert!(
        result.outcome.is_converged(),
        "clean campaign failed: {:?}",
        result.outcome
    );
    let faults = result.faults.expect("fault summary present");
    assert_eq!(faults.chaos_drops, 0);
    assert_eq!(faults.recoveries, 0);
    let _ = std::fs::remove_dir_all(&data_root);
}

/// A Byzantine-lite campaign must *diverge* from the reference — the
/// global rollback restores node 0's value-flipped checkpoint, and every
/// external the active produces afterwards carries the lie to the device.
/// The divergence localizes to the accumulator bytes (offset 8 of the
/// 17-byte external payload) and classifies as a documented escape.
#[test]
fn byzantine_campaign_documents_the_escape() {
    let data_root = unique_dir("byz");
    let spec = CampaignSpec::generate_byzantine(7, 0);
    let result = run_campaign(&spec, &node_bin(), &data_root);
    match &result.outcome {
        CampaignOutcome::Diverged {
            first_diff,
            first_offset,
            ..
        } => {
            assert!(first_diff.is_some(), "the lie reaches a shared payload");
            assert_eq!(*first_offset, Some(8), "acc bytes start at offset 8");
        }
        other => panic!("expected the escape to diverge, got {other:?}"),
    }
    assert_eq!(
        outcome_verdict(&result.outcome),
        RegimeVerdict::DocumentedEscape
    );
    let _ = std::fs::remove_dir_all(&data_root);
}
