//! Selecting between the two live-wire transports.
//!
//! Both speak the same wire format (see [`frame`](crate::frame)), so a
//! migrating cluster can mix them; [`LiveWire`] lets the cluster runtime
//! pick one by configuration instead of by type.

use core::fmt;
use std::net::{SocketAddr, ToSocketAddrs};
use std::str::FromStr;
use std::sync::mpsc::Receiver;

use crate::message::{Endpoint, Envelope};
use crate::reactor::{ReactorTransport, SendError, WirePolicy, WireStats};
use crate::tcp::{GaveUpRoute, TcpTransport};
use crate::transport::Transport;

/// Which live-wire transport a cluster process runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WireKind {
    /// The sharded nonblocking [`ReactorTransport`]: fixed thread count,
    /// coalesced writes, piggybacked acks, typed backpressure.
    #[default]
    Reactor,
    /// The legacy thread-per-route [`TcpTransport`], kept through the
    /// migration window so the two implementations can be diffed under
    /// identical fault campaigns.
    Threads,
}

impl FromStr for WireKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reactor" => Ok(WireKind::Reactor),
            "threads" => Ok(WireKind::Threads),
            other => Err(format!("unknown transport {other:?} (reactor|threads)")),
        }
    }
}

impl fmt::Display for WireKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WireKind::Reactor => "reactor",
            WireKind::Threads => "threads",
        })
    }
}

/// One of the two live-wire transports, chosen at bind time. The shared
/// surface (`register`, `set_route`, `gave_up_routes`, `try_send`,
/// `shutdown`) delegates; [`try_send`](Self::try_send) on the threaded
/// transport never reports backpressure because its queues are unbounded —
/// exactly the behaviour the reactor replaces.
#[derive(Debug)]
pub enum LiveWire {
    /// The sharded nonblocking reactor.
    Reactor(ReactorTransport),
    /// The thread-per-route transport.
    Threads(TcpTransport),
}

impl LiveWire {
    /// Binds a transport of `kind` on `addr` (port 0 for OS-assigned).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(kind: WireKind, addr: impl ToSocketAddrs) -> std::io::Result<LiveWire> {
        match kind {
            WireKind::Reactor => ReactorTransport::bind(addr).map(LiveWire::Reactor),
            WireKind::Threads => TcpTransport::bind(addr).map(LiveWire::Threads),
        }
    }

    /// [`bind`](Self::bind) with an explicit [`WirePolicy`]; the threaded
    /// transport honours only the reconnect policy.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind_with(
        kind: WireKind,
        addr: impl ToSocketAddrs,
        policy: WirePolicy,
    ) -> std::io::Result<LiveWire> {
        match kind {
            WireKind::Reactor => ReactorTransport::bind_with(addr, policy).map(LiveWire::Reactor),
            WireKind::Threads => {
                TcpTransport::bind_with(addr, policy.reconnect).map(LiveWire::Threads)
            }
        }
    }

    /// Which transport this is.
    pub fn kind(&self) -> WireKind {
        match self {
            LiveWire::Reactor(_) => WireKind::Reactor,
            LiveWire::Threads(_) => WireKind::Threads,
        }
    }

    /// The bound listen address — what peers should `set_route` to.
    pub fn local_addr(&self) -> SocketAddr {
        match self {
            LiveWire::Reactor(t) => t.local_addr(),
            LiveWire::Threads(t) => t.local_addr(),
        }
    }

    /// Registers an endpoint hosted by this process and returns its
    /// delivery channel.
    pub fn register(&self, endpoint: Endpoint) -> Receiver<Envelope> {
        match self {
            LiveWire::Reactor(t) => t.register(endpoint),
            LiveWire::Threads(t) => t.register(endpoint),
        }
    }

    /// Points `endpoint` at `addr`, replacing any previous mapping and
    /// reviving a gave-up address.
    pub fn set_route(&self, endpoint: Endpoint, addr: SocketAddr) {
        match self {
            LiveWire::Reactor(t) => t.set_route(endpoint, addr),
            LiveWire::Threads(t) => t.set_route(endpoint, addr),
        }
    }

    /// Destinations that exhausted the reconnect budget, with frames
    /// dropped since.
    pub fn gave_up_routes(&self) -> Vec<GaveUpRoute> {
        match self {
            LiveWire::Reactor(t) => t.gave_up_routes(),
            LiveWire::Threads(t) => t.gave_up_routes(),
        }
    }

    /// Nonblocking send with typed errors. The threaded transport's
    /// unbounded queues accept everything, so only the reactor can report
    /// [`SendError::Backpressure`].
    ///
    /// # Errors
    ///
    /// See [`SendError`]; the threaded arm always returns `Ok`.
    pub fn try_send(&self, envelope: &Envelope) -> Result<(), SendError> {
        match self {
            LiveWire::Reactor(t) => t.try_send(envelope),
            LiveWire::Threads(t) => {
                t.send(envelope.clone());
                Ok(())
            }
        }
    }

    /// The reactor's counters; `None` on the threaded transport.
    pub fn stats(&self) -> Option<WireStats> {
        match self {
            LiveWire::Reactor(t) => Some(t.stats()),
            LiveWire::Threads(_) => None,
        }
    }

    /// Stops all threads and closes all sockets. Safe to call more than
    /// once; also invoked on drop.
    pub fn shutdown(&self) {
        match self {
            LiveWire::Reactor(t) => t.shutdown(),
            LiveWire::Threads(t) => t.shutdown(),
        }
    }
}

impl Transport for LiveWire {
    fn send(&self, envelope: Envelope) {
        match self {
            LiveWire::Reactor(t) => t.send(envelope),
            LiveWire::Threads(t) => t.send(envelope),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageBody, MsgId, MsgSeqNo, ProcessId};
    use std::time::Duration;

    #[test]
    fn kind_parses_and_displays_both_ways() {
        for kind in [WireKind::Reactor, WireKind::Threads] {
            assert_eq!(kind.to_string().parse::<WireKind>().unwrap(), kind);
        }
        assert!("carrier-pigeon".parse::<WireKind>().is_err());
        assert_eq!(WireKind::default(), WireKind::Reactor);
    }

    #[test]
    fn both_kinds_deliver_through_the_shared_surface() {
        for kind in [WireKind::Reactor, WireKind::Threads] {
            let a = LiveWire::bind(kind, "127.0.0.1:0").unwrap();
            let b = LiveWire::bind(kind, "127.0.0.1:0").unwrap();
            assert_eq!(a.kind(), kind);
            let p2: Endpoint = ProcessId(2).into();
            let rx = b.register(p2);
            a.set_route(p2, b.local_addr());
            let env = Envelope::new(
                MsgId {
                    from: ProcessId(1),
                    seq: MsgSeqNo(1),
                },
                p2,
                MessageBody::External { payload: vec![1] },
            );
            a.try_send(&env).unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
                1,
                "{kind}"
            );
            assert!(a.gave_up_routes().is_empty());
            assert_eq!(a.stats().is_some(), kind == WireKind::Reactor);
            a.shutdown();
            b.shutdown();
        }
    }
}
