//! A fault-injecting [`Transport`] wrapper for chaos campaigns.
//!
//! [`FaultyTransport`] models a *lossy wire underneath a retransmitting
//! link layer*. Each destination route gets a worker thread that applies,
//! in order, per envelope:
//!
//! 1. **Partition hold** — while a [`PartitionWindow`] from the plan is
//!    open, the route parks; held traffic flushes in order at heal time,
//!    so a partition is observable only as latency.
//! 2. **Bounded delay** — a uniform extra delay drawn from the per-route
//!    deterministic RNG stream.
//! 3. **Drop + retransmit** — each send attempt may be "dropped" by the
//!    wire; the link layer retries with doubling backoff up to the plan's
//!    attempt budget, after which the frame is recorded in the lost log
//!    and surfaced via [`FaultyTransport::lost`] instead of vanishing.
//! 4. **Ack duplication** — a successfully sent *ack* may be sent twice.
//!
//! Duplication is restricted to ack frames on purpose: after a global
//! rollback, senders rewind their sequence counters and legitimately reuse
//! `MsgId`s (that is exactly how the device observes post-rollback
//! repeats), so a receiver cannot dedup by id and the engines deliberately
//! deliver every application frame they see. Acks are the one idempotent
//! frame class — `AckTracker::on_ack` ignores an ack for an id it no
//! longer tracks — so they are the one class a chaos wire may duplicate
//! without changing protocol-visible behaviour.
//!
//! Per-route FIFO is preserved: a single worker per route applies faults
//! head-of-line, so injected delay never reorders frames within a route.
//! This matches the reliable-FIFO-channel assumption the protocols under
//! study make of their transport.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use synergy_des::DetRng;

use crate::fault::LinkFaultPlan;
use crate::message::{Endpoint, Envelope, MsgId};
use crate::transport::Transport;

/// A frame whose retransmission budget was exhausted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LostFrame {
    /// Destination of the lost frame.
    pub to: Endpoint,
    /// Identifier of the lost frame.
    pub id: MsgId,
    /// How many attempts the wire dropped before the link layer gave up.
    pub attempts: u32,
}

/// Counters describing what the wrapper actually injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Attempt-level drops rolled by the wire (masked by retransmission
    /// unless the budget ran out).
    pub drops: u64,
    /// Ack frames sent twice.
    pub dups: u64,
    /// Envelopes that waited out at least one partition window.
    pub held: u64,
    /// Envelopes delayed by a nonzero bounded delay.
    pub delayed: u64,
    /// Frames whose attempt budget was exhausted (see the lost log).
    pub lost: u64,
}

#[derive(Default)]
struct Stats {
    drops: AtomicU64,
    dups: AtomicU64,
    held: AtomicU64,
    delayed: AtomicU64,
    lost: AtomicU64,
    pending: AtomicU64,
}

struct Shared<T: Transport> {
    inner: Arc<T>,
    plan: LinkFaultPlan,
    start: Instant,
    shutdown: AtomicBool,
    stats: Stats,
    lost: Mutex<Vec<LostFrame>>,
}

impl<T: Transport> Shared<T> {
    fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Sleeps out any open partition window; returns whether one was open.
    fn hold_for_partition(&self) -> bool {
        let mut held = false;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return held;
            }
            let now = self.elapsed_ms();
            match self.plan.partitions.iter().find(|w| w.contains(now)) {
                Some(w) => {
                    held = true;
                    let remaining = w.end_ms.saturating_sub(now);
                    thread::sleep(Duration::from_millis(remaining.clamp(1, 5)));
                }
                None => return held,
            }
        }
    }

    fn deliver(&self, env: Envelope, rng: &mut DetRng) {
        if self.hold_for_partition() {
            self.stats.held.fetch_add(1, Ordering::Relaxed);
        }
        let (lo, hi) = self.plan.delay_ms;
        if hi > 0 {
            let delay = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            if delay > 0 {
                self.stats.delayed.fetch_add(1, Ordering::Relaxed);
                thread::sleep(Duration::from_millis(delay));
            }
        }
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            if self.plan.faults.roll_drop(rng) {
                self.stats.drops.fetch_add(1, Ordering::Relaxed);
                if attempt >= self.plan.max_attempts {
                    self.stats.lost.fetch_add(1, Ordering::Relaxed);
                    self.lost.lock().unwrap().push(LostFrame {
                        to: env.to,
                        id: env.id,
                        attempts: attempt,
                    });
                    return;
                }
                let (start, cap) = self.plan.retry_ms;
                let backoff = start.saturating_mul(1 << (attempt - 1).min(16)).min(cap);
                thread::sleep(Duration::from_millis(backoff.max(1)));
                // Retransmission may straddle a heal boundary; re-check the
                // partition so retries do not punch through an open window.
                if self.hold_for_partition() {
                    self.stats.held.fetch_add(1, Ordering::Relaxed);
                }
                continue;
            }
            let duplicate = env.body.is_ack() && self.plan.faults.roll_duplicate(rng);
            self.inner.send(env.clone());
            if duplicate {
                self.stats.dups.fetch_add(1, Ordering::Relaxed);
                self.inner.send(env);
            }
            return;
        }
    }
}

/// Deterministic fault-injecting wrapper over any [`Transport`].
///
/// With an inert plan, `send` forwards synchronously with zero overhead.
/// Otherwise each route runs its own worker thread (see module docs). The
/// wrapper tracks in-flight envelopes so an orchestrator can quiesce on
/// [`pending`](Self::pending)` == 0` before comparing device streams.
pub struct FaultyTransport<T: Transport> {
    shared: Arc<Shared<T>>,
    routes: Mutex<HashMap<Endpoint, Sender<Envelope>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner`, applying `plan` to every subsequent send.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`LinkFaultPlan::validate`].
    pub fn new(inner: Arc<T>, plan: LinkFaultPlan) -> Self {
        plan.validate();
        FaultyTransport {
            shared: Arc::new(Shared {
                inner,
                plan,
                start: Instant::now(),
                shutdown: AtomicBool::new(false),
                stats: Stats::default(),
                lost: Mutex::new(Vec::new()),
            }),
            routes: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &Arc<T> {
        &self.shared.inner
    }

    /// Envelopes accepted but not yet handed to the inner transport (or
    /// recorded lost). Zero means the chaos layer is drained.
    pub fn pending(&self) -> u64 {
        self.shared.stats.pending.load(Ordering::Relaxed)
    }

    /// Snapshot of the injected-fault counters.
    pub fn totals(&self) -> FaultTotals {
        let s = &self.shared.stats;
        FaultTotals {
            drops: s.drops.load(Ordering::Relaxed),
            dups: s.dups.load(Ordering::Relaxed),
            held: s.held.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            lost: s.lost.load(Ordering::Relaxed),
        }
    }

    /// Frames dropped for good after exhausting the attempt budget.
    pub fn lost(&self) -> Vec<LostFrame> {
        self.shared.lost.lock().unwrap().clone()
    }

    /// Stops all route workers, discarding anything still queued.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.routes.lock().unwrap().clear();
        for handle in self.workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
    }

    fn route_sender(&self, to: Endpoint) -> Sender<Envelope> {
        let mut routes = self.routes.lock().unwrap();
        if let Some(tx) = routes.get(&to) {
            return tx.clone();
        }
        let (tx, rx) = channel::<Envelope>();
        let shared = Arc::clone(&self.shared);
        // One RNG stream per route: the realized fault schedule on a route
        // depends only on the plan seed and that route's traffic order.
        let mut rng = DetRng::new(shared.plan.seed).stream(&format!("route-{to}"));
        let handle = thread::Builder::new()
            .name(format!("chaos-{to}"))
            .spawn(move || {
                while let Ok(env) = rx.recv() {
                    if shared.shutdown.load(Ordering::Relaxed) {
                        shared.stats.pending.fetch_sub(1, Ordering::Relaxed);
                        continue;
                    }
                    shared.deliver(env, &mut rng);
                    shared.stats.pending.fetch_sub(1, Ordering::Relaxed);
                }
            })
            .expect("spawn chaos route worker");
        self.workers.lock().unwrap().push(handle);
        routes.insert(to, tx.clone());
        tx
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&self, envelope: Envelope) {
        if self.shared.plan.is_inert() {
            self.shared.inner.send(envelope);
            return;
        }
        self.shared.stats.pending.fetch_add(1, Ordering::Relaxed);
        if self.route_sender(envelope.to).send(envelope).is_err() {
            // Worker already shut down; the envelope is dropped on the
            // floor, which only happens during teardown.
            self.shared.stats.pending.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl<T: Transport> Drop for FaultyTransport<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{LinkFaults, PartitionWindow};
    use crate::message::{MessageBody, MsgSeqNo, ProcessId};

    /// Collects everything it is asked to send.
    #[derive(Default)]
    struct Sink {
        seen: Mutex<Vec<Envelope>>,
    }

    impl Transport for Sink {
        fn send(&self, envelope: Envelope) {
            self.seen.lock().unwrap().push(envelope);
        }
    }

    fn app_envelope(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![seq as u8],
                dirty: false,
            },
        )
    }

    fn ack_envelope(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(2),
                seq: MsgSeqNo(1 << 62 | seq),
            },
            ProcessId(1),
            MessageBody::Ack {
                of: MsgId {
                    from: ProcessId(1),
                    seq: MsgSeqNo(seq),
                },
            },
        )
    }

    fn drain(faulty: &FaultyTransport<Sink>) {
        let deadline = Instant::now() + Duration::from_secs(20);
        while faulty.pending() > 0 {
            assert!(Instant::now() < deadline, "chaos wrapper failed to drain");
            thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn inert_plan_is_synchronous_passthrough() {
        let sink = Arc::new(Sink::default());
        let faulty = FaultyTransport::new(Arc::clone(&sink), LinkFaultPlan::inert(1));
        for seq in 0..10 {
            faulty.send(app_envelope(seq));
        }
        // No drain needed: the inert path never leaves the caller's thread.
        let seen = sink.seen.lock().unwrap();
        assert_eq!(seen.len(), 10);
        assert_eq!(faulty.totals(), FaultTotals::default());
    }

    #[test]
    fn drops_are_masked_by_retransmission() {
        let sink = Arc::new(Sink::default());
        let mut plan = LinkFaultPlan::inert(7);
        plan.faults = LinkFaults::new(0.4, 0.0);
        plan.max_attempts = 32;
        plan.retry_ms = (1, 2);
        let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
        for seq in 0..50 {
            faulty.send(app_envelope(seq));
        }
        drain(&faulty);
        let seen = sink.seen.lock().unwrap();
        let seqs: Vec<u64> = seen.iter().map(|e| e.id.seq.0).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>(), "exactly once, in order");
        let totals = faulty.totals();
        assert!(totals.drops > 0, "a 40% wire should have dropped something");
        assert_eq!(totals.lost, 0);
        assert!(faulty.lost().is_empty());
    }

    #[test]
    fn exhausted_budget_is_reported_not_hidden() {
        let sink = Arc::new(Sink::default());
        let mut plan = LinkFaultPlan::inert(3);
        plan.faults = LinkFaults::new(1.0, 0.0);
        plan.max_attempts = 3;
        plan.retry_ms = (1, 1);
        let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
        faulty.send(app_envelope(0));
        drain(&faulty);
        assert!(sink.seen.lock().unwrap().is_empty());
        let lost = faulty.lost();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].attempts, 3);
        assert_eq!(lost[0].id.seq, MsgSeqNo(0));
        assert_eq!(faulty.totals().lost, 1);
    }

    #[test]
    fn only_acks_are_ever_duplicated() {
        let sink = Arc::new(Sink::default());
        let mut plan = LinkFaultPlan::inert(11);
        plan.faults = LinkFaults::new(0.0, 1.0);
        let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
        for seq in 0..5 {
            faulty.send(app_envelope(seq));
            faulty.send(ack_envelope(seq));
        }
        drain(&faulty);
        let seen = sink.seen.lock().unwrap();
        let apps = seen.iter().filter(|e| !e.body.is_ack()).count();
        let acks = seen.iter().filter(|e| e.body.is_ack()).count();
        assert_eq!(apps, 5, "application frames must not be duplicated");
        assert_eq!(acks, 10, "dup_prob=1 doubles every ack");
        assert_eq!(faulty.totals().dups, 5);
    }

    #[test]
    fn partition_holds_then_flushes_in_order() {
        let sink = Arc::new(Sink::default());
        let mut plan = LinkFaultPlan::inert(5);
        plan.partitions = vec![PartitionWindow {
            start_ms: 0,
            end_ms: 120,
        }];
        let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
        for seq in 0..8 {
            faulty.send(app_envelope(seq));
        }
        thread::sleep(Duration::from_millis(40));
        assert!(
            sink.seen.lock().unwrap().is_empty(),
            "nothing crosses an open partition"
        );
        assert!(faulty.pending() > 0);
        drain(&faulty);
        let seen = sink.seen.lock().unwrap();
        let seqs: Vec<u64> = seen.iter().map(|e| e.id.seq.0).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>(), "heal flushes in order");
        assert!(faulty.totals().held > 0);
    }

    #[test]
    fn same_seed_same_realized_schedule() {
        let run = |seed: u64| -> (Vec<u64>, FaultTotals) {
            let sink = Arc::new(Sink::default());
            let mut plan = LinkFaultPlan::inert(seed);
            plan.faults = LinkFaults::new(0.5, 0.0);
            plan.max_attempts = 2;
            plan.retry_ms = (1, 1);
            let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
            for seq in 0..40 {
                faulty.send(app_envelope(seq));
            }
            drain(&faulty);
            let seen = sink
                .seen
                .lock()
                .unwrap()
                .iter()
                .map(|e| e.id.seq.0)
                .collect();
            (seen, faulty.totals())
        };
        let (a_seen, a_totals) = run(42);
        let (b_seen, b_totals) = run(42);
        assert_eq!(a_seen, b_seen);
        assert_eq!(a_totals, b_totals);
        let (c_seen, _) = run(43);
        assert_ne!(a_seen, c_seen, "different seed should differ somewhere");
    }
}
