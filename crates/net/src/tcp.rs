//! A real TCP transport for the cluster runtime.
//!
//! Envelopes travel as length-prefixed [`synergy_codec`] frames over plain
//! TCP sockets, one long-lived connection per destination address. The
//! contract is the same as [`SimNetwork`](crate::SimNetwork) and
//! [`ThreadedNet`](crate::threaded::ThreadedNet): per-link FIFO order
//! (guaranteed here by a single ordered writer queue per destination riding
//! a single TCP stream) and silent drops for unregistered destinations — so
//! the protocol engines cannot tell which transport they are running over.
//!
//! Unlike the in-process transports, destinations are *addresses* that can
//! change: a killed node restarts on a fresh port, and the orchestrator
//! repairs the survivors' routing tables with [`TcpTransport::set_route`].
//! Writers reconnect with bounded exponential backoff and re-send the frame
//! that failed, so a briefly-down peer costs latency, not messages.

use core::fmt;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::message::{Endpoint, Envelope};
use crate::retry::Backoff;
use crate::transport::Transport;

// The wire framing lives in `frame` (shared with the reactor transport);
// re-exported here because this module is where it historically lived.
pub use crate::frame::{
    frame_envelope, frame_envelope_with_acks, FrameDecoder, FrameError, PiggyAck, MAX_FRAME_LEN,
    MAX_PIGGY_ACKS,
};

/// How a writer thread behaves when its destination is unreachable.
///
/// Reconnect delay starts at [`backoff_start`](Self::backoff_start),
/// doubles per consecutive failure up to [`backoff_cap`](Self::backoff_cap),
/// and each sleep is scaled by a deterministic ±25% jitter (seeded per
/// destination from [`jitter_seed`](Self::jitter_seed)) so a cluster of
/// writers reconnecting to a restarted node does not thunder in lockstep.
/// After [`max_attempts`](Self::max_attempts) consecutive failures the
/// route is declared dead: the in-flight frame and everything queued behind
/// it are counted and surfaced via [`TcpTransport::gave_up_routes`], and
/// later sends to that address are dropped (and counted) until
/// [`TcpTransport::set_route`] revives it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconnectPolicy {
    /// First reconnect delay; doubles per consecutive failure.
    pub backoff_start: Duration,
    /// Reconnect delay ceiling.
    pub backoff_cap: Duration,
    /// Consecutive failed connect/write attempts before a destination is
    /// declared dead; `None` retries forever (the pre-policy behaviour).
    pub max_attempts: Option<u32>,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl ReconnectPolicy {
    /// The policy as a [`Backoff`] schedule for one destination, jittered
    /// per-address so peers do not reconnect in lockstep.
    pub(crate) fn backoff_for(&self, addr: SocketAddr) -> Backoff {
        Backoff::exponential(self.backoff_start, self.backoff_cap, self.max_attempts)
            .with_jitter(self.jitter_seed ^ u64::from(addr.port()))
    }
}

impl Default for ReconnectPolicy {
    /// 10 ms → 500 ms backoff and a 64-attempt budget (≈30 s of retries):
    /// generous enough to ride out any orchestrated node restart, bounded
    /// enough that a permanently dead peer cannot pin a writer forever.
    fn default() -> Self {
        ReconnectPolicy {
            backoff_start: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            max_attempts: Some(64),
            jitter_seed: 0x5359_4E45, // "SYNE"
        }
    }
}

/// A destination some writer gave up on, with the frames dropped since.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaveUpRoute {
    /// The unreachable destination address.
    pub addr: SocketAddr,
    /// Frames dropped on this route since the writer gave up.
    pub dropped: u64,
}

struct Inner {
    shutdown: AtomicBool,
    policy: ReconnectPolicy,
    /// Destinations whose writer exhausted its attempt budget, with the
    /// count of frames dropped since. `set_route` to an address revives it.
    dead: Mutex<HashMap<SocketAddr, u64>>,
    /// Inbound dispatch: envelopes whose `to` is registered here are handed
    /// to the endpoint's channel; others are dropped like datagrams to a
    /// closed port.
    endpoints: Mutex<HashMap<Endpoint, Sender<Envelope>>>,
    /// Outbound routing: which address hosts each endpoint right now.
    routes: Mutex<HashMap<Endpoint, SocketAddr>>,
    /// One ordered writer queue per destination address.
    writers: Mutex<HashMap<SocketAddr, Sender<Envelope>>>,
    /// Accepted inbound streams, tracked so shutdown can unblock readers.
    conns: Mutex<Vec<TcpStream>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A TCP envelope transport: one per OS process in the cluster runtime.
///
/// Each transport is both a server (it binds a listener and dispatches
/// inbound envelopes to [`register`](TcpTransport::register)ed endpoints)
/// and a client (it connects out to the addresses in its routing table).
pub struct TcpTransport {
    local: SocketAddr,
    inner: Arc<Inner>,
}

impl TcpTransport {
    /// Binds a listener (use port 0 for an OS-assigned port) and starts the
    /// accept thread.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        TcpTransport::bind_with(addr, ReconnectPolicy::default())
    }

    /// [`bind`](TcpTransport::bind) with an explicit [`ReconnectPolicy`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        policy: ReconnectPolicy,
    ) -> std::io::Result<TcpTransport> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let inner = Arc::new(Inner {
            shutdown: AtomicBool::new(false),
            policy,
            dead: Mutex::new(HashMap::new()),
            endpoints: Mutex::new(HashMap::new()),
            routes: Mutex::new(HashMap::new()),
            writers: Mutex::new(HashMap::new()),
            conns: Mutex::new(Vec::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("synergy-tcp-accept".into())
            .spawn(move || accept_loop(listener, accept_inner))?;
        inner.threads.lock().expect("threads lock").push(handle);
        Ok(TcpTransport { local, inner })
    }

    /// The bound listen address — what peers should `set_route` to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Registers an endpoint hosted by this process and returns its delivery
    /// channel. Re-registering replaces the previous channel.
    pub fn register(&self, endpoint: Endpoint) -> Receiver<Envelope> {
        let (tx, rx) = channel();
        self.inner
            .endpoints
            .lock()
            .expect("endpoints lock")
            .insert(endpoint, tx);
        rx
    }

    /// Points `endpoint` at `addr` in the outbound routing table, replacing
    /// any previous mapping — how the orchestrator repairs routes after a
    /// killed node restarts on a fresh port. Setting a route revives a
    /// gave-up address: its dead-route record is cleared and the next send
    /// spawns a fresh writer.
    pub fn set_route(&self, endpoint: Endpoint, addr: SocketAddr) {
        if self
            .inner
            .dead
            .lock()
            .expect("dead lock")
            .remove(&addr)
            .is_some()
        {
            // The old writer exited after giving up; dropping its sender
            // lets the next send spawn a replacement.
            self.inner
                .writers
                .lock()
                .expect("writers lock")
                .remove(&addr);
        }
        self.inner
            .routes
            .lock()
            .expect("routes lock")
            .insert(endpoint, addr);
    }

    /// Destinations whose writers exhausted the reconnect budget, and how
    /// many frames each has dropped since. Empty under a healthy cluster.
    pub fn gave_up_routes(&self) -> Vec<GaveUpRoute> {
        let mut routes: Vec<GaveUpRoute> = self
            .inner
            .dead
            .lock()
            .expect("dead lock")
            .iter()
            .map(|(&addr, &dropped)| GaveUpRoute { addr, dropped })
            .collect();
        routes.sort_by_key(|r| r.addr);
        routes
    }

    /// Enqueues `envelope` on the ordered writer queue of its destination's
    /// current address. Envelopes with no route are dropped silently, like
    /// sends to an unregistered endpoint on the in-process transports.
    pub fn send(&self, envelope: Envelope) {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Some(addr) = self
            .inner
            .routes
            .lock()
            .expect("routes lock")
            .get(&envelope.to)
            .copied()
        else {
            return;
        };
        {
            let mut dead = self.inner.dead.lock().expect("dead lock");
            if let Some(dropped) = dead.get_mut(&addr) {
                *dropped += 1;
                return;
            }
        }
        let mut writers = self.inner.writers.lock().expect("writers lock");
        let tx = writers.entry(addr).or_insert_with(|| {
            let (tx, rx) = channel();
            let writer_inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("synergy-tcp-writer-{addr}"))
                .spawn(move || writer_loop(addr, rx, writer_inner))
                .expect("spawn writer thread");
            self.inner
                .threads
                .lock()
                .expect("threads lock")
                .push(handle);
            tx
        });
        let _ = tx.send(envelope);
    }

    /// Stops all threads and closes all connections; in-flight envelopes are
    /// dropped. Safe to call more than once; also invoked on drop.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept thread: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.local);
        for conn in self.inner.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Dropping the writer senders ends each writer's recv loop.
        self.inner.writers.lock().expect("writers lock").clear();
        let handles: Vec<_> = self
            .inner
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("local", &self.local)
            .finish_non_exhaustive()
    }
}

impl Transport for TcpTransport {
    fn send(&self, envelope: Envelope) {
        TcpTransport::send(self, envelope);
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            inner.conns.lock().expect("conns lock").push(clone);
        }
        let reader_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("synergy-tcp-reader".into())
            .spawn(move || reader_loop(stream, reader_inner));
        if let Ok(handle) = handle {
            inner.threads.lock().expect("threads lock").push(handle);
        }
    }
}

fn reader_loop(mut stream: TcpStream, inner: Arc<Inner>) {
    let mut dec = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        let delivered = dec.drain_chunk(&buf[..n], |env| {
            let endpoints = inner.endpoints.lock().expect("endpoints lock");
            if let Some(tx) = endpoints.get(&env.to) {
                let _ = tx.send(env);
            }
        });
        // Corrupt stream: no resync is possible, drop the connection
        // (the peer's writer will reconnect and start a clean one).
        if delivered.is_err() {
            return;
        }
    }
}

/// Writes this destination's envelopes in order over one TCP stream,
/// reconnecting per the transport's [`ReconnectPolicy`] and re-sending the
/// frame that failed — a briefly-down peer costs latency, not messages. A
/// peer that stays down past the policy's attempt budget turns the route
/// dead (see [`TcpTransport::gave_up_routes`]).
fn writer_loop(addr: SocketAddr, rx: Receiver<Envelope>, inner: Arc<Inner>) {
    let mut backoff = inner.policy.backoff_for(addr);
    let mut stream: Option<TcpStream> = None;
    while let Ok(env) = rx.recv() {
        let Ok(frame) = frame_envelope(&env) else {
            continue;
        };
        loop {
            if inner.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let Some(s) = stream.as_mut() else {
                match TcpStream::connect(addr) {
                    Ok(s) => {
                        let _ = s.set_nodelay(true);
                        stream = Some(s);
                    }
                    Err(_) => match backoff.next_delay() {
                        Some(delay) => std::thread::sleep(delay),
                        None => {
                            give_up(addr, &rx, &inner);
                            return;
                        }
                    },
                }
                continue;
            };
            match s.write_all(&frame) {
                Ok(()) => {
                    backoff.reset();
                    break;
                }
                Err(_) => {
                    stream = None;
                    match backoff.next_delay() {
                        Some(delay) => std::thread::sleep(delay),
                        None => {
                            give_up(addr, &rx, &inner);
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Marks `addr` dead (counting the frame that was in flight) and drains the
/// queue behind it into the dropped count until the sender disappears —
/// at shutdown, or when `set_route` revives the address.
fn give_up(addr: SocketAddr, rx: &Receiver<Envelope>, inner: &Arc<Inner>) {
    *inner
        .dead
        .lock()
        .expect("dead lock")
        .entry(addr)
        .or_insert(0) += 1;
    while rx.recv().is_ok() {
        if let Some(dropped) = inner.dead.lock().expect("dead lock").get_mut(&addr) {
            *dropped += 1;
        } else {
            // Revived while frames were still queued: nothing useful to do
            // with stale traffic for a dead incarnation; stop counting.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DeviceId, MessageBody, MsgId, MsgSeqNo, ProcessId};

    fn env(to: Endpoint, seq: u64, payload: Vec<u8>) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            to,
            MessageBody::Application {
                payload,
                dirty: false,
            },
        )
    }

    #[test]
    fn frames_survive_byte_by_byte_delivery() {
        let e = env(ProcessId(2).into(), 3, vec![1, 2, 3, 4]);
        let frame = frame_envelope(&e).unwrap();
        let mut dec = FrameDecoder::new();
        for b in &frame {
            assert!(dec.next_envelope().unwrap().is_none());
            dec.push(std::slice::from_ref(b));
        }
        assert_eq!(dec.next_envelope().unwrap(), Some(e));
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn oversized_length_prefix_poisons_stream() {
        let mut dec = FrameDecoder::new();
        dec.push(&(u32::MAX).to_le_bytes());
        assert!(matches!(dec.next_envelope(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn garbage_payload_is_a_codec_error() {
        let mut dec = FrameDecoder::new();
        dec.push(&6u32.to_le_bytes());
        dec.push(&0u16.to_le_bytes()); // no piggybacked acks...
        dec.push(&[0xFF; 4]); // ...then an undecodable envelope
        assert!(matches!(dec.next_envelope(), Err(FrameError::Codec(_))));
    }

    #[test]
    fn two_transports_exchange_fifo_streams() {
        let a = TcpTransport::bind("127.0.0.1:0").unwrap();
        let b = TcpTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let rx = b.register(p2);
        a.set_route(p2, b.local_addr());
        for i in 0..50 {
            a.send(env(p2, i, vec![i as u8]));
        }
        let got: Vec<u64> = (0..50)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("delivered")
                    .id
                    .seq
                    .0
            })
            .collect();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn unrouted_and_unregistered_sends_are_dropped() {
        let a = TcpTransport::bind("127.0.0.1:0").unwrap();
        let b = TcpTransport::bind("127.0.0.1:0").unwrap();
        // No route at all: dropped at the sender.
        a.send(env(ProcessId(9).into(), 0, vec![]));
        // Routed but unregistered at the receiver: dropped at dispatch.
        let d0: Endpoint = DeviceId(0).into();
        a.set_route(d0, b.local_addr());
        a.send(env(d0, 1, vec![]));
        std::thread::sleep(Duration::from_millis(50));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn route_update_redirects_to_a_restarted_peer() {
        // The orchestrator's restart path: the old peer dies, a replacement
        // binds a fresh port, survivors' routes are repaired.
        let a = TcpTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let b1 = TcpTransport::bind("127.0.0.1:0").unwrap();
        let rx1 = b1.register(p2);
        a.set_route(p2, b1.local_addr());
        a.send(env(p2, 0, vec![0]));
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            0
        );
        b1.shutdown();
        let b2 = TcpTransport::bind("127.0.0.1:0").unwrap();
        let rx2 = b2.register(p2);
        a.set_route(p2, b2.local_addr());
        a.send(env(p2, 1, vec![1]));
        assert_eq!(
            rx2.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            1
        );
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn writer_backs_off_until_the_peer_appears() {
        // Reserve a port, drop the listener, route to it, and send: the
        // writer must keep retrying with backoff until a listener exists.
        let a = TcpTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        a.set_route(p2, addr);
        a.send(env(p2, 7, vec![7]));
        std::thread::sleep(Duration::from_millis(60)); // a few failed attempts
        let late = TcpListener::bind(addr).expect("port still free");
        let (mut conn, _) = late.accept().expect("writer reconnects");
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let got = loop {
            let n = conn.read(&mut buf).expect("frame arrives");
            dec.push(&buf[..n]);
            if let Some(env) = dec.next_envelope().unwrap() {
                break env;
            }
        };
        assert_eq!(got.id.seq.0, 7, "the failed frame is re-sent, not lost");
        a.shutdown();
    }

    #[test]
    fn bounded_policy_gives_up_and_surfaces_the_route() {
        // A permanently dead destination with a tiny attempt budget: the
        // writer must give up quickly, surface the route, and count every
        // frame dropped since — never spin forever.
        let policy = ReconnectPolicy {
            backoff_start: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            max_attempts: Some(3),
            jitter_seed: 9,
        };
        let a = TcpTransport::bind_with("127.0.0.1:0", policy).unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        a.set_route(p2, addr);
        a.send(env(p2, 0, vec![]));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while a.gave_up_routes().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "writer failed to give up within its budget"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // Later sends are dropped-and-counted, not queued behind a corpse.
        a.send(env(p2, 1, vec![]));
        a.send(env(p2, 2, vec![]));
        let routes = a.gave_up_routes();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].addr, addr);
        assert!(routes[0].dropped >= 3, "dropped={}", routes[0].dropped);
        // set_route revives the address: a fresh writer reaches a listener
        // that now exists.
        let late = TcpTransport::bind(addr).expect("port still free");
        let rx = late.register(p2);
        a.set_route(p2, addr);
        assert!(a.gave_up_routes().is_empty(), "revived route is not dead");
        a.send(env(p2, 3, vec![3]));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0, 3);
        a.shutdown();
        late.shutdown();
    }
}
