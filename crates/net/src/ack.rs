//! Acknowledgment bookkeeping for the TB protocol's recoverability rule.
//!
//! The Neves–Fuchs protocol does not block to prevent in-transit messages;
//! instead every process saves, as part of its next stable checkpoint, all
//! application messages it has sent but not yet seen acknowledged, and
//! re-sends them during hardware error recovery (paper §2.2).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use synergy_codec::codec_struct;

use crate::frame::PiggyAck;
use crate::message::{Envelope, MsgId};

/// Tracks sent-but-unacknowledged messages for one process.
///
/// # Example
///
/// ```rust
/// use synergy_net::{AckTracker, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
///
/// let mut tracker = AckTracker::new();
/// let id = MsgId { from: ProcessId(2), seq: MsgSeqNo(0) };
/// tracker.on_send(Envelope::new(id, ProcessId(1), MessageBody::Application {
///     payload: vec![1, 2],
///     dirty: false,
/// }));
/// assert_eq!(tracker.unacked().len(), 1);
/// assert!(tracker.on_ack(id));
/// assert!(tracker.unacked().is_empty());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AckTracker {
    // Envelopes are held behind `Arc` so bundling the pending set into a
    // checkpoint payload (every volatile checkpoint does) shares rather
    // than deep-copies them.
    pending: BTreeMap<MsgId, Arc<Envelope>>,
}

codec_struct!(AckTracker { pending });

impl AckTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        AckTracker::default()
    }

    /// Registers a sent message as awaiting acknowledgment.
    pub fn on_send(&mut self, envelope: impl Into<Arc<Envelope>>) {
        let envelope = envelope.into();
        self.pending.insert(envelope.id, envelope);
    }

    /// Records an acknowledgment. Returns `true` when the message was
    /// pending (false acks — e.g. duplicates — are ignored).
    pub fn on_ack(&mut self, of: MsgId) -> bool {
        self.pending.remove(&of).is_some()
    }

    /// The messages that must be included in the next stable checkpoint, in
    /// deterministic (sender, sequence) order — deep copies; prefer
    /// [`unacked_shared`](Self::unacked_shared) on hot paths.
    pub fn unacked(&self) -> Vec<Envelope> {
        self.pending.values().map(|e| (**e).clone()).collect()
    }

    /// Shared handles to the pending messages in deterministic (sender,
    /// sequence) order; each element is a refcount bump.
    pub fn unacked_shared(&self) -> Vec<Arc<Envelope>> {
        self.pending.values().cloned().collect()
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is awaiting acknowledgment.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Replaces the pending set with the one recovered from a checkpoint.
    pub fn restore<T: Into<Arc<Envelope>>>(&mut self, messages: impl IntoIterator<Item = T>) {
        self.pending = messages
            .into_iter()
            .map(|m| {
                let m = m.into();
                (m.id, m)
            })
            .collect();
    }

    /// Forgets everything (process restart without recovery).
    pub fn clear(&mut self) {
        self.pending.clear();
    }
}

/// Acks waiting to piggyback on the next outbound data frame.
///
/// The reactor's per-route ring stashes ack envelopes here instead of
/// encoding them as standalone frames; at flush time
/// [`drain_for_frame`](Self::drain_for_frame) moves up to a frame's worth
/// of them into the next data frame's header (see
/// [`frame_envelope_with_acks`](crate::frame_envelope_with_acks)). Safe
/// because acks are idempotent and order-free with respect to every other
/// message class — an ack overtaking queued data changes nothing the
/// [`AckTracker`] can observe.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PendingAcks {
    queue: VecDeque<PiggyAck>,
}

impl PendingAcks {
    /// Creates an empty queue.
    pub fn new() -> Self {
        PendingAcks::default()
    }

    /// Stashes one ack for the next data frame.
    pub fn push(&mut self, ack: PiggyAck) {
        self.queue.push_back(ack);
    }

    /// Moves up to `max` acks out, oldest first — what the next data frame
    /// carries in its header.
    pub fn drain_for_frame(&mut self, max: usize) -> Vec<PiggyAck> {
        let n = self.queue.len().min(max);
        self.queue.drain(..n).collect()
    }

    /// Acks currently waiting for a ride.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no acks are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Endpoint, MessageBody, MsgSeqNo, ProcessId};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(2),
                seq: MsgSeqNo(seq),
            },
            ProcessId(1),
            MessageBody::Application {
                payload: vec![seq as u8],
                dirty: false,
            },
        )
    }

    #[test]
    fn ack_removes_pending() {
        let mut t = AckTracker::new();
        t.on_send(env(0));
        t.on_send(env(1));
        assert_eq!(t.len(), 2);
        assert!(t.on_ack(env(0).id));
        assert_eq!(t.unacked(), vec![env(1)]);
    }

    #[test]
    fn duplicate_ack_is_ignored() {
        let mut t = AckTracker::new();
        t.on_send(env(0));
        assert!(t.on_ack(env(0).id));
        assert!(!t.on_ack(env(0).id));
    }

    #[test]
    fn ack_for_unknown_message_is_ignored() {
        let mut t = AckTracker::new();
        assert!(!t.on_ack(env(9).id));
        assert!(t.is_empty());
    }

    #[test]
    fn unacked_is_ordered_by_sequence() {
        let mut t = AckTracker::new();
        t.on_send(env(5));
        t.on_send(env(1));
        t.on_send(env(3));
        let seqs: Vec<u64> = t.unacked().iter().map(|e| e.id.seq.0).collect();
        assert_eq!(seqs, vec![1, 3, 5]);
    }

    #[test]
    fn unacked_shared_aliases_pending_entries() {
        let mut t = AckTracker::new();
        let shared = Arc::new(env(0));
        t.on_send(Arc::clone(&shared));
        let out = t.unacked_shared();
        assert_eq!(out.len(), 1);
        assert!(Arc::ptr_eq(&out[0], &shared), "no deep copy");
        assert_eq!(t.unacked(), vec![env(0)]);
    }

    #[test]
    fn restore_replaces_state() {
        let mut t = AckTracker::new();
        t.on_send(env(0));
        t.restore([env(7), env(8)]);
        let seqs: Vec<u64> = t.unacked().iter().map(|e| e.id.seq.0).collect();
        assert_eq!(seqs, vec![7, 8]);
        t.clear();
        assert!(t.is_empty());
    }

    fn piggy(seq: u64) -> PiggyAck {
        PiggyAck {
            to: Endpoint::from(ProcessId(2)),
            id: MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(1000 + seq),
            },
            of: MsgId {
                from: ProcessId(2),
                seq: MsgSeqNo(seq),
            },
        }
    }

    #[test]
    fn pending_acks_drain_oldest_first_up_to_the_frame_cap() {
        let mut p = PendingAcks::new();
        for seq in 0..5 {
            p.push(piggy(seq));
        }
        let first = p.drain_for_frame(3);
        assert_eq!(first, vec![piggy(0), piggy(1), piggy(2)]);
        assert_eq!(p.len(), 2);
        let rest = p.drain_for_frame(10);
        assert_eq!(rest, vec![piggy(3), piggy(4)]);
        assert!(p.is_empty());
        assert!(p.drain_for_frame(10).is_empty());
    }

    #[test]
    fn resend_after_restore_matches_checkpoint_contents() {
        // The recoverability rule: what was unacked at checkpoint time is
        // exactly what gets re-sent after recovery.
        let mut t = AckTracker::new();
        t.on_send(env(0));
        t.on_send(env(1));
        let checkpointed = t.unacked();
        t.on_ack(env(0).id); // progress after the checkpoint is lost...
        let mut recovered = AckTracker::new();
        recovered.restore(checkpointed.clone());
        assert_eq!(recovered.unacked(), checkpointed);
    }
}
