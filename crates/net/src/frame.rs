//! The live-wire frame format shared by both TCP transports.
//!
//! Version 2 of the wire layout extends the original length-prefixed
//! envelope frame with an optional *piggybacked-ack* header, so a data
//! frame can carry transport acknowledgments that would otherwise each
//! cost their own frame (and, pre-reactor, their own syscall):
//!
//! ```text
//! frame  := len: u32 LE · body            (len = body length, bounded)
//! body   := ack_count: u16 LE · ack_count × PiggyAck · envelope
//! PiggyAck := to: Endpoint · id: MsgId · of: MsgId   (codec-encoded)
//! envelope := codec(Envelope)
//! ```
//!
//! A frame with `ack_count == 0` is exactly the v1 layout plus the
//! two-byte header. The decoder re-materializes each [`PiggyAck`] as a
//! standalone [`MessageBody::Ack`] envelope and yields it *before* the
//! carrying frame's envelope, so the receiving dispatch path is identical
//! whether an ack travelled alone or piggybacked. Acks are idempotent
//! (duplicate and unknown acks are ignored by
//! [`AckTracker`](crate::AckTracker)), which is what makes riding a later
//! data frame — possibly ahead of data queued in between — protocol-safe.

use core::fmt;
use std::collections::VecDeque;

use synergy_codec::{Codec, CodecError, Reader};

use crate::message::{Endpoint, Envelope, MessageBody, MsgId};

/// Upper bound on one frame's body; larger length prefixes indicate a
/// corrupt or hostile stream and poison the connection.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Most piggybacked acks one frame may carry; the overflow rides the next
/// frame (or a standalone ack frame).
pub const MAX_PIGGY_ACKS: usize = 64;

/// One transport acknowledgment riding a data frame's header: everything
/// needed to re-materialize the ack envelope at the receiver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PiggyAck {
    /// The ack envelope's destination (the endpoint being delivered to).
    pub to: Endpoint,
    /// The ack envelope's own id (acker + ack-namespace sequence).
    pub id: MsgId,
    /// The application message being acknowledged.
    pub of: MsgId,
}

synergy_codec::codec_struct!(PiggyAck { to, id, of });

impl PiggyAck {
    /// Extracts the piggyback form of an ack envelope; `None` for any
    /// other message class.
    pub fn from_envelope(env: &Envelope) -> Option<PiggyAck> {
        match env.body {
            MessageBody::Ack { of } => Some(PiggyAck {
                to: env.to,
                id: env.id,
                of,
            }),
            _ => None,
        }
    }

    /// Re-materializes the standalone ack envelope.
    pub fn into_envelope(self) -> Envelope {
        Envelope::new(self.id, self.to, MessageBody::Ack { of: self.of })
    }
}

/// Errors from the length-prefixed wire framing.
#[derive(Debug)]
pub enum FrameError {
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The frame payload did not decode as an [`Envelope`].
    Codec(CodecError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_LEN}")
            }
            FrameError::Codec(e) => write!(f, "frame payload decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Oversized(_) => None,
            FrameError::Codec(e) => Some(e),
        }
    }
}

/// Encodes `envelope` as one wire frame with no piggybacked acks.
///
/// # Errors
///
/// Returns [`FrameError::Codec`] if the envelope cannot be serialized and
/// [`FrameError::Oversized`] if the body exceeds [`MAX_FRAME_LEN`].
pub fn frame_envelope(envelope: &Envelope) -> Result<Vec<u8>, FrameError> {
    frame_envelope_with_acks(envelope, &[])
}

/// Encodes `envelope` as one wire frame carrying up to
/// [`MAX_PIGGY_ACKS`] piggybacked acks in its header.
///
/// # Errors
///
/// Returns [`FrameError::Codec`] if the envelope cannot be serialized and
/// [`FrameError::Oversized`] if the body exceeds [`MAX_FRAME_LEN`] or the
/// ack list exceeds [`MAX_PIGGY_ACKS`].
pub fn frame_envelope_with_acks(
    envelope: &Envelope,
    acks: &[PiggyAck],
) -> Result<Vec<u8>, FrameError> {
    let mut payload = Vec::new();
    envelope.encode(&mut payload);
    let mut out = Vec::with_capacity(4 + 2 + acks.len() * 32 + payload.len());
    out.extend_from_slice(&[0u8; 4]); // length backpatched below
    append_frame_body(&mut out, acks, &payload)?;
    let body_len = out.len() - 4;
    out[..4].copy_from_slice(&(body_len as u32).to_le_bytes());
    Ok(out)
}

/// Appends `ack_count · acks · payload` to `out` (everything after the
/// length prefix), validating the bounds — the shared assembly step for
/// [`frame_envelope_with_acks`] and the reactor's coalescing write path,
/// which backpatches its own length prefix into a staging buffer.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the ack list or the resulting body
/// exceeds the wire bounds.
pub fn append_frame_body(
    out: &mut Vec<u8>,
    acks: &[PiggyAck],
    payload: &[u8],
) -> Result<(), FrameError> {
    if acks.len() > MAX_PIGGY_ACKS {
        return Err(FrameError::Oversized(acks.len()));
    }
    let start = out.len();
    out.extend_from_slice(&(acks.len() as u16).to_le_bytes());
    for ack in acks {
        ack.encode(out);
    }
    out.extend_from_slice(payload);
    let body_len = out.len() - start;
    if body_len > MAX_FRAME_LEN {
        out.truncate(start);
        return Err(FrameError::Oversized(body_len));
    }
    Ok(())
}

/// Incremental frame decoder: TCP hands back arbitrary chunks, this
/// reassembles them into complete envelopes regardless of where the read
/// boundaries fall. Piggybacked acks come out as standalone ack
/// envelopes, yielded before their carrying frame's envelope.
///
/// # Example
///
/// ```rust
/// use synergy_net::tcp::{frame_envelope, FrameDecoder};
/// use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
///
/// let env = Envelope::new(
///     MsgId { from: ProcessId(1), seq: MsgSeqNo(7) },
///     ProcessId(2),
///     MessageBody::External { payload: vec![1, 2, 3] },
/// );
/// let frame = frame_envelope(&env)?;
/// let mut dec = FrameDecoder::new();
/// dec.push(&frame[..3]); // a torn read mid-length-prefix
/// assert!(dec.next_envelope()?.is_none());
/// dec.push(&frame[3..]);
/// assert_eq!(dec.next_envelope()?, Some(env));
/// # Ok::<(), synergy_net::tcp::FrameError>(())
/// ```
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed as frames. Consuming advances the
    /// cursor instead of draining the buffer, so decoding N frames from
    /// one read batch is O(bytes), not O(bytes x frames); `push` compacts
    /// the consumed prefix away before appending.
    head: usize,
    /// Envelopes decoded but not yet handed out: the piggybacked acks of
    /// the last frame, then its data envelope.
    ready: VecDeque<Envelope>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends a raw chunk as read from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        if self.head == self.buf.len() {
            self.buf.clear();
        } else if self.head > 0 {
            self.buf.drain(..self.head);
        }
        self.head = 0;
        self.buf.extend_from_slice(chunk);
    }

    /// Extracts the next complete envelope, or `None` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns a [`FrameError`] when the stream is corrupt (oversized length
    /// prefix or undecodable payload); the connection should be dropped, as
    /// resynchronization within a poisoned byte stream is impossible.
    pub fn next_envelope(&mut self) -> Result<Option<Envelope>, FrameError> {
        if let Some(env) = self.ready.pop_front() {
            return Ok(Some(env));
        }
        let pending = &self.buf[self.head..];
        let Some(prefix) = pending.get(..4) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(prefix.try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        let Some(body) = pending.get(4..4 + len) else {
            return Ok(None);
        };
        let ready = &mut self.ready;
        decode_body(body, &mut |env| ready.push_back(env))?;
        self.head += 4 + len;
        if self.head == self.buf.len() {
            self.buf.clear();
            self.head = 0;
        }
        Ok(self.ready.pop_front())
    }

    /// Decodes every complete frame in `chunk` (completing any partial
    /// frame buffered from earlier reads first), invoking `deliver` once
    /// per envelope — piggybacked acks before their carrying envelope.
    ///
    /// When nothing is buffered — the overwhelmingly common case, since a
    /// read boundary rarely tears a frame — frames decode straight out of
    /// `chunk` and only a trailing partial frame is copied in, skipping
    /// the buffer round-trip [`push`](Self::push) pays per byte.
    ///
    /// # Errors
    ///
    /// Same contract as [`next_envelope`](Self::next_envelope): any error
    /// poisons the stream and the connection should be dropped. Envelopes
    /// already delivered from this chunk remain delivered.
    pub fn drain_chunk(
        &mut self,
        chunk: &[u8],
        mut deliver: impl FnMut(Envelope),
    ) -> Result<(), FrameError> {
        while let Some(env) = self.ready.pop_front() {
            deliver(env);
        }
        if self.buffered() > 0 {
            self.push(chunk);
            while let Some(env) = self.next_envelope()? {
                deliver(env);
            }
            return Ok(());
        }
        let mut pos = 0;
        loop {
            let pending = &chunk[pos..];
            let Some(prefix) = pending.get(..4) else {
                break;
            };
            let len = u32::from_le_bytes(prefix.try_into().expect("4-byte slice")) as usize;
            if len > MAX_FRAME_LEN {
                return Err(FrameError::Oversized(len));
            }
            let Some(body) = pending.get(4..4 + len) else {
                break;
            };
            decode_body(body, &mut deliver)?;
            pos += 4 + len;
        }
        if pos < chunk.len() {
            self.push(&chunk[pos..]);
        }
        Ok(())
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.head
    }
}

/// Decodes one frame body (`ack_count · acks · envelope`), delivering the
/// piggybacked acks as standalone envelopes before the data envelope.
fn decode_body(body: &[u8], deliver: &mut impl FnMut(Envelope)) -> Result<(), FrameError> {
    let Some(count_bytes) = body.get(..2) else {
        return Err(FrameError::Codec(CodecError::UnexpectedEof));
    };
    let ack_count = u16::from_le_bytes(count_bytes.try_into().expect("2-byte slice")) as usize;
    if ack_count > MAX_PIGGY_ACKS {
        return Err(FrameError::Oversized(ack_count));
    }
    let mut r = Reader::new(&body[2..]);
    for _ in 0..ack_count {
        let ack = PiggyAck::decode(&mut r).map_err(FrameError::Codec)?;
        deliver(ack.into_envelope());
    }
    let env = Envelope::decode(&mut r).map_err(FrameError::Codec)?;
    if r.remaining() != 0 {
        return Err(FrameError::Codec(CodecError::TrailingBytes));
    }
    deliver(env);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MsgSeqNo, ProcessId};

    fn data_env(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![seq as u8; 3],
                dirty: false,
            },
        )
    }

    fn ack(seq: u64) -> PiggyAck {
        PiggyAck {
            to: ProcessId(1).into(),
            id: MsgId {
                from: ProcessId(2),
                seq: MsgSeqNo((1 << 62) | seq),
            },
            of: MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
        }
    }

    #[test]
    fn piggybacked_acks_come_out_first_as_standalone_envelopes() {
        let env = data_env(9);
        let acks = [ack(3), ack(4)];
        let frame = frame_envelope_with_acks(&env, &acks).unwrap();
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        for a in acks {
            assert_eq!(dec.next_envelope().unwrap(), Some(a.into_envelope()));
        }
        assert_eq!(dec.next_envelope().unwrap(), Some(env));
        assert_eq!(dec.next_envelope().unwrap(), None);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn ackless_frames_match_the_plain_encoder() {
        let env = data_env(1);
        assert_eq!(
            frame_envelope(&env).unwrap(),
            frame_envelope_with_acks(&env, &[]).unwrap()
        );
    }

    #[test]
    fn ack_roundtrips_through_envelope_form() {
        let a = ack(17);
        assert_eq!(PiggyAck::from_envelope(&a.into_envelope()), Some(a));
        assert_eq!(PiggyAck::from_envelope(&data_env(0)), None);
    }

    #[test]
    fn too_many_piggybacked_acks_is_an_error() {
        let acks: Vec<PiggyAck> = (0..MAX_PIGGY_ACKS as u64 + 1).map(ack).collect();
        assert!(matches!(
            frame_envelope_with_acks(&data_env(0), &acks),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn hostile_ack_count_poisons_the_stream() {
        // A body whose ack_count claims more acks than MAX_PIGGY_ACKS.
        let mut frame = Vec::new();
        frame.extend_from_slice(&8u32.to_le_bytes());
        frame.extend_from_slice(&(MAX_PIGGY_ACKS as u16 + 1).to_le_bytes());
        frame.extend_from_slice(&[0u8; 6]);
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_envelope(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn truncated_ack_header_is_a_codec_error() {
        // len = 1: too short to even hold the two-byte ack count.
        let mut frame = Vec::new();
        frame.extend_from_slice(&1u32.to_le_bytes());
        frame.push(0);
        let mut dec = FrameDecoder::new();
        dec.push(&frame);
        assert!(matches!(dec.next_envelope(), Err(FrameError::Codec(_))));
    }
}
