//! A threaded, real-time transport for the middleware runtime.
//!
//! Envelopes are delivered by a dedicated delivery thread after a sampled
//! real-time delay, preserving per-link FIFO order — the same contract as
//! [`SimNetwork`](crate::SimNetwork), but on the wall clock.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synergy_des::DetRng;

use crate::message::{Endpoint, Envelope, MissionId};
use crate::sim::LinkKey;

struct Pending {
    at: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Shared {
    queue: Mutex<State>,
    wakeup: Condvar,
    shutdown: AtomicBool,
}

struct State {
    heap: BinaryHeap<Reverse<Pending>>,
    // Registration is per (mission, endpoint): many tenants share the
    // transport (and its per-link FIFO floors) while their deliveries stay
    // apart. Solo deployments register under `MissionId::SOLO`.
    endpoints: HashMap<(MissionId, Endpoint), Sender<Envelope>>,
    fifo_floor: HashMap<LinkKey, Instant>,
    next_seq: u64,
}

/// A real-time in-process transport built on standard-library channels.
///
/// # Example
///
/// ```rust
/// use std::time::Duration;
/// use synergy_net::threaded::ThreadedNet;
/// use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
///
/// let net = ThreadedNet::new(Duration::from_micros(50)..Duration::from_micros(200), 1);
/// let rx = net.register(ProcessId(2).into());
/// net.send(Envelope::new(
///     MsgId { from: ProcessId(1), seq: MsgSeqNo(0) },
///     ProcessId(2),
///     MessageBody::Application { payload: vec![42], dirty: false },
/// ));
/// let got = rx.recv_timeout(Duration::from_secs(1)).expect("delivered");
/// assert_eq!(got.id.seq, MsgSeqNo(0));
/// net.shutdown();
/// ```
pub struct ThreadedNet {
    shared: Arc<Shared>,
    rng: Mutex<DetRng>,
    delay: std::ops::Range<Duration>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl ThreadedNet {
    /// Creates the transport and spawns its delivery thread.
    ///
    /// # Panics
    ///
    /// Panics if the delay range is empty or inverted.
    pub fn new(delay: std::ops::Range<Duration>, seed: u64) -> Self {
        assert!(delay.start <= delay.end, "inverted delay range");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                heap: BinaryHeap::new(),
                endpoints: HashMap::new(),
                fifo_floor: HashMap::new(),
                next_seq: 0,
            }),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("synergy-net-delivery".into())
            .spawn(move || delivery_loop(worker_shared))
            .expect("spawn delivery thread");
        ThreadedNet {
            shared,
            rng: Mutex::new(DetRng::new(seed).stream("threaded-net")),
            delay,
            worker: Mutex::new(Some(worker)),
        }
    }

    /// Registers an endpoint for the solo mission and returns its delivery
    /// channel.
    ///
    /// Re-registering an endpoint replaces the previous channel (the old
    /// receiver stops seeing new messages).
    pub fn register(&self, endpoint: Endpoint) -> Receiver<Envelope> {
        self.register_mission(MissionId::SOLO, endpoint)
    }

    /// Registers an endpoint for one mission (tenant) of a shared
    /// deployment. Deliveries are demultiplexed on the envelope's mission
    /// tag, so any number of missions can reuse the canonical process ids
    /// over this one transport.
    pub fn register_mission(&self, mission: MissionId, endpoint: Endpoint) -> Receiver<Envelope> {
        let (tx, rx) = channel();
        let mut state = self.shared.queue.lock().expect("net lock");
        state.endpoints.insert((mission, endpoint), tx);
        rx
    }

    /// Enqueues `envelope` for delayed delivery.
    ///
    /// Messages to unregistered endpoints are dropped at delivery time, like
    /// datagrams to a closed port.
    pub fn send(&self, envelope: Envelope) {
        let delay = {
            let mut rng = self.rng.lock().expect("rng lock");
            if self.delay.start == self.delay.end {
                self.delay.start
            } else {
                let ns = rng.gen_range(self.delay.start.as_nanos()..self.delay.end.as_nanos());
                Duration::from_nanos(ns as u64)
            }
        };
        let link = LinkKey::of(&envelope);
        let mut state = self.shared.queue.lock().expect("net lock");
        let natural = Instant::now() + delay;
        let at = state
            .fifo_floor
            .get(&link)
            .map_or(natural, |floor| natural.max(*floor));
        state.fifo_floor.insert(link, at);
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(Reverse(Pending {
            at,
            seq,
            env: envelope,
        }));
        drop(state);
        self.shared.wakeup.notify_one();
    }

    /// Stops the delivery thread, dropping any undelivered messages. Safe to
    /// call more than once; also invoked on drop.
    pub fn shutdown(&self) {
        {
            // Setting the flag under the queue lock guarantees the delivery
            // thread is either before its shutdown check (it will see the
            // flag) or already in `wait` (it will receive the notify) — never
            // between the two, which would lose the wakeup.
            let _guard = self.shared.queue.lock().expect("net lock");
            self.shared.shutdown.store(true, AtomicOrdering::SeqCst);
        }
        self.shared.wakeup.notify_all();
        if let Some(handle) = self.worker.lock().expect("worker lock").take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadedNet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn delivery_loop(shared: Arc<Shared>) {
    let mut state = shared.queue.lock().expect("net lock");
    loop {
        if shared.shutdown.load(AtomicOrdering::SeqCst) {
            return;
        }
        let now = Instant::now();
        // Deliver everything due. The shutdown flag is re-checked inside the
        // drain: `shutdown()` can set it while this thread holds the lock for
        // a long backlog (or right after a `wait_timeout` wakeup), and
        // nothing may be delivered once the flag is observable.
        while let Some(Reverse(p)) = state.heap.peek() {
            if shared.shutdown.load(AtomicOrdering::SeqCst) {
                return;
            }
            if p.at > now {
                break;
            }
            let Reverse(p) = state.heap.pop().expect("peeked entry exists");
            if let Some(tx) = state.endpoints.get(&(p.env.mission, p.env.to)) {
                // A closed receiver is indistinguishable from a crashed node;
                // drop silently.
                let _ = tx.send(p.env);
            }
        }
        let wait = state
            .heap
            .peek()
            .map(|Reverse(p)| p.at.saturating_duration_since(Instant::now()));
        state = match wait {
            Some(d) if d > Duration::ZERO => {
                shared.wakeup.wait_timeout(state, d).expect("net lock").0
            }
            Some(_) => state, // something due immediately: loop again
            None => shared.wakeup.wait(state).expect("net lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageBody, MsgId, MsgSeqNo, ProcessId};

    fn env(seq: u64, payload: u8) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![payload],
                dirty: false,
            },
        )
    }

    #[test]
    fn missions_share_one_transport_and_demux_on_the_tag() {
        let net = ThreadedNet::new(Duration::from_micros(10)..Duration::from_micros(50), 9);
        let rx_a = net.register_mission(MissionId(1), ProcessId(2).into());
        let rx_b = net.register_mission(MissionId(2), ProcessId(2).into());
        // Interleave two tenants over the same (P1 -> P2) route.
        for i in 0..20 {
            net.send(env(i, i as u8).with_mission(MissionId(1 + i % 2)));
        }
        let drain = |rx: &Receiver<Envelope>, n: usize| -> Vec<u64> {
            (0..n)
                .map(|_| {
                    rx.recv_timeout(Duration::from_secs(2))
                        .expect("delivered")
                        .id
                        .seq
                        .0
                })
                .collect()
        };
        let a = drain(&rx_a, 10);
        let b = drain(&rx_b, 10);
        assert_eq!(a, (0..20).filter(|i| i % 2 == 0).collect::<Vec<_>>());
        assert_eq!(b, (0..20).filter(|i| i % 2 == 1).collect::<Vec<_>>());
        assert!(
            rx_a.recv_timeout(Duration::from_millis(20)).is_err(),
            "no cross-tenant leakage"
        );
        net.shutdown();
    }

    #[test]
    fn delivers_in_fifo_order_per_link() {
        let net = ThreadedNet::new(Duration::from_micros(10)..Duration::from_millis(2), 3);
        let rx = net.register(ProcessId(2).into());
        for i in 0..50 {
            net.send(env(i, i as u8));
        }
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(
                rx.recv_timeout(Duration::from_secs(2))
                    .expect("delivery within timeout")
                    .id
                    .seq
                    .0,
            );
        }
        let sorted: Vec<u64> = (0..50).collect();
        assert_eq!(got, sorted);
        net.shutdown();
    }

    #[test]
    fn unregistered_endpoint_drops_messages() {
        let net = ThreadedNet::new(Duration::from_micros(1)..Duration::from_micros(2), 0);
        // No registration for P2: send must not panic or block.
        net.send(env(0, 0));
        std::thread::sleep(Duration::from_millis(20));
        net.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let net = ThreadedNet::new(Duration::from_micros(1)..Duration::from_micros(2), 0);
        net.shutdown();
        net.shutdown();
    }

    #[test]
    fn shutdown_with_pending_heap_delivers_nothing_after_flag() {
        // Deliveries still 50 ms out when shutdown() sets the flag: the
        // delivery thread must exit without draining them — no panic, no
        // late deliveries.
        let net = ThreadedNet::new(Duration::from_millis(50)..Duration::from_millis(60), 7);
        let rx = net.register(ProcessId(2).into());
        for i in 0..100 {
            net.send(env(i, i as u8));
        }
        net.shutdown();
        // The worker has joined; wait past the scheduled delivery instants
        // and confirm none of the pending envelopes leaked out.
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            rx.try_recv().is_err(),
            "no delivery may happen after the shutdown flag is set"
        );
    }

    #[test]
    fn shutdown_racing_due_deliveries_is_clean() {
        // Messages fall due immediately while shutdown() races the drain
        // loop: whatever was delivered happened before the flag, the rest is
        // dropped, and join never panics.
        for round in 0..20 {
            let net = ThreadedNet::new(Duration::ZERO..Duration::from_micros(50), round);
            let rx = net.register(ProcessId(2).into());
            for i in 0..50 {
                net.send(env(i, i as u8));
            }
            net.shutdown();
            let delivered = rx.try_iter().count();
            assert!(delivered <= 50);
            // After shutdown() returns the delivery thread is joined: the
            // channel must be closed with nothing further in flight.
            assert!(rx.recv_timeout(Duration::from_millis(20)).is_err());
        }
    }

    #[test]
    fn zero_width_delay_range_works() {
        let net = ThreadedNet::new(Duration::from_micros(5)..Duration::from_micros(5), 0);
        let rx = net.register(ProcessId(2).into());
        net.send(env(0, 9));
        let got = rx.recv_timeout(Duration::from_secs(1)).expect("delivered");
        assert_eq!(got.id.seq.0, 0);
        net.shutdown();
    }
}
