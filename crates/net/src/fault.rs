//! Link-level fault injection.

use synergy_des::DetRng;

/// Probabilistic message loss and duplication on a link.
///
/// The protocols under study assume reliable FIFO channels for their
/// correctness arguments; fault injection exists for the *negative* tests
/// that show which guarantees the transport layer itself must provide.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
}

impl LinkFaults {
    /// No faults: every message delivered exactly once.
    pub const NONE: LinkFaults = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.0,
    };

    /// Creates a fault model, validating probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(drop_prob: f64, dup_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "invalid drop_prob: {drop_prob}"
        );
        assert!(
            (0.0..=1.0).contains(&dup_prob),
            "invalid dup_prob: {dup_prob}"
        );
        LinkFaults {
            drop_prob,
            dup_prob,
        }
    }

    /// Whether the next message should be dropped.
    pub fn roll_drop(&self, rng: &mut DetRng) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob)
    }

    /// Whether the next delivered message should be duplicated.
    pub fn roll_duplicate(&self, rng: &mut DetRng) -> bool {
        self.dup_prob > 0.0 && rng.gen_bool(self.dup_prob)
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let mut rng = DetRng::new(0);
        for _ in 0..100 {
            assert!(!LinkFaults::NONE.roll_drop(&mut rng));
            assert!(!LinkFaults::NONE.roll_duplicate(&mut rng));
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let f = LinkFaults::new(1.0, 0.0);
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert!(f.roll_drop(&mut rng));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let f = LinkFaults::new(0.3, 0.0);
        let mut rng = DetRng::new(2);
        let drops = (0..10_000).filter(|_| f.roll_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops={drops}");
    }

    #[test]
    #[should_panic(expected = "invalid drop_prob")]
    fn invalid_probability_rejected() {
        LinkFaults::new(1.5, 0.0);
    }
}
