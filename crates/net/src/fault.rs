//! Link-level fault injection.
//!
//! Two layers share this module:
//!
//! * [`LinkFaults`] — per-message loss/duplication probabilities, consumed
//!   by the simulator's `SimNetwork` routing model.
//! * [`LinkFaultPlan`] — a full deterministic fault schedule for a *live*
//!   transport ([`FaultyTransport`](crate::FaultyTransport)): the same
//!   probabilities plus bounded delays, timed link partitions, and the
//!   retransmission policy that masks the injected loss. The plan is
//!   [`Codec`]-serializable so a cluster orchestrator can ship it to node
//!   processes on the command line.
//!
//! Keeping both in one module is deliberate: the simulator and the cluster
//! draw from the same fault vocabulary, exactly as `NodeId`/`FaultPlan`
//! already do for crashes.

use synergy_codec::codec_struct;
use synergy_des::DetRng;

/// Probabilistic message loss and duplication on a link.
///
/// The protocols under study assume reliable FIFO channels for their
/// correctness arguments; fault injection exists for the *negative* tests
/// that show which guarantees the transport layer itself must provide.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is delivered twice.
    pub dup_prob: f64,
}

impl LinkFaults {
    /// No faults: every message delivered exactly once.
    pub const NONE: LinkFaults = LinkFaults {
        drop_prob: 0.0,
        dup_prob: 0.0,
    };

    /// Creates a fault model, validating probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn new(drop_prob: f64, dup_prob: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_prob),
            "invalid drop_prob: {drop_prob}"
        );
        assert!(
            (0.0..=1.0).contains(&dup_prob),
            "invalid dup_prob: {dup_prob}"
        );
        LinkFaults {
            drop_prob,
            dup_prob,
        }
    }

    /// Whether the next message should be dropped.
    pub fn roll_drop(&self, rng: &mut DetRng) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob)
    }

    /// Whether the next delivered message should be duplicated.
    pub fn roll_duplicate(&self, rng: &mut DetRng) -> bool {
        self.dup_prob > 0.0 && rng.gen_bool(self.dup_prob)
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

codec_struct!(LinkFaults {
    drop_prob,
    dup_prob
});

/// A timed link outage, expressed as milliseconds since the faulty
/// transport was created. While a window is open every route holds its
/// traffic; held frames flush in order when the window closes, so a
/// partition manifests as delay, never as reordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionWindow {
    /// Window start, milliseconds after transport creation.
    pub start_ms: u64,
    /// Window end (exclusive), milliseconds after transport creation.
    pub end_ms: u64,
}

impl PartitionWindow {
    /// Whether the window is open at `elapsed_ms` since transport creation.
    pub fn contains(&self, elapsed_ms: u64) -> bool {
        (self.start_ms..self.end_ms).contains(&elapsed_ms)
    }
}

codec_struct!(PartitionWindow { start_ms, end_ms });

/// Deterministic fault schedule for a live transport.
///
/// The plan describes a *lossy wire underneath a retransmitting link
/// layer*: rolled drops are retried with bounded backoff up to
/// [`max_attempts`](Self::max_attempts), so injected loss is masked into
/// extra latency unless the retry budget is exhausted (which the wrapper
/// reports rather than hides). Duplication applies only to idempotent ack
/// frames — see `FaultyTransport` for why application frames must never
/// be duplicated.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkFaultPlan {
    /// Per-attempt drop probability and per-delivery ack-dup probability.
    pub faults: LinkFaults,
    /// Uniform extra delay per envelope, `[min_ms, max_ms]`.
    pub delay_ms: (u64, u64),
    /// Timed link outages (all routes hold, then flush in order).
    pub partitions: Vec<PartitionWindow>,
    /// Send attempts per envelope before the frame is declared lost.
    pub max_attempts: u32,
    /// Retransmit backoff `(start_ms, cap_ms)`, doubling per attempt.
    pub retry_ms: (u64, u64),
    /// Seed for the per-route deterministic RNG streams.
    pub seed: u64,
}

impl LinkFaultPlan {
    /// A plan that injects nothing; the wrapper becomes a passthrough.
    pub fn inert(seed: u64) -> Self {
        LinkFaultPlan {
            faults: LinkFaults::NONE,
            delay_ms: (0, 0),
            partitions: Vec::new(),
            max_attempts: 1,
            retry_ms: (1, 1),
            seed,
        }
    }

    /// Whether the plan injects any fault at all.
    pub fn is_inert(&self) -> bool {
        self.faults == LinkFaults::NONE && self.delay_ms == (0, 0) && self.partitions.is_empty()
    }

    /// Validates ranges that the injector relies on.
    ///
    /// # Panics
    ///
    /// Panics on an empty attempt budget or inverted delay bounds.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        assert!(
            self.delay_ms.0 <= self.delay_ms.1,
            "inverted delay bounds {:?}",
            self.delay_ms
        );
        assert!(self.retry_ms.0 >= 1, "retry start must be nonzero");
        for w in &self.partitions {
            assert!(w.start_ms < w.end_ms, "empty partition window {w:?}");
        }
    }
}

impl Default for LinkFaultPlan {
    fn default() -> Self {
        LinkFaultPlan::inert(0)
    }
}

codec_struct!(LinkFaultPlan {
    faults,
    delay_ms,
    partitions,
    max_attempts,
    retry_ms,
    seed,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_faults() {
        let mut rng = DetRng::new(0);
        for _ in 0..100 {
            assert!(!LinkFaults::NONE.roll_drop(&mut rng));
            assert!(!LinkFaults::NONE.roll_duplicate(&mut rng));
        }
    }

    #[test]
    fn certain_drop_always_drops() {
        let f = LinkFaults::new(1.0, 0.0);
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert!(f.roll_drop(&mut rng));
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let f = LinkFaults::new(0.3, 0.0);
        let mut rng = DetRng::new(2);
        let drops = (0..10_000).filter(|_| f.roll_drop(&mut rng)).count();
        assert!((2_500..3_500).contains(&drops), "drops={drops}");
    }

    #[test]
    #[should_panic(expected = "invalid drop_prob")]
    fn invalid_probability_rejected() {
        LinkFaults::new(1.5, 0.0);
    }

    #[test]
    fn partition_window_is_half_open() {
        let w = PartitionWindow {
            start_ms: 100,
            end_ms: 200,
        };
        assert!(!w.contains(99));
        assert!(w.contains(100));
        assert!(w.contains(199));
        assert!(!w.contains(200));
    }

    #[test]
    fn inert_plan_detects_every_fault_knob() {
        let mut plan = LinkFaultPlan::inert(7);
        assert!(plan.is_inert());
        plan.faults = LinkFaults::new(0.1, 0.0);
        assert!(!plan.is_inert());
        plan = LinkFaultPlan::inert(7);
        plan.delay_ms = (0, 5);
        assert!(!plan.is_inert());
        plan = LinkFaultPlan::inert(7);
        plan.partitions.push(PartitionWindow {
            start_ms: 0,
            end_ms: 1,
        });
        assert!(!plan.is_inert());
    }

    #[test]
    fn plan_roundtrips_through_codec() {
        let plan = LinkFaultPlan {
            faults: LinkFaults::new(0.125, 0.5),
            delay_ms: (2, 17),
            partitions: vec![
                PartitionWindow {
                    start_ms: 300,
                    end_ms: 900,
                },
                PartitionWindow {
                    start_ms: 1500,
                    end_ms: 1600,
                },
            ],
            max_attempts: 16,
            retry_ms: (4, 60),
            seed: 0xDEAD_BEEF,
        };
        plan.validate();
        let bytes = synergy_codec::to_bytes(&plan).expect("encode");
        let back: LinkFaultPlan = synergy_codec::from_bytes(&bytes).expect("decode");
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn zero_attempt_budget_rejected() {
        let mut plan = LinkFaultPlan::inert(0);
        plan.max_attempts = 0;
        plan.validate();
    }
}
