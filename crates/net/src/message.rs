//! Envelope and identifier types shared by every protocol engine.

use core::fmt;

use synergy_codec::{
    codec_newtype, codec_struct, decode_bytes, encode_bytes, Codec, CodecError, Reader,
};

/// Identifies a protocol process (e.g. `P1act`, `P1sdw`, `P2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies an external system (device) that receives external messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DeviceId(pub u32);

/// Identifies one independent mission (tenant) multiplexed over a shared
/// runtime.
///
/// Process and device ids are *per mission*: every mission reuses the
/// paper's canonical `P1act`/`P1sdw`/`P2`/`D0` layout, and the mission id
/// on each [`Envelope`] is what keeps thousands of tenants apart while
/// they share one transport route. Single-mission deployments (the
/// simulator, the three-process cluster) run as [`MissionId::SOLO`], whose
/// tag encodes and displays exactly like the pre-fleet wire format's
/// absence of one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MissionId(pub u64);

impl MissionId {
    /// The implicit mission of single-tenant deployments.
    pub const SOLO: MissionId = MissionId(0);
}

impl fmt::Display for MissionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// A message destination: another process or an external device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Endpoint {
    /// An interacting process inside the system.
    Process(ProcessId),
    /// An external system; messages to devices are *external messages* in
    /// MDCD terms and subject to acceptance testing.
    Device(DeviceId),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Process(p) => write!(f, "{p}"),
            Endpoint::Device(d) => write!(f, "{d}"),
        }
    }
}

impl From<ProcessId> for Endpoint {
    fn from(p: ProcessId) -> Self {
        Endpoint::Process(p)
    }
}

impl From<DeviceId> for Endpoint {
    fn from(d: DeviceId) -> Self {
        Endpoint::Device(d)
    }
}

/// A per-sender application message sequence number (`msg_SN` in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MsgSeqNo(pub u64);

impl MsgSeqNo {
    /// The successor sequence number.
    #[must_use]
    pub fn next(self) -> MsgSeqNo {
        MsgSeqNo(self.0 + 1)
    }
}

impl fmt::Display for MsgSeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Control-plane namespaces (acks, passed_AT) use the top bits; the
        // raw value is noise in traces.
        if self.0 >= 1 << 62 {
            write!(f, "sn#ctrl{}", self.0 & 0xFFFF)
        } else {
            write!(f, "sn{}", self.0)
        }
    }
}

/// The stable-storage checkpoint sequence number (`Ndc` in the paper).
///
/// Piggybacked on `passed_AT` notifications so a receiver can tell whether
/// the notification was sent in the same checkpointing epoch (see paper §3
/// and §4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CkptSeqNo(pub u64);

impl CkptSeqNo {
    /// The successor checkpoint number.
    #[must_use]
    pub fn next(self) -> CkptSeqNo {
        CkptSeqNo(self.0 + 1)
    }
}

impl fmt::Display for CkptSeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ndc{}", self.0)
    }
}

/// Globally unique message identifier: sender plus per-sender sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The sending process.
    pub from: ProcessId,
    /// The sender-assigned sequence number.
    pub seq: MsgSeqNo,
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.from, self.seq)
    }
}

/// The body of a message, mirroring the message classes of the paper.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MessageBody {
    /// An internal application-purpose message between processes. The
    /// sender's dirty bit is piggybacked (`append(m, dirty_bit)`, Appendix A).
    Application {
        /// Opaque application payload.
        payload: Vec<u8>,
        /// The sender's dirty bit at send time.
        dirty: bool,
    },
    /// An external message to a device (a control command/data item). These
    /// are what acceptance tests validate.
    External {
        /// Opaque command/data payload.
        payload: Vec<u8>,
    },
    /// The broadcast `passed_AT` notification.
    PassedAt {
        /// The last valid message sequence number of the AT-passing process
        /// (`msg_SN`), letting receivers update their valid-message register.
        msg_sn: MsgSeqNo,
        /// The sender's stable checkpoint number (`Ndc`) at notification
        /// time.
        ndc: CkptSeqNo,
    },
    /// A transport-level acknowledgment of an application message.
    Ack {
        /// The message being acknowledged.
        of: MsgId,
    },
}

impl MessageBody {
    /// Whether this is an application-purpose (internal) message.
    pub fn is_application(&self) -> bool {
        matches!(self, MessageBody::Application { .. })
    }

    /// Whether this is a `passed_AT` notification.
    pub fn is_passed_at(&self) -> bool {
        matches!(self, MessageBody::PassedAt { .. })
    }

    /// Whether this is a transport acknowledgment.
    pub fn is_ack(&self) -> bool {
        matches!(self, MessageBody::Ack { .. })
    }

    /// Whether this is an external (device-bound) message.
    pub fn is_external(&self) -> bool {
        matches!(self, MessageBody::External { .. })
    }
}

/// A routed message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Unique identifier (sender + sequence).
    pub id: MsgId,
    /// Destination endpoint.
    pub to: Endpoint,
    /// Message body.
    pub body: MessageBody,
    /// The mission (tenant) this envelope belongs to. Hosts stamp their
    /// mission on everything they send; transports and routes are
    /// mission-blind, and receivers demultiplex on this tag.
    pub mission: MissionId,
}

impl Envelope {
    /// Convenience constructor for a [`MissionId::SOLO`] envelope.
    pub fn new(id: MsgId, to: impl Into<Endpoint>, body: MessageBody) -> Self {
        Envelope {
            id,
            to: to.into(),
            body,
            mission: MissionId::SOLO,
        }
    }

    /// Tags the envelope with a mission.
    #[must_use]
    pub fn with_mission(mut self, mission: MissionId) -> Self {
        self.mission = mission;
        self
    }

    /// The sending process.
    pub fn from(&self) -> ProcessId {
        self.id.from
    }
}

codec_newtype!(ProcessId);
codec_newtype!(DeviceId);
codec_newtype!(MissionId);
codec_newtype!(MsgSeqNo);
codec_newtype!(CkptSeqNo);
codec_struct!(MsgId { from, seq });
codec_struct!(Envelope {
    id,
    to,
    body,
    mission
});

impl Codec for Endpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Endpoint::Process(p) => {
                0u32.encode(out);
                p.encode(out);
            }
            Endpoint::Device(d) => {
                1u32.encode(out);
                d.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(Endpoint::Process(ProcessId::decode(r)?)),
            1 => Ok(Endpoint::Device(DeviceId::decode(r)?)),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

impl Codec for MessageBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MessageBody::Application { payload, dirty } => {
                0u32.encode(out);
                encode_bytes(payload, out);
                dirty.encode(out);
            }
            MessageBody::External { payload } => {
                1u32.encode(out);
                encode_bytes(payload, out);
            }
            MessageBody::PassedAt { msg_sn, ndc } => {
                2u32.encode(out);
                msg_sn.encode(out);
                ndc.encode(out);
            }
            MessageBody::Ack { of } => {
                3u32.encode(out);
                of.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(r)? {
            0 => Ok(MessageBody::Application {
                payload: decode_bytes(r)?,
                dirty: bool::decode(r)?,
            }),
            1 => Ok(MessageBody::External {
                payload: decode_bytes(r)?,
            }),
            2 => Ok(MessageBody::PassedAt {
                msg_sn: MsgSeqNo::decode(r)?,
                ndc: CkptSeqNo::decode(r)?,
            }),
            3 => Ok(MessageBody::Ack {
                of: MsgId::decode(r)?,
            }),
            other => Err(CodecError::InvalidVariant(other)),
        }
    }
}

impl fmt::Display for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.body {
            MessageBody::Application { dirty, .. } => {
                if *dirty {
                    "app(dirty)"
                } else {
                    "app(clean)"
                }
            }
            MessageBody::External { .. } => "external",
            MessageBody::PassedAt { .. } => "passed_AT",
            MessageBody::Ack { .. } => "ack",
        };
        // Solo envelopes render exactly as before the fleet layer existed,
        // keeping single-mission traces stable.
        if self.mission == MissionId::SOLO {
            write!(f, "{} {}->{} [{kind}]", self.id, self.id.from, self.to)
        } else {
            write!(
                f,
                "{}@{} {}->{} [{kind}]",
                self.id, self.mission, self.id.from, self.to
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_numbers_advance() {
        assert_eq!(MsgSeqNo(0).next(), MsgSeqNo(1));
        assert_eq!(CkptSeqNo(41).next(), CkptSeqNo(42));
    }

    #[test]
    fn body_class_predicates() {
        let app = MessageBody::Application {
            payload: vec![1],
            dirty: true,
        };
        let ext = MessageBody::External { payload: vec![] };
        let pat = MessageBody::PassedAt {
            msg_sn: MsgSeqNo(3),
            ndc: CkptSeqNo(1),
        };
        let ack = MessageBody::Ack {
            of: MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(3),
            },
        };
        assert!(app.is_application() && !app.is_external());
        assert!(ext.is_external() && !ext.is_ack());
        assert!(pat.is_passed_at() && !pat.is_application());
        assert!(ack.is_ack() && !ack.is_passed_at());
    }

    #[test]
    fn endpoint_conversions_and_display() {
        let p: Endpoint = ProcessId(2).into();
        let d: Endpoint = DeviceId(0).into();
        assert_eq!(p.to_string(), "P2");
        assert_eq!(d.to_string(), "D0");
    }

    #[test]
    fn envelope_display_names_kind() {
        let env = Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(7),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![],
                dirty: true,
            },
        );
        let text = env.to_string();
        assert!(text.contains("app(dirty)"), "{text}");
        assert!(text.contains("P1"), "{text}");
    }

    #[test]
    fn mission_tags_roundtrip_and_solo_display_is_unchanged() {
        let solo = Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(7),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![1],
                dirty: false,
            },
        );
        assert_eq!(solo.mission, MissionId::SOLO);
        assert!(
            !solo.to_string().contains('@'),
            "solo envelopes must render exactly as before the fleet layer"
        );
        let tagged = solo.clone().with_mission(MissionId(42));
        assert_ne!(tagged, solo, "the mission tag is part of identity");
        assert!(tagged.to_string().contains("@M42"), "{tagged}");
        let bytes = synergy_codec::to_bytes(&tagged).unwrap();
        let back: Envelope = synergy_codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.mission, MissionId(42));
        assert_eq!(back, tagged);
    }

    #[test]
    fn codec_roundtrip() {
        let bodies = [
            MessageBody::Application {
                payload: vec![1, 2],
                dirty: true,
            },
            MessageBody::External {
                payload: vec![9, 8, 7],
            },
            MessageBody::PassedAt {
                msg_sn: MsgSeqNo(3),
                ndc: CkptSeqNo(1),
            },
            MessageBody::Ack {
                of: MsgId {
                    from: ProcessId(2),
                    seq: MsgSeqNo(5),
                },
            },
        ];
        for (i, body) in bodies.into_iter().enumerate() {
            let to: Endpoint = if i % 2 == 0 {
                ProcessId(2).into()
            } else {
                DeviceId(3).into()
            };
            let env = Envelope::new(
                MsgId {
                    from: ProcessId(1),
                    seq: MsgSeqNo(7 + i as u64),
                },
                to,
                body,
            );
            let bytes = synergy_codec::to_bytes(&env).unwrap();
            let back: Envelope = synergy_codec::from_bytes(&bytes).unwrap();
            assert_eq!(back, env);
        }
    }
}
