//! Message model and transports for `synergy-ft`.
//!
//! This crate defines everything the protocol engines know about messaging —
//! [`Envelope`]s, sequence numbers, piggybacked metadata — plus two ways of
//! moving envelopes around:
//!
//! * [`SimNetwork`]: a *pure* routing model for the discrete-event simulator.
//!   Given a send instant it answers "when does this arrive, if ever?",
//!   enforcing per-link FIFO order, bounded delays `[tmin, tmax]`, and
//!   optional loss/duplication injection. The DES driver in the `synergy`
//!   crate turns those answers into scheduled events.
//! * [`threaded::ThreadedNet`]: a channel transport with a delivery thread,
//!   used by the `synergy-middleware` runtime.
//! * [`tcp::TcpTransport`]: length-prefixed codec frames over real sockets,
//!   used by the `synergy-cluster` multi-process runtime. The [`Transport`]
//!   trait abstracts over the last two so the middleware node loop is
//!   transport-agnostic.
//!
//! The time-based checkpointing protocol only relies on the delay bounds and
//! on acknowledgment bookkeeping ([`AckTracker`]), which is why a simulated
//! network preserves its behaviour faithfully (see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ack;
mod delay;
mod fault;
mod faulty;
mod frame;
mod live;
mod message;
pub mod reactor;
pub mod retry;
mod sim;
pub mod tcp;
pub mod threaded;
mod transport;

pub use ack::{AckTracker, PendingAcks};
pub use delay::DelayModel;
pub use fault::{LinkFaultPlan, LinkFaults, PartitionWindow};
pub use faulty::{FaultTotals, FaultyTransport, LostFrame};
pub use frame::{
    frame_envelope, frame_envelope_with_acks, FrameDecoder, FrameError, PiggyAck, MAX_FRAME_LEN,
    MAX_PIGGY_ACKS,
};
pub use live::{LiveWire, WireKind};
pub use message::{
    CkptSeqNo, DeviceId, Endpoint, Envelope, MessageBody, MissionId, MsgId, MsgSeqNo, ProcessId,
};
pub use reactor::{ReactorTransport, SendError, WirePolicy, WireStats};
pub use sim::{LinkKey, RouteDecision, SimNetwork};
pub use transport::Transport;
