//! Pure routing model for the discrete-event simulator.

use std::collections::HashMap;

use synergy_des::{DetRng, SimDuration, SimTime};

use crate::delay::DelayModel;
use crate::fault::LinkFaults;
use crate::message::{Endpoint, Envelope, ProcessId};

/// An ordered link: one sender process to one destination endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkKey {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving endpoint.
    pub to: Endpoint,
}

impl LinkKey {
    /// The link carrying `envelope`.
    pub fn of(envelope: &Envelope) -> LinkKey {
        LinkKey {
            from: envelope.from(),
            to: envelope.to,
        }
    }
}

/// The outcome of routing one envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Deliver at `at`; when `duplicate_at` is set the message arrives a
    /// second time at that instant.
    Deliver {
        /// Primary delivery instant.
        at: SimTime,
        /// Optional duplicate delivery instant.
        duplicate_at: Option<SimTime>,
    },
    /// The message was lost.
    Dropped,
}

/// Delivery counters kept by [`SimNetwork`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Envelopes handed to `route`.
    pub sent: u64,
    /// Primary deliveries decided.
    pub delivered: u64,
    /// Envelopes dropped by fault injection.
    pub dropped: u64,
    /// Duplicate deliveries decided.
    pub duplicated: u64,
}

/// Bounded-delay FIFO network model.
///
/// `SimNetwork` holds no event queue of its own: the DES driver asks it to
/// [`route`](SimNetwork::route) each envelope and schedules the resulting
/// delivery instants. Per-link FIFO order is enforced by never scheduling a
/// delivery earlier than the link's previous one; the simulator's FIFO
/// tie-break preserves order among equal instants.
///
/// # Example
///
/// ```rust
/// use synergy_des::{DetRng, SimDuration, SimTime};
/// use synergy_net::{DelayModel, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId, RouteDecision, SimNetwork};
///
/// let mut net = SimNetwork::new(
///     DelayModel::uniform(SimDuration::from_micros(100), SimDuration::from_micros(500)),
///     DetRng::new(7),
/// );
/// let env = Envelope::new(
///     MsgId { from: ProcessId(1), seq: MsgSeqNo(0) },
///     ProcessId(2),
///     MessageBody::Application { payload: vec![], dirty: false },
/// );
/// match net.route(SimTime::ZERO, &env) {
///     RouteDecision::Deliver { at, .. } => assert!(at >= SimTime::from_nanos(100_000)),
///     RouteDecision::Dropped => unreachable!("no fault injection configured"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct SimNetwork {
    default_delay: DelayModel,
    link_delays: HashMap<LinkKey, DelayModel>,
    default_faults: LinkFaults,
    link_faults: HashMap<LinkKey, LinkFaults>,
    last_delivery: HashMap<LinkKey, SimTime>,
    rng: DetRng,
    counters: NetCounters,
}

impl SimNetwork {
    /// Creates a network where every link uses `default_delay` and no faults.
    pub fn new(default_delay: DelayModel, rng: DetRng) -> Self {
        SimNetwork {
            default_delay,
            link_delays: HashMap::new(),
            default_faults: LinkFaults::NONE,
            link_faults: HashMap::new(),
            last_delivery: HashMap::new(),
            rng: rng.stream("sim-network"),
            counters: NetCounters::default(),
        }
    }

    /// Overrides the delay model of one link (scenario scripting).
    pub fn set_link_delay(&mut self, link: LinkKey, model: DelayModel) {
        self.link_delays.insert(link, model);
    }

    /// Sets the fault model applied to every link without an override.
    pub fn set_default_faults(&mut self, faults: LinkFaults) {
        self.default_faults = faults;
    }

    /// Overrides the fault model of one link.
    pub fn set_link_faults(&mut self, link: LinkKey, faults: LinkFaults) {
        self.link_faults.insert(link, faults);
    }

    /// The smallest delay any link can exhibit (`tmin`).
    pub fn tmin(&self) -> SimDuration {
        self.link_delays
            .values()
            .map(DelayModel::min_delay)
            .chain(std::iter::once(self.default_delay.min_delay()))
            .min()
            .expect("iterator is non-empty")
    }

    /// The largest delay any link can exhibit (`tmax`).
    pub fn tmax(&self) -> SimDuration {
        self.link_delays
            .values()
            .map(DelayModel::max_delay)
            .chain(std::iter::once(self.default_delay.max_delay()))
            .max()
            .expect("iterator is non-empty")
    }

    /// Routing counters so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Decides when (whether) `envelope`, sent at `now`, arrives.
    pub fn route(&mut self, now: SimTime, envelope: &Envelope) -> RouteDecision {
        self.counters.sent += 1;
        let link = LinkKey::of(envelope);
        let faults = *self.link_faults.get(&link).unwrap_or(&self.default_faults);
        if faults.roll_drop(&mut self.rng) {
            self.counters.dropped += 1;
            return RouteDecision::Dropped;
        }
        let model = self.link_delays.get(&link).unwrap_or(&self.default_delay);
        let delay = model.sample(&mut self.rng);
        let natural = now + delay;
        let fifo_floor = self
            .last_delivery
            .get(&link)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let at = natural.max(fifo_floor);
        self.last_delivery.insert(link, at);
        self.counters.delivered += 1;
        let duplicate_at = if faults.roll_duplicate(&mut self.rng) {
            self.counters.duplicated += 1;
            let extra = model.sample(&mut self.rng);
            let dup = (at + extra).max(at);
            self.last_delivery.insert(link, dup);
            Some(dup)
        } else {
            None
        };
        RouteDecision::Deliver { at, duplicate_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageBody, MsgId, MsgSeqNo};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![],
                dirty: false,
            },
        )
    }

    fn net(model: DelayModel) -> SimNetwork {
        SimNetwork::new(model, DetRng::new(42))
    }

    #[test]
    fn fixed_delay_is_exact() {
        let mut n = net(DelayModel::Fixed(SimDuration::from_millis(1)));
        match n.route(SimTime::ZERO, &env(0)) {
            RouteDecision::Deliver { at, duplicate_at } => {
                assert_eq!(at, SimTime::from_nanos(1_000_000));
                assert_eq!(duplicate_at, None);
            }
            RouteDecision::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn fifo_order_is_preserved_per_link() {
        // With a widely varying delay, later sends could naturally arrive
        // earlier; FIFO flooring must prevent that.
        let mut n = net(DelayModel::uniform(
            SimDuration::from_micros(1),
            SimDuration::from_millis(100),
        ));
        let mut last = SimTime::ZERO;
        for i in 0..200 {
            let sent_at = SimTime::from_nanos(i * 10);
            match n.route(sent_at, &env(i)) {
                RouteDecision::Deliver { at, .. } => {
                    assert!(at >= last, "FIFO violated: {at} < {last}");
                    last = at;
                }
                RouteDecision::Dropped => panic!("unexpected drop"),
            }
        }
    }

    #[test]
    fn different_links_do_not_share_fifo_floor() {
        let mut n = net(DelayModel::Fixed(SimDuration::from_millis(10)));
        // First message on link 1->2 lands at 10ms.
        n.route(SimTime::ZERO, &env(0));
        // A message on link 1->3 sent later but with the same delay must not
        // be floored by the other link's last delivery.
        let other = Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(1),
            },
            ProcessId(3),
            MessageBody::Application {
                payload: vec![],
                dirty: false,
            },
        );
        match n.route(SimTime::from_nanos(1), &other) {
            RouteDecision::Deliver { at, .. } => {
                assert_eq!(at, SimTime::from_nanos(10_000_001));
            }
            RouteDecision::Dropped => panic!("unexpected drop"),
        }
    }

    #[test]
    fn drop_faults_drop() {
        let mut n = net(DelayModel::Fixed(SimDuration::from_millis(1)));
        n.set_default_faults(LinkFaults::new(1.0, 0.0));
        assert_eq!(n.route(SimTime::ZERO, &env(0)), RouteDecision::Dropped);
        assert_eq!(n.counters().dropped, 1);
    }

    #[test]
    fn duplicates_arrive_no_earlier_than_primary() {
        let mut n = net(DelayModel::uniform(
            SimDuration::from_micros(10),
            SimDuration::from_micros(50),
        ));
        n.set_default_faults(LinkFaults::new(0.0, 1.0));
        for i in 0..50 {
            if let RouteDecision::Deliver { at, duplicate_at } =
                n.route(SimTime::from_nanos(i * 1000), &env(i))
            {
                let dup = duplicate_at.expect("dup_prob = 1");
                assert!(dup >= at);
            }
        }
        assert_eq!(n.counters().duplicated, 50);
    }

    #[test]
    fn per_link_override_beats_default() {
        let mut n = net(DelayModel::Fixed(SimDuration::from_millis(5)));
        let e = env(0);
        n.set_link_delay(
            LinkKey::of(&e),
            DelayModel::Fixed(SimDuration::from_millis(1)),
        );
        match n.route(SimTime::ZERO, &e) {
            RouteDecision::Deliver { at, .. } => assert_eq!(at, SimTime::from_nanos(1_000_000)),
            RouteDecision::Dropped => panic!("unexpected drop"),
        }
        assert_eq!(n.tmin(), SimDuration::from_millis(1));
        assert_eq!(n.tmax(), SimDuration::from_millis(5));
    }

    #[test]
    fn counters_track_sends() {
        let mut n = net(DelayModel::Fixed(SimDuration::ZERO));
        for i in 0..5 {
            n.route(SimTime::ZERO, &env(i));
        }
        let c = n.counters();
        assert_eq!(c.sent, 5);
        assert_eq!(c.delivered, 5);
        assert_eq!(c.dropped, 0);
    }
}
