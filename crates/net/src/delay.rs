//! Message-delivery delay models.

use synergy_des::{DetRng, SimDuration};

/// How long a link takes to deliver one message.
///
/// The TB protocol's blocking periods are derived from the *bounds*
/// `[tmin, tmax]`; the model decides where inside those bounds each delivery
/// lands.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DelayModel {
    /// Every delivery takes exactly this long.
    Fixed(SimDuration),
    /// Deliveries are uniform over `[min, max]`.
    Uniform {
        /// Minimum delivery delay (`tmin`).
        min: SimDuration,
        /// Maximum delivery delay (`tmax`).
        max: SimDuration,
    },
}

impl DelayModel {
    /// A uniform model, validating the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn uniform(min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "tmin must not exceed tmax");
        DelayModel::Uniform { min, max }
    }

    /// The smallest delay this model can produce (`tmin`).
    pub fn min_delay(&self) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, .. } => min,
        }
    }

    /// The largest delay this model can produce (`tmax`).
    pub fn max_delay(&self) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { max, .. } => max,
        }
    }

    /// Draws one delivery delay.
    pub fn sample(&self, rng: &mut DetRng) -> SimDuration {
        match *self {
            DelayModel::Fixed(d) => d,
            DelayModel::Uniform { min, max } => {
                if min == max {
                    min
                } else {
                    SimDuration::from_nanos(rng.gen_range(min.as_nanos()..=max.as_nanos()))
                }
            }
        }
    }
}

impl Default for DelayModel {
    /// A LAN-ish default: uniform over `[0.5ms, 2ms]`.
    fn default() -> Self {
        DelayModel::uniform(SimDuration::from_micros(500), SimDuration::from_millis(2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let m = DelayModel::Fixed(SimDuration::from_millis(3));
        let mut rng = DetRng::new(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(3));
        }
        assert_eq!(m.min_delay(), m.max_delay());
    }

    #[test]
    fn uniform_respects_bounds() {
        let min = SimDuration::from_micros(100);
        let max = SimDuration::from_micros(900);
        let m = DelayModel::uniform(min, max);
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= min && d <= max);
        }
    }

    #[test]
    fn degenerate_uniform_is_fixed() {
        let d = SimDuration::from_micros(7);
        let m = DelayModel::uniform(d, d);
        let mut rng = DetRng::new(2);
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    #[should_panic(expected = "tmin must not exceed tmax")]
    fn inverted_bounds_rejected() {
        DelayModel::uniform(SimDuration::from_micros(9), SimDuration::from_micros(1));
    }

    #[test]
    fn default_is_sane() {
        let m = DelayModel::default();
        assert!(m.min_delay() < m.max_delay());
    }
}
