//! A nonblocking sharded reactor transport: the fixed-thread successor to
//! the thread-per-route [`TcpTransport`](crate::tcp::TcpTransport).
//!
//! The thread-per-route transport spawns a writer thread per destination
//! and a reader thread per inbound connection — fine for three nodes, dead
//! at fleet scale. The reactor runs every socket nonblocking on a **fixed
//! thread count**: `shards` event-loop threads (default
//! [`DEFAULT_SHARDS`]) plus one connector thread, independent of how many
//! routes or peers exist.
//!
//! * **Sharding** — every socket is owned by exactly one shard thread, so
//!   no socket is ever touched concurrently. Outbound connections shard by
//!   destination port; inbound connections are dealt round-robin by the
//!   accepting shard (shard 0, which owns the listener). Shards sleep on a
//!   condvar with a short poll timeout — senders nudge the owning shard,
//!   and the timeout bounds inbound-read latency without OS readiness
//!   APIs, keeping the crate dependency-free.
//! * **Write coalescing** — sends don't write; they encode into a pooled
//!   per-route frame buffer (one encode, no per-frame allocation in the
//!   steady state). The owning shard drains every ring targeting an
//!   address into a single staging buffer and flushes it with **one**
//!   `write` syscall per connection per sweep — a `writev`-shaped batch of
//!   many frames, instead of one syscall per frame. Senders nudge the
//!   owning shard only when a ring turns idle→busy, so a sustained burst
//!   costs one wakeup, not one per frame.
//! * **Ack piggybacking** — ack envelopes don't consume ring capacity or
//!   their own frames; they wait in a [`PendingAcks`] queue and ride the
//!   header of the next outbound data frame to the same route
//!   ([`frame`](crate::frame) wire format v2). With no data to ride, the
//!   oldest ack is promoted to a standalone frame carrying the rest.
//! * **Backpressure** — rings are bounded ([`WirePolicy::queue_bytes`]).
//!   [`try_send`](ReactorTransport::try_send) surfaces overflow as a typed
//!   [`SendError::Backpressure`] instead of growing an unbounded queue;
//!   the fire-and-forget [`Transport`] path blocks for ring space up to
//!   [`WirePolicy::send_stall`], then drops and counts.
//!
//! Delivery semantics match the other transports: per-link FIFO for data
//! frames (one ordered ring riding one TCP stream), silent drops for
//! unrouted destinations, reconnect-with-backoff and
//! [`gave_up_routes`](ReactorTransport::gave_up_routes) dead-route
//! accounting identical to [`ReconnectPolicy`]'s contract. Acks may
//! overtake data queued behind them — safe because acks are idempotent and
//! order-free with respect to every other message class (see DESIGN.md
//! §12).

use core::fmt;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use synergy_codec::{to_bytes_into, Codec};

use crate::ack::PendingAcks;
use crate::frame::{FrameDecoder, FrameError, PiggyAck, MAX_FRAME_LEN};
use crate::message::{Endpoint, Envelope};
use crate::retry::Backoff;
use crate::tcp::{GaveUpRoute, ReconnectPolicy};
use crate::transport::Transport;

/// Default number of shard (event-loop) threads.
pub const DEFAULT_SHARDS: usize = 2;

/// Default per-route outbound ring capacity in bytes.
pub const DEFAULT_QUEUE_BYTES: usize = 256 * 1024;

/// Target size of one coalesced write: a shard stops refilling a
/// connection's staging buffer past this many bytes.
const FLUSH_TARGET: usize = 64 * 1024;

/// A staging buffer smaller than this is not written until it has aged
/// [`COALESCE_WINDOW`]: at high fan-out each connection's share of one
/// sweep is a frame or two, and writing those eagerly degenerates into a
/// syscall per frame. Letting small batches ripen briefly restores
/// `writev`-shaped writes without materially delaying quiet links.
const WRITE_BATCH_MIN: usize = 4 * 1024;

/// How long a small staged batch may ripen before it is written anyway.
const COALESCE_WINDOW: Duration = Duration::from_micros(200);

/// Idle poll period: bounds inbound-read latency when no sender nudges the
/// shard.
const SWEEP_TIMEOUT: Duration = Duration::from_micros(500);

/// Consecutive sweeps that move fewer than [`BUSY_SWEEP_BYTES`] double the
/// poll period up to `SWEEP_TIMEOUT << IDLE_BACKOFF_MAX_SHIFT` (4ms):
/// quiescent shards cost ~1/8th the wakeups, and lightly-loaded shards
/// batch several sweeps' worth of traffic per wakeup instead of paying the
/// fixed sweep cost (timed wait, accept probe, would-block read) for a
/// handful of frames. A busy sweep or a nudge snaps back to
/// [`SWEEP_TIMEOUT`]. A shard with no listener, no inbound connections,
/// no rings, and nothing staged skips polling entirely and sleeps until
/// nudged.
const IDLE_BACKOFF_MAX_SHIFT: u32 = 3;

/// A sweep that moves at least this many bytes (read or written) is
/// saturated: keep polling at the base [`SWEEP_TIMEOUT`] so throughput is
/// not capped by the sweep period.
const BUSY_SWEEP_BYTES: usize = 32 * 1024;

/// Most acks a ring holds for piggybacking before further acks fall
/// through to ordinary encoded frames. Sized to absorb a full poll
/// period of ack-heavy traffic (a few hundred acks) while bounding the
/// queue to a few tens of kilobytes.
const MAX_PENDING_ACKS: usize = 1024;

/// How long the connector blocks in one connect attempt.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(250);

/// Tuning knobs for the reactor transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WirePolicy {
    /// Per-route outbound ring capacity; a full ring surfaces
    /// [`SendError::Backpressure`].
    pub queue_bytes: usize,
    /// Most acks piggybacked on one data frame (≤
    /// [`MAX_PIGGY_ACKS`](crate::MAX_PIGGY_ACKS)).
    pub max_piggy_acks: usize,
    /// How long the fire-and-forget [`Transport::send`] path waits for
    /// ring space before dropping the envelope (counted in
    /// [`WireStats::backpressure_dropped`]).
    pub send_stall: Duration,
    /// Event-loop thread count; sockets shard across them by peer port.
    pub shards: usize,
    /// Reconnect backoff and give-up budget, shared with the
    /// thread-per-route transport.
    pub reconnect: ReconnectPolicy,
}

impl Default for WirePolicy {
    fn default() -> Self {
        WirePolicy {
            queue_bytes: DEFAULT_QUEUE_BYTES,
            max_piggy_acks: 32,
            send_stall: Duration::from_secs(5),
            shards: DEFAULT_SHARDS,
            reconnect: ReconnectPolicy::default(),
        }
    }
}

/// Why [`ReactorTransport::try_send`] rejected an envelope.
#[derive(Debug)]
pub enum SendError {
    /// The destination's ring is full: the peer (or its shard) is not
    /// draining as fast as the caller produces. Retry after a delay, or
    /// treat the route as stalled.
    Backpressure {
        /// The destination endpoint.
        to: Endpoint,
        /// The address its ring currently targets.
        addr: SocketAddr,
        /// Bytes queued in the ring.
        queued_bytes: usize,
        /// The ring's capacity ([`WirePolicy::queue_bytes`]).
        capacity: usize,
    },
    /// No route for the destination (the fire-and-forget path drops these
    /// silently, like every other transport).
    NoRoute {
        /// The unrouted destination.
        to: Endpoint,
    },
    /// The route's address exhausted its reconnect budget and was declared
    /// dead; see [`ReactorTransport::gave_up_routes`].
    RouteDead {
        /// The dead address.
        addr: SocketAddr,
    },
    /// The envelope could not be framed.
    Frame(FrameError),
    /// The transport is shut down.
    Shutdown,
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::Backpressure {
                to,
                addr,
                queued_bytes,
                capacity,
            } => write!(
                f,
                "backpressure: ring for {to:?} via {addr} is full ({queued_bytes}/{capacity} bytes)"
            ),
            SendError::NoRoute { to } => write!(f, "no route for {to:?}"),
            SendError::RouteDead { addr } => write!(f, "route via {addr} gave up"),
            SendError::Frame(e) => write!(f, "frame error: {e}"),
            SendError::Shutdown => write!(f, "transport is shut down"),
        }
    }
}

impl std::error::Error for SendError {}

/// Monotonic counters exposed by [`ReactorTransport::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Data frames accepted into rings.
    pub frames_enqueued: u64,
    /// Data frames fully written to a socket.
    pub frames_sent: u64,
    /// Bytes written to sockets.
    pub bytes_written: u64,
    /// `write` syscalls that carried at least two frames.
    pub coalesced_writes: u64,
    /// Acks that rode a data frame's header.
    pub acks_piggybacked: u64,
    /// Acks promoted to their own frame (no data to ride).
    pub acks_standalone: u64,
    /// `try_send` calls rejected with [`SendError::Backpressure`].
    pub backpressure_errors: u64,
    /// Envelopes dropped by the blocking send path after
    /// [`WirePolicy::send_stall`] elapsed without ring space.
    pub backpressure_dropped: u64,
    /// Envelopes dropped because their route was dead.
    pub dropped_dead: u64,
}

#[derive(Default)]
struct StatCells {
    frames_enqueued: AtomicU64,
    frames_sent: AtomicU64,
    bytes_written: AtomicU64,
    coalesced_writes: AtomicU64,
    acks_piggybacked: AtomicU64,
    acks_standalone: AtomicU64,
    backpressure_errors: AtomicU64,
    backpressure_dropped: AtomicU64,
    dropped_dead: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> WireStats {
        WireStats {
            frames_enqueued: self.frames_enqueued.load(Ordering::Relaxed),
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            coalesced_writes: self.coalesced_writes.load(Ordering::Relaxed),
            acks_piggybacked: self.acks_piggybacked.load(Ordering::Relaxed),
            acks_standalone: self.acks_standalone.load(Ordering::Relaxed),
            backpressure_errors: self.backpressure_errors.load(Ordering::Relaxed),
            backpressure_dropped: self.backpressure_dropped.load(Ordering::Relaxed),
            dropped_dead: self.dropped_dead.load(Ordering::Relaxed),
        }
    }
}

/// Most spare payload buffers a ring keeps for reuse; beyond this they are
/// freed rather than pooled.
const POOL_MAX: usize = 64;

/// One endpoint's bounded outbound queue. Each frame is one pooled
/// encode buffer — senders encode straight into a recycled `Vec`, the
/// owning shard memcpys it into the staging buffer and returns the `Vec`
/// to the pool, so the steady state allocates nothing per frame.
struct RouteRing {
    inner: Mutex<RingInner>,
    /// Signalled whenever the shard drains bytes out (or the route dies):
    /// what the blocking send path waits on.
    space: Condvar,
}

struct RingInner {
    addr: SocketAddr,
    /// Encoded frame payloads awaiting flush, oldest first.
    frames: VecDeque<Vec<u8>>,
    /// Bytes queued across `frames`, each counted with its 4-byte length
    /// prefix — what [`WirePolicy::queue_bytes`] bounds.
    queued: usize,
    /// Acks waiting to piggyback on the next flush from this ring.
    acks: PendingAcks,
    /// Spare payload buffers recycled between sends (`to_bytes_into`
    /// clears before encoding, so they come back dirty and leave clean).
    pool: Vec<Vec<u8>>,
}

impl RingInner {
    fn queued_bytes(&self) -> usize {
        self.queued
    }

    /// Whether the owning shard has nothing staged from this ring — the
    /// send path only nudges the shard on the idle→busy transition; a
    /// busy ring's shard is already awake or due within the sweep timeout.
    fn is_idle(&self) -> bool {
        self.frames.is_empty() && self.acks.is_empty()
    }

    fn recycle(&mut self, buf: Vec<u8>) {
        if self.pool.len() < POOL_MAX {
            self.pool.push(buf);
        }
    }
}

struct ShardInbox {
    /// Accepted inbound streams assigned to this shard.
    inbound: Vec<TcpStream>,
    /// Outbound streams the connector established for this shard.
    established: Vec<(SocketAddr, TcpStream)>,
    /// Set by senders after enqueueing; cleared when the shard wakes.
    nudged: bool,
}

struct ShardHandle {
    inbox: Mutex<ShardInbox>,
    cv: Condvar,
}

impl ShardHandle {
    fn nudge(&self) {
        let mut inbox = self.inbox.lock().expect("shard inbox lock");
        inbox.nudged = true;
        self.cv.notify_one();
    }
}

struct ConnectJob {
    backoff: Backoff,
    next_at: Instant,
    /// The connector is mid-attempt on this address (lock released while
    /// connecting); don't reschedule.
    busy: bool,
}

struct Shared {
    policy: WirePolicy,
    shutdown: AtomicBool,
    stats: StatCells,
    /// Outbound queues, one per routed endpoint.
    rings: Mutex<HashMap<Endpoint, Arc<RouteRing>>>,
    /// Bumped whenever the ring set or any ring's address changes; shards
    /// cache their by-address ring grouping and rebuild it only when this
    /// moves, instead of re-snapshotting the map every sweep.
    rings_gen: AtomicU64,
    /// Inbound dispatch, same contract as the other transports.
    endpoints: Mutex<HashMap<Endpoint, Sender<Envelope>>>,
    /// Bumped by `register`; invalidates the per-connection delivery
    /// cache so re-registered endpoints take effect immediately.
    endpoints_gen: AtomicU64,
    /// Addresses that exhausted the reconnect budget → frames dropped
    /// since. `set_route` to the address revives it.
    dead: Mutex<HashMap<SocketAddr, u64>>,
    /// `dead.len()`, maintained under the `dead` lock — the send hot path
    /// checks this atomic and skips the lock entirely while nothing is
    /// dead (the overwhelmingly common case).
    dead_len: AtomicUsize,
    /// Pending/connecting addresses, owned by the connector thread.
    jobs: Mutex<HashMap<SocketAddr, ConnectJob>>,
    jobs_cv: Condvar,
    shards: Vec<ShardHandle>,
}

impl Shared {
    fn shard_of(&self, addr: SocketAddr) -> usize {
        addr.port() as usize % self.shards.len()
    }

    /// Whether `addr` is a gave-up route. Lock-free while nothing is dead.
    fn is_dead(&self, addr: SocketAddr) -> bool {
        self.dead_len.load(Ordering::Relaxed) > 0
            && self.dead.lock().expect("dead lock").contains_key(&addr)
    }

    /// Records `count` drops on a dead address and wakes ring waiters.
    fn count_dead_drops(&self, addr: SocketAddr, count: u64) {
        if count == 0 {
            return;
        }
        let mut dead = self.dead.lock().expect("dead lock");
        *dead.entry(addr).or_insert(0) += count;
        self.dead_len.store(dead.len(), Ordering::Relaxed);
    }

    /// Asks the connector to (re)establish `addr` unless it is already
    /// pending or dead.
    fn request_connect(&self, addr: SocketAddr) {
        if self.is_dead(addr) {
            return;
        }
        let mut jobs = self.jobs.lock().expect("jobs lock");
        jobs.entry(addr).or_insert_with(|| ConnectJob {
            backoff: self.policy.reconnect.backoff_for(addr),
            next_at: Instant::now(),
            busy: false,
        });
        self.jobs_cv.notify_one();
    }

    /// Purges every ring targeting a dead `addr`, counting the dropped
    /// frames and stranded acks, and wakes their space waiters.
    fn purge_rings_for(&self, addr: SocketAddr) {
        let rings: Vec<Arc<RouteRing>> = self
            .rings
            .lock()
            .expect("rings lock")
            .values()
            .cloned()
            .collect();
        for ring in rings {
            let mut inner = ring.inner.lock().expect("ring lock");
            if inner.addr != addr {
                continue;
            }
            let dropped = inner.frames.len() as u64 + inner.acks.len() as u64;
            inner.frames.clear();
            inner.queued = 0;
            inner.acks.drain_for_frame(usize::MAX);
            drop(inner);
            self.count_dead_drops(addr, dropped);
            ring.space.notify_all();
        }
    }
}

/// The sharded nonblocking transport. API mirrors
/// [`TcpTransport`](crate::tcp::TcpTransport) (`bind`, `register`,
/// `set_route`, `gave_up_routes`, `shutdown`) plus the typed
/// [`try_send`](Self::try_send) that surfaces backpressure.
pub struct ReactorTransport {
    local: SocketAddr,
    shared: Arc<Shared>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl ReactorTransport {
    /// Binds a listener (port 0 for OS-assigned) and starts the shard and
    /// connector threads.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<ReactorTransport> {
        ReactorTransport::bind_with(addr, WirePolicy::default())
    }

    /// [`bind`](Self::bind) with an explicit [`WirePolicy`].
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the address cannot be bound.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        policy: WirePolicy,
    ) -> std::io::Result<ReactorTransport> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let nshards = policy.shards.max(1);
        let shards = (0..nshards)
            .map(|_| ShardHandle {
                inbox: Mutex::new(ShardInbox {
                    inbound: Vec::new(),
                    established: Vec::new(),
                    nudged: false,
                }),
                cv: Condvar::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            policy,
            shutdown: AtomicBool::new(false),
            stats: StatCells::default(),
            rings: Mutex::new(HashMap::new()),
            rings_gen: AtomicU64::new(0),
            endpoints: Mutex::new(HashMap::new()),
            endpoints_gen: AtomicU64::new(0),
            dead: Mutex::new(HashMap::new()),
            dead_len: AtomicUsize::new(0),
            jobs: Mutex::new(HashMap::new()),
            jobs_cv: Condvar::new(),
            shards,
        });
        let mut threads = Vec::with_capacity(nshards + 1);
        for index in 0..nshards {
            let shard_shared = Arc::clone(&shared);
            let shard_listener = if index == 0 {
                Some(listener.try_clone()?)
            } else {
                None
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("synergy-reactor-shard-{index}"))
                    .spawn(move || shard_loop(index, shard_listener, shard_shared))?,
            );
        }
        let conn_shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("synergy-reactor-connect".into())
                .spawn(move || connector_loop(conn_shared))?,
        );
        Ok(ReactorTransport {
            local,
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The bound listen address — what peers should `set_route` to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Registers an endpoint hosted by this process and returns its
    /// delivery channel. Re-registering replaces the previous channel.
    pub fn register(&self, endpoint: Endpoint) -> Receiver<Envelope> {
        let (tx, rx) = channel();
        self.shared
            .endpoints
            .lock()
            .expect("endpoints lock")
            .insert(endpoint, tx);
        self.shared.endpoints_gen.fetch_add(1, Ordering::Release);
        rx
    }

    /// Points `endpoint` at `addr`, replacing any previous mapping; queued
    /// frames follow the endpoint to its new address. Setting a route
    /// revives a gave-up address, clearing its dead-route record.
    pub fn set_route(&self, endpoint: Endpoint, addr: SocketAddr) {
        {
            let mut dead = self.shared.dead.lock().expect("dead lock");
            dead.remove(&addr);
            self.shared.dead_len.store(dead.len(), Ordering::Relaxed);
        }
        let ring = self.ring_for(endpoint, addr);
        let old = {
            let mut inner = ring.inner.lock().expect("ring lock");
            std::mem::replace(&mut inner.addr, addr)
        };
        if old != addr {
            self.shared.rings_gen.fetch_add(1, Ordering::Release);
        }
        self.shared.shards[self.shared.shard_of(addr)].nudge();
        if old != addr {
            self.shared.shards[self.shared.shard_of(old)].nudge();
        }
    }

    /// Destinations that exhausted the reconnect budget, and how many
    /// frames each has dropped since. Empty under a healthy cluster.
    pub fn gave_up_routes(&self) -> Vec<GaveUpRoute> {
        let mut routes: Vec<GaveUpRoute> = self
            .shared
            .dead
            .lock()
            .expect("dead lock")
            .iter()
            .map(|(&addr, &dropped)| GaveUpRoute { addr, dropped })
            .collect();
        routes.sort_by_key(|r| r.addr);
        routes
    }

    /// A snapshot of the transport's monotonic counters.
    pub fn stats(&self) -> WireStats {
        self.shared.stats.snapshot()
    }

    /// Enqueues `envelope` on its destination's ring without blocking,
    /// surfacing a full ring as [`SendError::Backpressure`]. Acks ride the
    /// piggyback queue instead of consuming ring capacity.
    ///
    /// # Errors
    ///
    /// See [`SendError`] — callers typically retry `Backpressure` with a
    /// bounded budget and treat everything else as a drop.
    pub fn try_send(&self, envelope: &Envelope) -> Result<(), SendError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(SendError::Shutdown);
        }
        let ring = {
            let rings = self.shared.rings.lock().expect("rings lock");
            match rings.get(&envelope.to) {
                Some(ring) => Arc::clone(ring),
                None => return Err(SendError::NoRoute { to: envelope.to }),
            }
        };
        let mut inner = ring.inner.lock().expect("ring lock");
        let addr = inner.addr;
        if self.shared.is_dead(addr) {
            drop(inner);
            self.shared.count_dead_drops(addr, 1);
            self.shared
                .stats
                .dropped_dead
                .fetch_add(1, Ordering::Relaxed);
            return Err(SendError::RouteDead { addr });
        }
        // A busy ring's shard is already awake (or due within the sweep
        // timeout), so only the idle→busy transition nudges — one futex
        // wake per batch instead of one per frame.
        let was_idle = inner.is_idle();
        // Acks piggyback: no ring bytes, no standalone frame — unless the
        // piggy queue is saturated, in which case fall through and encode
        // like data so the queue stays bounded too.
        if inner.acks.len() < MAX_PENDING_ACKS {
            if let Some(ack) = PiggyAck::from_envelope(envelope) {
                inner.acks.push(ack);
                drop(inner);
                if was_idle {
                    self.shared.shards[self.shared.shard_of(addr)].nudge();
                }
                return Ok(());
            }
        }
        let mut buf = inner.pool.pop().unwrap_or_default();
        if let Err(e) = to_bytes_into(envelope, &mut buf) {
            inner.recycle(buf);
            return Err(SendError::Frame(FrameError::Codec(e)));
        }
        if buf.len() + 2 > MAX_FRAME_LEN {
            let len = buf.len();
            inner.recycle(buf);
            return Err(SendError::Frame(FrameError::Oversized(len)));
        }
        let queued = inner.queued_bytes();
        if queued + 4 + buf.len() > self.shared.policy.queue_bytes {
            inner.recycle(buf);
            drop(inner);
            self.shared
                .stats
                .backpressure_errors
                .fetch_add(1, Ordering::Relaxed);
            // The shard may simply not have swept yet; make sure it does.
            self.shared.shards[self.shared.shard_of(addr)].nudge();
            return Err(SendError::Backpressure {
                to: envelope.to,
                addr,
                queued_bytes: queued,
                capacity: self.shared.policy.queue_bytes,
            });
        }
        inner.queued += 4 + buf.len();
        inner.frames.push_back(buf);
        drop(inner);
        self.shared
            .stats
            .frames_enqueued
            .fetch_add(1, Ordering::Relaxed);
        if was_idle {
            self.shared.shards[self.shared.shard_of(addr)].nudge();
        }
        Ok(())
    }

    /// Stops all threads and closes all sockets; queued frames are
    /// dropped. Safe to call more than once; also invoked on drop.
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for shard in &self.shared.shards {
            shard.nudge();
        }
        self.shared.jobs_cv.notify_all();
        let rings: Vec<Arc<RouteRing>> = self
            .shared
            .rings
            .lock()
            .expect("rings lock")
            .values()
            .cloned()
            .collect();
        for ring in rings {
            ring.space.notify_all();
        }
        let handles: Vec<_> = self
            .threads
            .lock()
            .expect("threads lock")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn ring_for(&self, endpoint: Endpoint, addr: SocketAddr) -> Arc<RouteRing> {
        let mut rings = self.shared.rings.lock().expect("rings lock");
        let mut created = false;
        let ring = Arc::clone(rings.entry(endpoint).or_insert_with(|| {
            created = true;
            Arc::new(RouteRing {
                inner: Mutex::new(RingInner {
                    addr,
                    frames: VecDeque::new(),
                    queued: 0,
                    acks: PendingAcks::new(),
                    pool: Vec::new(),
                }),
                space: Condvar::new(),
            })
        }));
        if created {
            self.shared.rings_gen.fetch_add(1, Ordering::Release);
        }
        ring
    }
}

impl Drop for ReactorTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for ReactorTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReactorTransport")
            .field("local", &self.local)
            .field("shards", &self.shared.shards.len())
            .finish_non_exhaustive()
    }
}

impl Transport for ReactorTransport {
    /// Fire-and-forget parity with the other transports: unrouted sends
    /// drop silently; a full ring blocks for space up to
    /// [`WirePolicy::send_stall`], then drops and counts the envelope in
    /// [`WireStats::backpressure_dropped`].
    fn send(&self, envelope: Envelope) {
        match self.try_send(&envelope) {
            Ok(()) | Err(SendError::NoRoute { .. }) => return,
            Err(SendError::Backpressure { .. }) => {}
            Err(_) => return,
        }
        let deadline = Instant::now() + self.shared.policy.send_stall;
        loop {
            let ring = {
                let rings = self.shared.rings.lock().expect("rings lock");
                match rings.get(&envelope.to) {
                    Some(ring) => Arc::clone(ring),
                    None => return,
                }
            };
            {
                let inner = ring.inner.lock().expect("ring lock");
                let Some(timeout) = deadline.checked_duration_since(Instant::now()) else {
                    drop(inner);
                    self.shared
                        .stats
                        .backpressure_dropped
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                };
                let _unused = ring
                    .space
                    .wait_timeout(inner, timeout.min(Duration::from_millis(5)))
                    .expect("ring lock");
            }
            match self.try_send(&envelope) {
                Ok(()) | Err(SendError::NoRoute { .. }) => return,
                Err(SendError::Backpressure { .. }) => {
                    if Instant::now() >= deadline {
                        self.shared
                            .stats
                            .backpressure_dropped
                            .fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    }
}

/// One outbound connection's flush state, owned by its shard.
struct OutConn {
    stream: Option<TcpStream>,
    /// Coalesced frames staged for the next write.
    wbuf: Vec<u8>,
    /// Cumulative end offset of each staged frame within `wbuf`.
    bounds: Vec<usize>,
    /// Bytes of `wbuf` already written.
    written: usize,
    /// When the oldest staged-and-unwritten byte arrived — what
    /// [`COALESCE_WINDOW`] ages against.
    staged_at: Option<Instant>,
}

impl OutConn {
    fn new() -> OutConn {
        OutConn {
            stream: None,
            wbuf: Vec::new(),
            bounds: Vec::new(),
            written: 0,
            staged_at: None,
        }
    }

    /// Whether the staged batch should be written this sweep: big enough,
    /// old enough, or partially written already (finish what we started).
    fn ripe(&self) -> bool {
        self.written > 0
            || self.wbuf.len() >= WRITE_BATCH_MIN
            || self
                .staged_at
                .is_some_and(|at| at.elapsed() >= COALESCE_WINDOW)
    }
}

struct InConn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Last delivery target: most connections carry one endpoint's stream,
    /// so this skips the endpoints lock on all but the first envelope.
    /// Invalidated when `endpoints_gen` moves.
    cache: Option<(Endpoint, Sender<Envelope>, u64)>,
}

impl InConn {
    fn new(stream: TcpStream) -> InConn {
        InConn {
            stream,
            dec: FrameDecoder::new(),
            cache: None,
        }
    }
}

/// Hands `env` to its registered endpoint, if any (unregistered
/// destinations drop silently, like every other transport). A free
/// function over the connection's cache field, so the decode loop can
/// borrow a connection's decoder and cache disjointly.
fn deliver_env(
    shared: &Shared,
    cache: &mut Option<(Endpoint, Sender<Envelope>, u64)>,
    env: Envelope,
) {
    let gen = shared.endpoints_gen.load(Ordering::Acquire);
    if let Some((ep, tx, cached_gen)) = &*cache {
        if *cached_gen == gen && *ep == env.to {
            let _ = tx.send(env);
            return;
        }
    }
    let endpoints = shared.endpoints.lock().expect("endpoints lock");
    match endpoints.get(&env.to) {
        Some(tx) => {
            *cache = Some((env.to, tx.clone(), gen));
            let _ = tx.send(env);
        }
        None => *cache = None,
    }
}

fn shard_loop(index: usize, listener: Option<TcpListener>, shared: Arc<Shared>) {
    let handle = &shared.shards[index];
    let mut next_shard = 0usize;
    let mut inbound: Vec<InConn> = Vec::new();
    let mut out: HashMap<SocketAddr, OutConn> = HashMap::new();
    let mut rbuf = vec![0u8; 64 * 1024];
    // This shard's rings grouped by current address, rebuilt only when
    // `rings_gen` moves (routes change rarely; sweeps are constant).
    let mut rings_cache: Vec<(SocketAddr, Vec<Arc<RouteRing>>)> = Vec::new();
    let mut cache_gen = u64::MAX;
    let mut idle_streak: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut progress = false;
        let gen = shared.rings_gen.load(Ordering::Acquire);
        if gen != cache_gen {
            rings_cache = snapshot_rings(&shared, index);
            cache_gen = gen;
        }

        // Adopt sockets handed to this shard.
        {
            let mut inbox = handle.inbox.lock().expect("shard inbox lock");
            for stream in inbox.inbound.drain(..) {
                inbound.push(InConn::new(stream));
                progress = true;
            }
            for (addr, stream) in inbox.established.drain(..) {
                out.entry(addr).or_insert_with(OutConn::new).stream = Some(stream);
                progress = true;
            }
        }

        // Accept (shard 0 owns the listener), dealing conns round-robin.
        if let Some(listener) = &listener {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nodelay(true);
                        let _ = stream.set_nonblocking(true);
                        let target = next_shard % shared.shards.len();
                        next_shard += 1;
                        if target == index {
                            inbound.push(InConn::new(stream));
                        } else {
                            let mut inbox = shared.shards[target]
                                .inbox
                                .lock()
                                .expect("shard inbox lock");
                            inbox.inbound.push(stream);
                            inbox.nudged = true;
                            shared.shards[target].cv.notify_one();
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Read every inbound connection until it would block.
        let mut swept = 0usize;
        inbound.retain_mut(
            |conn| match drain_inbound(conn, &mut rbuf, &shared, &mut swept) {
                DrainOutcome::Idle => true,
                DrainOutcome::Progress => {
                    progress = true;
                    true
                }
                DrainOutcome::Closed => {
                    progress = true;
                    false
                }
            },
        );

        // Flush outbound: refill each connection's staging buffer from the
        // rings targeting its address, then one write per connection.
        let flush = flush_outbound(&shared, &rings_cache, &mut out);
        progress |= flush.progress;
        swept += flush.bytes;

        // Pace the loop: even after a productive sweep, sleep up to the
        // poll period (unless nudged) so the next sweep works on a batch
        // instead of busy-spinning on single frames — the poll-loop
        // analogue of blocking in `epoll_wait`. A sweep that moved real
        // volume holds the period at [`SWEEP_TIMEOUT`]; light sweeps let
        // it grow so their fixed costs amortize over bigger batches.
        // Rings and kernel socket buffers absorb a poll period of traffic
        // easily, so this trades a few ms of latency for
        // frame-per-syscall batching.
        let pollless = !progress
            && listener.is_none()
            && inbound.is_empty()
            && rings_cache.is_empty()
            && !flush.need_poll;
        if swept >= BUSY_SWEEP_BYTES {
            idle_streak = 0;
        }
        let mut inbox = handle.inbox.lock().expect("shard inbox lock");
        if pollless {
            // Nothing to poll at all: sleep until some event nudges this
            // shard (a send on an idle ring, a handed socket, a route
            // change, shutdown).
            while !inbox.nudged && !shared.shutdown.load(Ordering::SeqCst) {
                inbox = handle.cv.wait(inbox).expect("shard inbox lock");
            }
        } else if !inbox.nudged {
            // Staged-but-unwritten bytes snap the period back: the batch
            // must be written within ~one sweep of ripening.
            let shift = if flush.need_poll {
                0
            } else {
                let s = idle_streak.min(IDLE_BACKOFF_MAX_SHIFT);
                idle_streak = idle_streak.saturating_add(1);
                s
            };
            inbox = handle
                .cv
                .wait_timeout(inbox, SWEEP_TIMEOUT * (1 << shift))
                .expect("shard inbox lock")
                .0;
        }
        inbox.nudged = false;
    }
}

/// Collects the rings owned by shard `index`, grouped by their current
/// destination address.
fn snapshot_rings(shared: &Shared, index: usize) -> Vec<(SocketAddr, Vec<Arc<RouteRing>>)> {
    let rings: Vec<Arc<RouteRing>> = shared
        .rings
        .lock()
        .expect("rings lock")
        .values()
        .cloned()
        .collect();
    let mut by_addr: HashMap<SocketAddr, Vec<Arc<RouteRing>>> = HashMap::new();
    for ring in rings {
        let addr = ring.inner.lock().expect("ring lock").addr;
        if shared.shard_of(addr) == index {
            by_addr.entry(addr).or_default().push(ring);
        }
    }
    by_addr.into_iter().collect()
}

enum DrainOutcome {
    Idle,
    Progress,
    Closed,
}

fn drain_inbound(
    conn: &mut InConn,
    rbuf: &mut [u8],
    shared: &Shared,
    swept: &mut usize,
) -> DrainOutcome {
    let mut any = false;
    loop {
        match conn.stream.read(rbuf) {
            Ok(0) => return DrainOutcome::Closed,
            Ok(n) => {
                any = true;
                *swept += n;
                let cache = &mut conn.cache;
                // Corrupt stream: drop the connection, the peer
                // reconnects with a clean one.
                if conn
                    .dec
                    .drain_chunk(&rbuf[..n], |env| deliver_env(shared, cache, env))
                    .is_err()
                {
                    return DrainOutcome::Closed;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return DrainOutcome::Closed,
        }
    }
    if any {
        DrainOutcome::Progress
    } else {
        DrainOutcome::Idle
    }
}

/// What one outbound sweep accomplished — and whether the shard must keep
/// polling (staged bytes on a live stream need write retries; nothing else
/// does, since every other outbound event arrives with a nudge).
struct FlushOutcome {
    progress: bool,
    need_poll: bool,
    /// Bytes actually written to sockets this sweep (backoff input).
    bytes: usize,
}

/// Moves ring contents into staging buffers and writes each connection
/// once.
fn flush_outbound(
    shared: &Shared,
    rings_cache: &[(SocketAddr, Vec<Arc<RouteRing>>)],
    out: &mut HashMap<SocketAddr, OutConn>,
) -> FlushOutcome {
    let mut progress = false;
    for (addr, rings) in rings_cache {
        let addr = *addr;
        // A dead address strands whatever was staged: fold it into the
        // drop count and forget the connection.
        if shared.is_dead(addr) {
            if let Some(conn) = out.remove(&addr) {
                shared.count_dead_drops(addr, conn.bounds.len() as u64);
            }
            shared.purge_rings_for(addr);
            continue;
        }
        let conn = out.entry(addr).or_insert_with(OutConn::new);
        // Top up the staging buffer to the flush target — never past it,
        // so a slow peer's staging buffer cannot grow without bound.
        for ring in rings {
            if conn.wbuf.len() >= FLUSH_TARGET {
                break;
            }
            if refill_from_ring(shared, ring, conn) {
                progress = true;
            }
        }
    }
    // Write pass over every staged connection — including ones whose rings
    // were re-routed elsewhere after staging, so committed bytes still
    // drain to their original destination.
    let mut need_poll = false;
    let mut bytes = 0usize;
    for (&addr, conn) in out.iter_mut() {
        if conn.wbuf.is_empty() {
            continue;
        }
        if shared.is_dead(addr) {
            // Counted and dropped on the next sweep via the cache pass,
            // or below if no ring targets the address anymore.
            continue;
        }
        if conn.stream.is_none() {
            shared.request_connect(addr);
            continue;
        }
        if conn.ripe() {
            let pending = conn.wbuf.len() - conn.written;
            progress |= write_staged(shared, addr, conn);
            bytes += pending.saturating_sub(conn.wbuf.len() - conn.written);
        }
        if !conn.wbuf.is_empty() && conn.stream.is_some() {
            need_poll = true;
        }
    }
    // Fold staged frames for dead addresses no ring targets anymore into
    // the drop counts (the cache pass can't see them).
    out.retain(|&addr, conn| {
        if !conn.wbuf.is_empty() && shared.is_dead(addr) {
            shared.count_dead_drops(addr, conn.bounds.len() as u64);
            return false;
        }
        true
    });
    FlushOutcome {
        progress,
        need_poll,
        bytes,
    }
}

/// Drains one ring into `conn.wbuf`: every staged data frame carries up
/// to the policy's ack cap in its header, and when data runs out the
/// remaining acks are promoted into standalone carrier frames (the oldest
/// ack becomes the carrying envelope, the rest ride its header) until the
/// pending-ack queue is dry or the staging buffer is full.
fn refill_from_ring(shared: &Shared, ring: &RouteRing, conn: &mut OutConn) -> bool {
    let mut inner = ring.inner.lock().expect("ring lock");
    if inner.is_idle() {
        return false;
    }
    let cap = shared
        .policy
        .max_piggy_acks
        .min(crate::frame::MAX_PIGGY_ACKS);
    let mut moved = false;
    while conn.wbuf.len() < FLUSH_TARGET {
        let mut acks = inner.acks.drain_for_frame(cap);
        if let Some(buf) = inner.frames.pop_front() {
            inner.queued -= 4 + buf.len();
            stage_frame(conn, &acks, &buf);
            inner.recycle(buf);
        } else if !acks.is_empty() {
            // No data to ride: promote the oldest ack to the carrying
            // frame.
            let carrier = acks.remove(0).into_envelope();
            let mut buf = inner.pool.pop().unwrap_or_default();
            to_bytes_into(&carrier, &mut buf).expect("infallible encode");
            stage_frame(conn, &acks, &buf);
            inner.recycle(buf);
            shared.stats.acks_standalone.fetch_add(1, Ordering::Relaxed);
        } else {
            break;
        }
        if !acks.is_empty() {
            shared
                .stats
                .acks_piggybacked
                .fetch_add(acks.len() as u64, Ordering::Relaxed);
        }
        moved = true;
    }
    if moved {
        ring.space.notify_all();
    }
    moved
}

/// Appends one `len · ack_count · acks · payload` frame to the staging
/// buffer, recording its end boundary for error rewind.
fn stage_frame(conn: &mut OutConn, acks: &[PiggyAck], payload: &[u8]) {
    if conn.staged_at.is_none() {
        conn.staged_at = Some(Instant::now());
    }
    let hdr = conn.wbuf.len();
    conn.wbuf.extend_from_slice(&[0u8; 4]);
    conn.wbuf
        .extend_from_slice(&(acks.len() as u16).to_le_bytes());
    for ack in acks {
        ack.encode(&mut conn.wbuf);
    }
    conn.wbuf.extend_from_slice(payload);
    let body_len = conn.wbuf.len() - hdr - 4;
    conn.wbuf[hdr..hdr + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    conn.bounds.push(conn.wbuf.len());
}

/// One coalesced write. On error, frames fully written are counted sent,
/// the straddled frame rewinds to its start (it re-sends whole on the next
/// connection — the peer's decoder died with the partial prefix), and a
/// reconnect is requested.
fn write_staged(shared: &Shared, addr: SocketAddr, conn: &mut OutConn) -> bool {
    let Some(stream) = conn.stream.as_mut() else {
        return false;
    };
    match stream.write(&conn.wbuf[conn.written..]) {
        Ok(0) => {
            conn.stream = None;
            shared.request_connect(addr);
            false
        }
        Ok(n) => {
            conn.written += n;
            shared
                .stats
                .bytes_written
                .fetch_add(n as u64, Ordering::Relaxed);
            if conn.written == conn.wbuf.len() {
                let frames = conn.bounds.len() as u64;
                shared
                    .stats
                    .frames_sent
                    .fetch_add(frames, Ordering::Relaxed);
                if frames > 1 {
                    shared
                        .stats
                        .coalesced_writes
                        .fetch_add(1, Ordering::Relaxed);
                }
                conn.wbuf.clear();
                conn.bounds.clear();
                conn.written = 0;
                conn.staged_at = None;
            }
            true
        }
        Err(e) if e.kind() == ErrorKind::WouldBlock => false,
        Err(e) if e.kind() == ErrorKind::Interrupted => false,
        Err(_) => {
            let keep = conn.bounds.partition_point(|&b| b <= conn.written);
            shared
                .stats
                .frames_sent
                .fetch_add(keep as u64, Ordering::Relaxed);
            let cut = if keep > 0 { conn.bounds[keep - 1] } else { 0 };
            conn.wbuf.drain(..cut);
            conn.bounds.drain(..keep);
            for b in &mut conn.bounds {
                *b -= cut;
            }
            conn.written = 0;
            conn.stream = None;
            shared.request_connect(addr);
            true
        }
    }
}

/// Establishes outbound connections with bounded, jittered backoff; a
/// destination that exhausts its budget is declared dead and its queued
/// frames are purged and counted (see
/// [`ReactorTransport::gave_up_routes`]).
fn connector_loop(shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let due: Option<SocketAddr> = {
            let mut jobs = shared.jobs.lock().expect("jobs lock");
            let now = Instant::now();
            match jobs
                .iter()
                .filter(|(_, j)| !j.busy)
                .map(|(&a, j)| (a, j.next_at))
                .min_by_key(|&(_, at)| at)
            {
                Some((addr, at)) if at <= now => {
                    jobs.get_mut(&addr).expect("job exists").busy = true;
                    Some(addr)
                }
                Some((_, at)) => {
                    let wait = at.duration_since(now).min(Duration::from_millis(50));
                    let _unused = shared.jobs_cv.wait_timeout(jobs, wait).expect("jobs lock");
                    None
                }
                None => {
                    let _unused = shared
                        .jobs_cv
                        .wait_timeout(jobs, Duration::from_millis(50))
                        .expect("jobs lock");
                    None
                }
            }
        };
        let Some(addr) = due else {
            continue;
        };
        let attempt = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT);
        let mut jobs = shared.jobs.lock().expect("jobs lock");
        match attempt {
            Ok(stream) => {
                jobs.remove(&addr);
                drop(jobs);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                let target = shared.shard_of(addr);
                let mut inbox = shared.shards[target]
                    .inbox
                    .lock()
                    .expect("shard inbox lock");
                inbox.established.push((addr, stream));
                inbox.nudged = true;
                shared.shards[target].cv.notify_one();
            }
            Err(_) => {
                let Some(job) = jobs.get_mut(&addr) else {
                    continue; // revived (or shut down) mid-attempt
                };
                job.busy = false;
                match job.backoff.next_delay() {
                    Some(delay) => job.next_at = Instant::now() + delay,
                    None => {
                        jobs.remove(&addr);
                        drop(jobs);
                        {
                            let mut dead = shared.dead.lock().expect("dead lock");
                            dead.entry(addr).or_insert(0);
                            shared.dead_len.store(dead.len(), Ordering::Relaxed);
                        }
                        shared.purge_rings_for(addr);
                        // The owning shard folds any staged frames in on
                        // its next sweep.
                        shared.shards[shared.shard_of(addr)].nudge();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{MessageBody, MsgId, MsgSeqNo, ProcessId};

    fn env(to: Endpoint, seq: u64, payload: Vec<u8>) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            to,
            MessageBody::Application {
                payload,
                dirty: false,
            },
        )
    }

    /// Stats update in the shard thread just after the syscall, so a
    /// receiver can observe delivery before the counter moves: poll.
    fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    fn ack_env(to: Endpoint, seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(1_000_000 + seq),
            },
            to,
            MessageBody::Ack {
                of: MsgId {
                    from: ProcessId(2),
                    seq: MsgSeqNo(seq),
                },
            },
        )
    }

    #[test]
    fn two_reactors_exchange_fifo_streams() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let b = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let rx = b.register(p2);
        a.set_route(p2, b.local_addr());
        for i in 0..200 {
            a.send(env(p2, i, vec![i as u8]));
        }
        let got: Vec<u64> = (0..200)
            .map(|_| {
                rx.recv_timeout(Duration::from_secs(5))
                    .expect("delivered")
                    .id
                    .seq
                    .0
            })
            .collect();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
        assert_eq!(a.stats().frames_enqueued, 200);
        wait_for("all frames counted sent", || a.stats().frames_sent >= 200);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reactor_interoperates_with_thread_per_route_transport() {
        // Both live transports speak wire format v2, so a migrating
        // cluster can mix them.
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let b = crate::tcp::TcpTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let p1: Endpoint = ProcessId(1).into();
        let rx_b = b.register(p2);
        let rx_a = a.register(p1);
        a.set_route(p2, b.local_addr());
        b.set_route(p1, a.local_addr());
        a.send(env(p2, 1, vec![1]));
        assert_eq!(
            rx_b.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            1
        );
        b.send(env(p1, 2, vec![2]));
        assert_eq!(
            rx_a.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            2
        );
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn unrouted_sends_are_dropped_and_typed() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let to: Endpoint = ProcessId(9).into();
        assert!(matches!(
            a.try_send(&env(to, 0, vec![])),
            Err(SendError::NoRoute { .. })
        ));
        a.send(env(to, 1, vec![])); // fire-and-forget parity: silent
        a.shutdown();
    }

    #[test]
    fn acks_piggyback_on_data_frames() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let b = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let rx = b.register(p2);
        a.set_route(p2, b.local_addr());
        for seq in 0..10 {
            a.send(ack_env(p2, seq));
        }
        a.send(env(p2, 99, vec![9]));
        // All 10 acks and the data envelope arrive, acks re-materialized.
        let mut acks = 0;
        let mut data = 0;
        for _ in 0..11 {
            let e = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
            match e.body {
                MessageBody::Ack { .. } => acks += 1,
                _ => data += 1,
            }
        }
        assert_eq!((acks, data), (10, 1));
        wait_for("every ack counted exactly once", || {
            let stats = a.stats();
            stats.acks_piggybacked + stats.acks_standalone == 10
        });
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn acks_flush_standalone_when_no_data_pends() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let b = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let rx = b.register(p2);
        a.set_route(p2, b.local_addr());
        for seq in 0..3 {
            a.send(ack_env(p2, seq));
        }
        for _ in 0..3 {
            let e = rx.recv_timeout(Duration::from_secs(5)).expect("acks flush");
            assert!(matches!(e.body, MessageBody::Ack { .. }));
        }
        wait_for("a standalone ack carrier", || {
            a.stats().acks_standalone >= 1
        });
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn stalled_peer_surfaces_typed_backpressure() {
        // A listener that accepts but never reads: once the kernel buffers
        // fill, the ring fills, and try_send must return Backpressure
        // within a bounded time — never hang, never grow unbounded.
        let policy = WirePolicy {
            queue_bytes: 32 * 1024,
            ..WirePolicy::default()
        };
        let a = ReactorTransport::bind_with("127.0.0.1:0", policy).unwrap();
        let stall = TcpListener::bind("127.0.0.1:0").unwrap();
        let stall_addr = stall.local_addr().unwrap();
        let _keep_accepting = std::thread::spawn(move || {
            let mut held = Vec::new();
            while let Ok((s, _)) = stall.accept() {
                held.push(s); // hold the socket open, read nothing
            }
        });
        let p2: Endpoint = ProcessId(2).into();
        a.set_route(p2, stall_addr);
        let payload = vec![0u8; 4096];
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut seq = 0;
        let hit = loop {
            assert!(
                Instant::now() < deadline,
                "no backpressure after 20s: {:?}",
                a.stats()
            );
            match a.try_send(&env(p2, seq, payload.clone())) {
                Ok(()) => seq += 1,
                Err(SendError::Backpressure {
                    queued_bytes,
                    capacity,
                    ..
                }) => break (queued_bytes, capacity),
                Err(other) => panic!("unexpected error: {other}"),
            }
        };
        assert!(hit.0 <= hit.1, "queued {} within capacity {}", hit.0, hit.1);
        assert!(a.stats().backpressure_errors >= 1);
        a.shutdown();
    }

    #[test]
    fn bounded_reconnect_gives_up_and_set_route_revives() {
        let policy = WirePolicy {
            reconnect: ReconnectPolicy {
                backoff_start: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(2),
                max_attempts: Some(3),
                jitter_seed: 9,
            },
            ..WirePolicy::default()
        };
        let a = ReactorTransport::bind_with("127.0.0.1:0", policy).unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let addr = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        a.set_route(p2, addr);
        a.send(env(p2, 0, vec![]));
        let deadline = Instant::now() + Duration::from_secs(5);
        while a.gave_up_routes().is_empty() {
            assert!(Instant::now() < deadline, "connector failed to give up");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Later sends are dropped-and-counted, not queued behind a corpse.
        assert!(matches!(
            a.try_send(&env(p2, 1, vec![])),
            Err(SendError::RouteDead { .. })
        ));
        a.send(env(p2, 2, vec![]));
        // The dead entry appears before the async purge folds the queued
        // frame into its count, so poll for the final tally.
        wait_for("three drops on the dead route", || {
            let routes = a.gave_up_routes();
            routes.len() == 1 && routes[0].addr == addr && routes[0].dropped >= 3
        });
        // set_route revives the address.
        let late = ReactorTransport::bind(addr).expect("port still free");
        let rx = late.register(p2);
        a.set_route(p2, addr);
        assert!(a.gave_up_routes().is_empty(), "revived route is not dead");
        a.send(env(p2, 3, vec![3]));
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0, 3);
        a.shutdown();
        late.shutdown();
    }

    #[test]
    fn route_update_redirects_to_a_restarted_peer() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let b1 = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let rx1 = b1.register(p2);
        a.set_route(p2, b1.local_addr());
        a.send(env(p2, 0, vec![0]));
        assert_eq!(
            rx1.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            0
        );
        b1.shutdown();
        let b2 = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let rx2 = b2.register(p2);
        a.set_route(p2, b2.local_addr());
        a.send(env(p2, 1, vec![1]));
        assert_eq!(
            rx2.recv_timeout(Duration::from_secs(5)).unwrap().id.seq.0,
            1
        );
        a.shutdown();
        b2.shutdown();
    }

    #[test]
    fn thread_count_is_fixed_regardless_of_route_count() {
        // The whole point of the reactor: 16 routes, still `shards + 1`
        // transport threads. Verified structurally — the transport spawns
        // exactly its fixed thread set at bind and never again.
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let before = a.threads.lock().unwrap().len();
        assert_eq!(before, DEFAULT_SHARDS + 1);
        let mut peers = Vec::new();
        for i in 0..16 {
            let peer = ReactorTransport::bind("127.0.0.1:0").unwrap();
            let ep: Endpoint = ProcessId(10 + i).into();
            let _rx = peer.register(ep);
            a.set_route(ep, peer.local_addr());
            a.send(env(ep, u64::from(i), vec![i as u8]));
            peers.push(peer);
        }
        assert_eq!(
            a.threads.lock().unwrap().len(),
            before,
            "routes must not spawn threads"
        );
        a.shutdown();
        for p in peers {
            p.shutdown();
        }
    }

    #[test]
    fn coalescing_batches_many_frames_per_write() {
        let a = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let b = ReactorTransport::bind("127.0.0.1:0").unwrap();
        let p2: Endpoint = ProcessId(2).into();
        let rx = b.register(p2);
        a.set_route(p2, b.local_addr());
        // Burst before the connection exists: everything queues in the
        // ring and must flush as (far) fewer writes than frames.
        for i in 0..500 {
            a.send(env(p2, i, vec![0u8; 16]));
        }
        for _ in 0..500 {
            rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        }
        wait_for("sent count and a multi-frame write", || {
            let stats = a.stats();
            stats.frames_sent == 500 && stats.coalesced_writes >= 1
        });
        a.shutdown();
        b.shutdown();
    }
}
