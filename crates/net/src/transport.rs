//! The transport abstraction shared by the in-process and TCP runtimes.

use crate::message::Envelope;
use crate::threaded::ThreadedNet;

/// An asynchronous, fire-and-forget envelope carrier.
///
/// This is the surface the middleware `NodeRunner` needs from a network:
/// hand over an envelope addressed by its `to` endpoint and return
/// immediately. Implementations must preserve **per-link FIFO order** (all
/// envelopes from one sender to one destination arrive in send order) and
/// may drop envelopes whose destination is unregistered or unreachable —
/// exactly the contract of the simulator's `SimNetwork`, so the protocol
/// engines behave identically above any of the three.
///
/// Implementors: [`ThreadedNet`] (channels + a delivery thread, one address
/// space) and [`TcpTransport`](crate::tcp::TcpTransport) (length-prefixed
/// frames over real sockets, one process per node).
pub trait Transport: Send + Sync + 'static {
    /// Enqueues `envelope` for delivery to `envelope.to`.
    fn send(&self, envelope: Envelope);
}

impl Transport for ThreadedNet {
    fn send(&self, envelope: Envelope) {
        ThreadedNet::send(self, envelope);
    }
}
