//! Bounded retry backoff, shared by every reconnect/restart path.
//!
//! Two growth shapes cover the workspace's retry sites:
//!
//! * **Exponential with a cap** — socket reconnects ([`crate::tcp`] writers
//!   and the reactor's connector): the delay doubles per consecutive
//!   failure up to a ceiling, optionally scaled by a deterministic ±25%
//!   jitter so a cluster of peers reconnecting to a restarted node does
//!   not thunder in lockstep.
//! * **Linear** — orchestrator victim restarts: attempt `n` waits
//!   `n × step`, the original `synergy-cluster` restart discipline.
//!
//! A [`Backoff`] owns the failure counter: call
//! [`next_delay`](Backoff::next_delay) after each failure and sleep the
//! returned duration; `None` means the attempt budget is exhausted and the
//! caller should give up (surface a dead route, return the last error).
//! [`reset`](Backoff::reset) on success re-arms the full budget.

use std::time::Duration;

use synergy_des::DetRng;

/// How the delay grows with consecutive failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Growth {
    /// Delay `failures × step` (failure 1 waits one step, failure 2 two…).
    Linear {
        /// The per-attempt increment.
        step: Duration,
    },
    /// Delay `start × 2^(failures-1)`, capped.
    Exponential {
        /// First delay.
        start: Duration,
        /// Delay ceiling.
        cap: Duration,
    },
}

/// A bounded, optionally jittered retry schedule.
#[derive(Clone, Debug)]
pub struct Backoff {
    growth: Growth,
    /// Consecutive failures before the schedule is exhausted; `None`
    /// retries forever.
    max_attempts: Option<u32>,
    /// Deterministic ±25% jitter stream, when enabled.
    jitter: Option<DetRng>,
    failures: u32,
}

impl Backoff {
    /// A linear schedule: failure `n` waits `n × step`, up to
    /// `max_attempts` failures.
    pub fn linear(step: Duration, max_attempts: Option<u32>) -> Backoff {
        Backoff {
            growth: Growth::Linear { step },
            max_attempts,
            jitter: None,
            failures: 0,
        }
    }

    /// An exponential schedule: `start`, doubling per failure up to `cap`,
    /// for at most `max_attempts` failures.
    pub fn exponential(start: Duration, cap: Duration, max_attempts: Option<u32>) -> Backoff {
        Backoff {
            growth: Growth::Exponential { start, cap },
            max_attempts,
            jitter: None,
            failures: 0,
        }
    }

    /// Scales every delay by a deterministic jitter in `[75%, 125%]`,
    /// seeded so distinct callers (distinct seeds) draw distinct streams
    /// while the same seed reproduces the same schedule exactly.
    #[must_use]
    pub fn with_jitter(mut self, seed: u64) -> Backoff {
        self.jitter = Some(DetRng::new(seed).stream("retry-jitter"));
        self
    }

    /// Consecutive failures recorded since the last [`reset`](Self::reset).
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Whether the attempt budget is already spent.
    pub fn exhausted(&self) -> bool {
        self.max_attempts.is_some_and(|cap| self.failures >= cap)
    }

    /// Records one failure and returns how long to wait before the next
    /// attempt, or `None` when the budget is exhausted and the caller
    /// should give up.
    pub fn next_delay(&mut self) -> Option<Duration> {
        self.failures += 1;
        if self.max_attempts.is_some_and(|cap| self.failures >= cap) {
            return None;
        }
        let base = match self.growth {
            Growth::Linear { step } => step * self.failures,
            Growth::Exponential { start, cap } => {
                let doublings = self.failures.saturating_sub(1).min(30);
                (start * 2u32.pow(doublings)).min(cap)
            }
        };
        Some(match &mut self.jitter {
            // ±25%, quantized to whole percent so the sleep stays exact math.
            Some(rng) => base * rng.gen_range(75..=125u64) as u32 / 100,
            None => base,
        })
    }

    /// Re-arms the schedule after a success: the failure counter and the
    /// delay curve start over.
    pub fn reset(&mut self) {
        self.failures = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delays(backoff: &mut Backoff, n: usize) -> Vec<Option<Duration>> {
        (0..n).map(|_| backoff.next_delay()).collect()
    }

    #[test]
    fn linear_delays_grow_by_one_step_per_failure() {
        let mut b = Backoff::linear(Duration::from_millis(200), Some(4));
        assert_eq!(
            delays(&mut b, 4),
            vec![
                Some(Duration::from_millis(200)),
                Some(Duration::from_millis(400)),
                Some(Duration::from_millis(600)),
                None,
            ]
        );
        assert!(b.exhausted());
    }

    #[test]
    fn exponential_doubles_and_caps() {
        let mut b = Backoff::exponential(
            Duration::from_millis(10),
            Duration::from_millis(50),
            Some(6),
        );
        assert_eq!(
            delays(&mut b, 6),
            vec![
                Some(Duration::from_millis(10)),
                Some(Duration::from_millis(20)),
                Some(Duration::from_millis(40)),
                Some(Duration::from_millis(50)),
                Some(Duration::from_millis(50)),
                None,
            ]
        );
    }

    #[test]
    fn unbounded_schedule_never_exhausts() {
        let mut b = Backoff::exponential(Duration::from_millis(1), Duration::from_millis(2), None);
        for _ in 0..100 {
            assert!(b.next_delay().is_some());
        }
        assert!(!b.exhausted());
        assert_eq!(b.failures(), 100);
    }

    #[test]
    fn reset_rearms_the_full_budget_and_curve() {
        let mut b = Backoff::exponential(
            Duration::from_millis(10),
            Duration::from_millis(80),
            Some(3),
        );
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        b.reset();
        assert_eq!(b.failures(), 0);
        assert_eq!(b.next_delay(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn jitter_stays_within_quarter_band_and_is_deterministic() {
        let base = Duration::from_millis(100);
        let mut a = Backoff::exponential(base, base, None).with_jitter(42);
        let mut b = Backoff::exponential(base, base, None).with_jitter(42);
        for _ in 0..50 {
            let d = a.next_delay().unwrap();
            assert_eq!(d, b.next_delay().unwrap(), "same seed, same schedule");
            assert!(d >= base * 3 / 4 && d <= base * 5 / 4, "{d:?} outside ±25%");
        }
        let mut c = Backoff::exponential(base, base, None).with_jitter(43);
        let differs = (0..50).any(|_| {
            let mut a = Backoff::exponential(base, base, None).with_jitter(42);
            a.next_delay() != c.next_delay()
        });
        assert!(differs, "distinct seeds draw distinct streams");
    }

    #[test]
    fn exponential_survives_extreme_failure_counts_without_overflow() {
        let mut b = Backoff::exponential(Duration::from_millis(1), Duration::from_secs(1), None);
        for _ in 0..10_000 {
            let d = b.next_delay().unwrap();
            assert!(d <= Duration::from_secs(1));
        }
    }
}
