//! Property coverage for the TCP wire framing: arbitrary envelopes, encoded
//! into frames, concatenated, and re-chunked at arbitrary byte boundaries
//! must decode back identically — TCP guarantees ordered bytes, not ordered
//! reads, so the decoder must be indifferent to where `read()` boundaries
//! fall.
//!
//! Hand-rolled property tests over the workspace's deterministic RNG (the
//! repo carries no external property-testing crate): each case derives from
//! a seeded `DetRng`, so failures reproduce exactly.

use synergy_des::DetRng;
use synergy_net::tcp::{frame_envelope, frame_envelope_with_acks, FrameDecoder, PiggyAck};
use synergy_net::{
    CkptSeqNo, DeviceId, Endpoint, Envelope, MessageBody, MissionId, MsgId, MsgSeqNo, ProcessId,
    MAX_PIGGY_ACKS,
};

fn arbitrary_body(rng: &mut DetRng) -> MessageBody {
    match rng.gen_range(0u64..4) {
        0 => MessageBody::Application {
            payload: arbitrary_payload(rng),
            dirty: rng.gen_bool(0.5),
        },
        1 => MessageBody::External {
            payload: arbitrary_payload(rng),
        },
        2 => MessageBody::PassedAt {
            msg_sn: MsgSeqNo(rng.next_u64()),
            ndc: CkptSeqNo(rng.next_u64()),
        },
        _ => MessageBody::Ack {
            of: MsgId {
                from: ProcessId(rng.next_u32()),
                seq: MsgSeqNo(rng.next_u64()),
            },
        },
    }
}

fn arbitrary_payload(rng: &mut DetRng) -> Vec<u8> {
    // Heavily weighted toward small payloads (the protocol's real traffic)
    // with an occasional multi-kilobyte one to cross several read chunks.
    let len = if rng.gen_bool(0.9) {
        rng.gen_range(0u64..64) as usize
    } else {
        rng.gen_range(64u64..8192) as usize
    };
    let mut bytes = vec![0u8; len];
    rng.fill_bytes(&mut bytes);
    bytes
}

fn arbitrary_envelope(rng: &mut DetRng) -> Envelope {
    let to: Endpoint = if rng.gen_bool(0.8) {
        ProcessId(rng.gen_range(1u64..4) as u32).into()
    } else {
        DeviceId(rng.gen_range(0u64..2) as u32).into()
    };
    // Most traffic is solo; a quarter carries a fleet tenant tag so every
    // frame property also covers mission-tagged envelopes sharing a route.
    let mission = if rng.gen_bool(0.75) {
        MissionId::SOLO
    } else {
        MissionId(rng.next_u64())
    };
    Envelope::new(
        MsgId {
            from: ProcessId(rng.gen_range(1u64..4) as u32),
            seq: MsgSeqNo(rng.next_u64()),
        },
        to,
        arbitrary_body(rng),
    )
    .with_mission(mission)
}

/// Splits `wire` into chunks at random boundaries, including empty chunks
/// and single-byte reads, and feeds them to a fresh decoder.
fn decode_chunked(wire: &[u8], rng: &mut DetRng) -> Vec<Envelope> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut rest = wire;
    while !rest.is_empty() {
        let take = match rng.gen_range(0u64..10) {
            0 => 0,                                                          // a zero-byte read
            1..=4 => 1, // pathological byte-at-a-time
            _ => rng.gen_range(1u64..=rest.len().min(1500) as u64) as usize, // MTU-ish
        };
        let (chunk, tail) = rest.split_at(take.min(rest.len()));
        dec.push(chunk);
        rest = tail;
        while let Some(env) = dec.next_envelope().expect("valid stream") {
            out.push(env);
        }
    }
    assert_eq!(dec.buffered(), 0, "no bytes may be left over");
    out
}

#[test]
fn arbitrary_envelopes_roundtrip_across_arbitrary_chunk_boundaries() {
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed).stream("frame-roundtrip");
        let n = rng.gen_range(1u64..20) as usize;
        let envelopes: Vec<Envelope> = (0..n).map(|_| arbitrary_envelope(&mut rng)).collect();
        let mut wire = Vec::new();
        for env in &envelopes {
            wire.extend_from_slice(&frame_envelope(env).expect("encodable"));
        }
        let decoded = decode_chunked(&wire, &mut rng);
        assert_eq!(decoded, envelopes, "seed {seed}");
    }
}

#[test]
fn single_frame_survives_every_split_point() {
    // Exhaustive rather than random: one frame, split at every possible
    // boundary into exactly two reads.
    let mut rng = DetRng::new(42).stream("every-split");
    let env = arbitrary_envelope(&mut rng);
    let frame = frame_envelope(&env).expect("encodable");
    for split in 0..=frame.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..split]);
        let early = dec.next_envelope().expect("valid prefix");
        if split < frame.len() {
            assert!(early.is_none(), "split {split}: decoded from a prefix");
        }
        dec.push(&frame[split..]);
        let mut got = early;
        if got.is_none() {
            got = dec.next_envelope().expect("valid stream");
        }
        assert_eq!(got.as_ref(), Some(&env), "split {split}");
        assert_eq!(dec.buffered(), 0);
    }
}

#[test]
fn concatenated_frames_in_one_read_all_decode() {
    let mut rng = DetRng::new(7).stream("one-read");
    let envelopes: Vec<Envelope> = (0..30).map(|_| arbitrary_envelope(&mut rng)).collect();
    let mut wire = Vec::new();
    for env in &envelopes {
        wire.extend_from_slice(&frame_envelope(env).expect("encodable"));
    }
    let mut dec = FrameDecoder::new();
    dec.push(&wire);
    let mut out = Vec::new();
    while let Some(env) = dec.next_envelope().expect("valid stream") {
        out.push(env);
    }
    assert_eq!(out, envelopes);
}

fn arbitrary_acks(rng: &mut DetRng) -> Vec<PiggyAck> {
    let n = rng.gen_range(0u64..=MAX_PIGGY_ACKS as u64) as usize;
    (0..n)
        .map(|_| PiggyAck {
            to: ProcessId(rng.gen_range(1u64..4) as u32).into(),
            id: MsgId {
                from: ProcessId(rng.gen_range(1u64..4) as u32),
                seq: MsgSeqNo(rng.next_u64()),
            },
            of: MsgId {
                from: ProcessId(rng.gen_range(1u64..4) as u32),
                seq: MsgSeqNo(rng.next_u64()),
            },
        })
        .collect()
}

/// What a frame with piggybacked acks must decode to: the acks as
/// standalone ack envelopes (in header order), then the data envelope.
fn expected_for(env: &Envelope, acks: &[PiggyAck]) -> Vec<Envelope> {
    let mut out: Vec<Envelope> = acks.iter().map(|a| a.into_envelope()).collect();
    out.push(env.clone());
    out
}

#[test]
fn piggybacked_ack_frames_roundtrip_across_arbitrary_chunk_boundaries() {
    for seed in 0..200u64 {
        let mut rng = DetRng::new(seed).stream("piggy-roundtrip");
        let n = rng.gen_range(1u64..12) as usize;
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..n {
            let env = arbitrary_envelope(&mut rng);
            let acks = arbitrary_acks(&mut rng);
            wire.extend_from_slice(&frame_envelope_with_acks(&env, &acks).expect("encodable"));
            expected.extend(expected_for(&env, &acks));
        }
        let decoded = decode_chunked(&wire, &mut rng);
        assert_eq!(decoded, expected, "seed {seed}");
    }
}

#[test]
fn piggybacked_ack_frame_survives_every_split_point() {
    // Exhaustive: one data frame carrying acks, split at every byte
    // boundary into exactly two reads — the header extension must be as
    // torn-read-proof as the rest of the frame.
    let mut rng = DetRng::new(99).stream("piggy-every-split");
    let env = arbitrary_envelope(&mut rng);
    let acks: Vec<PiggyAck> = loop {
        let acks = arbitrary_acks(&mut rng);
        if !acks.is_empty() {
            break acks;
        }
    };
    let frame = frame_envelope_with_acks(&env, &acks).expect("encodable");
    let expected = expected_for(&env, &acks);
    for split in 0..=frame.len() {
        let mut dec = FrameDecoder::new();
        dec.push(&frame[..split]);
        let mut got = Vec::new();
        while let Some(e) = dec.next_envelope().expect("valid prefix") {
            got.push(e);
        }
        if split < frame.len() {
            assert!(got.is_empty(), "split {split}: decoded from a prefix");
        }
        dec.push(&frame[split..]);
        while let Some(e) = dec.next_envelope().expect("valid stream") {
            got.push(e);
        }
        assert_eq!(got, expected, "split {split}");
        assert_eq!(dec.buffered(), 0);
    }
}

mod partition_heal {
    //! Property: frames sent across a `FaultyTransport` partition (with
    //! drops layered on top) are either delivered exactly once after heal
    //! or reported in the lost log — never corrupted, never duplicated
    //! (for non-ack frames), and never reordered within a route.

    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    use super::*;
    use synergy_net::{FaultyTransport, LinkFaultPlan, LinkFaults, PartitionWindow, Transport};

    /// Terminal transport that records every envelope it is handed.
    #[derive(Default)]
    struct Sink {
        seen: Mutex<Vec<Envelope>>,
    }

    impl Transport for Sink {
        fn send(&self, envelope: Envelope) {
            self.seen.lock().unwrap().push(envelope);
        }
    }

    fn drain(faulty: &FaultyTransport<Sink>) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while faulty.pending() > 0 {
            assert!(Instant::now() < deadline, "partition failed to drain");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn partitioned_frames_deliver_exactly_once_after_heal_or_report_lost() {
        for seed in 0..12u64 {
            let mut rng = DetRng::new(seed).stream("partition-heal");
            let plan = LinkFaultPlan {
                faults: LinkFaults::new(rng.next_f64() * 0.4, 0.0),
                delay_ms: (0, rng.gen_range(0u64..3)),
                partitions: vec![PartitionWindow {
                    start_ms: 0,
                    end_ms: rng.gen_range(30u64..=90),
                }],
                max_attempts: rng.gen_range(2u64..=5) as u32,
                retry_ms: (1, 4),
                seed,
            };
            let sink = Arc::new(Sink::default());
            let faulty = FaultyTransport::new(Arc::clone(&sink), plan);
            // Unique sequence numbers per route so exactly-once is checkable.
            let n = rng.gen_range(10u64..40) as usize;
            let mut sent: BTreeMap<Endpoint, Vec<Envelope>> = BTreeMap::new();
            for seq in 0..n as u64 {
                let mut env = arbitrary_envelope(&mut rng);
                env.id.seq = MsgSeqNo(seq);
                if env.body.is_ack() {
                    // Keep the invariant checkable: acks may legitimately
                    // be duplicated, so this property sticks to the other
                    // three frame classes.
                    env.body = MessageBody::External { payload: vec![0] };
                }
                sent.entry(env.to).or_default().push(env.clone());
                faulty.send(env);
            }
            drain(&faulty);
            let seen = sink.seen.lock().unwrap().clone();
            let lost = faulty.lost();
            for (route, outbound) in &sent {
                let delivered: Vec<&Envelope> = seen.iter().filter(|e| e.to == *route).collect();
                let lost_here: Vec<_> = lost.iter().filter(|l| l.to == *route).collect();
                assert_eq!(
                    delivered.len() + lost_here.len(),
                    outbound.len(),
                    "seed {seed} route {route}: every frame delivers once or is reported lost"
                );
                // Delivered frames are the sent frames minus the lost ones,
                // bit-for-bit and in send order (FIFO within a route).
                let mut expect = outbound.clone();
                expect.retain(|e| !lost_here.iter().any(|l| l.id == e.id));
                assert_eq!(
                    delivered.into_iter().cloned().collect::<Vec<_>>(),
                    expect,
                    "seed {seed} route {route}: uncorrupted, unreordered"
                );
            }
            assert_eq!(
                faulty.totals().lost as usize,
                lost.len(),
                "seed {seed}: lost counter matches the lost log"
            );
        }
    }
}
