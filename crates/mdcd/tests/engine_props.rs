//! Property tests over random event sequences fed to the MDCD engines.
//!
//! Stimulus sequences are generated with the workspace's deterministic RNG
//! ([`DetRng`]), so every case is reproducible from its printed seed: each
//! failure message carries `case=N`, and re-running the test replays the
//! identical sequence.

use synergy_des::DetRng;
use synergy_mdcd::{
    Action, ActiveEngine, CheckpointKind, Event, MdcdConfig, OutboundMessage, PeerEngine,
    ShadowEngine,
};
use synergy_net::{
    CkptSeqNo, DeviceId, Endpoint, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId,
};

const ACT: ProcessId = ProcessId(1);
const SDW: ProcessId = ProcessId(2);
const PEER: ProcessId = ProcessId(3);

/// Abstract stimulus applied to an engine under test.
#[derive(Clone, Debug)]
enum Stim {
    SendInternal,
    SendExternal { at_pass: bool },
    RecvApp { dirty: bool },
    RecvPassedAt { matching_ndc: bool },
    BlockingStart,
    BlockingEnd,
    Commit,
}

/// Draws one stimulus, uniform over the seven variants (bool payloads fair).
fn random_stim(rng: &mut DetRng) -> Stim {
    match rng.gen_range(0u64..7) {
        0 => Stim::SendInternal,
        1 => Stim::SendExternal {
            at_pass: rng.gen_bool(0.5),
        },
        2 => Stim::RecvApp {
            dirty: rng.gen_bool(0.5),
        },
        3 => Stim::RecvPassedAt {
            matching_ndc: rng.gen_bool(0.5),
        },
        4 => Stim::BlockingStart,
        5 => Stim::BlockingEnd,
        _ => Stim::Commit,
    }
}

/// Draws a sequence of 1..max_len stimuli.
fn random_stims(rng: &mut DetRng, max_len: u64) -> Vec<Stim> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| random_stim(rng)).collect()
}

struct Driver {
    peer_seq: u64,
    act_seq: u64,
    ctrl: u64,
    ndc: u64,
    blocking: bool,
}

impl Driver {
    fn new() -> Self {
        Driver {
            peer_seq: 0,
            act_seq: 0,
            ctrl: 0,
            ndc: 0,
            blocking: false,
        }
    }

    /// Converts a stimulus into a concrete event for an engine whose inbound
    /// application traffic comes from `from`.
    fn event(&mut self, stim: &Stim, from: ProcessId) -> Option<Event> {
        match stim {
            Stim::SendInternal => Some(Event::AppSend(OutboundMessage {
                to: Endpoint::Process(PEER),
                payload: vec![1],
                external: false,
                at_pass: true,
            })),
            Stim::SendExternal { at_pass } => Some(Event::AppSend(OutboundMessage {
                to: Endpoint::Device(DeviceId(0)),
                payload: vec![2],
                external: true,
                at_pass: *at_pass,
            })),
            Stim::RecvApp { dirty } => {
                let seq = if from == ACT {
                    self.act_seq += 1;
                    self.act_seq
                } else {
                    self.peer_seq += 1;
                    self.peer_seq
                };
                Some(Event::Deliver(Envelope::new(
                    MsgId {
                        from,
                        seq: MsgSeqNo(seq),
                    },
                    PEER,
                    MessageBody::Application {
                        payload: vec![3],
                        dirty: *dirty,
                    },
                )))
            }
            Stim::RecvPassedAt { matching_ndc } => {
                self.ctrl += 1;
                let ndc = if *matching_ndc {
                    self.ndc
                } else {
                    self.ndc + 7
                };
                Some(Event::Deliver(Envelope::new(
                    MsgId {
                        from: ACT,
                        seq: MsgSeqNo((1 << 63) + self.ctrl),
                    },
                    PEER,
                    MessageBody::PassedAt {
                        msg_sn: MsgSeqNo(self.act_seq),
                        ndc: CkptSeqNo(ndc),
                    },
                )))
            }
            Stim::BlockingStart => {
                if self.blocking {
                    return None;
                }
                self.blocking = true;
                Some(Event::BlockingStarted)
            }
            Stim::BlockingEnd => {
                if !self.blocking {
                    return None;
                }
                self.blocking = false;
                Some(Event::BlockingEnded)
            }
            Stim::Commit => {
                self.ndc += 1;
                Some(Event::StableCheckpointCommitted(CkptSeqNo(self.ndc)))
            }
        }
    }
}

/// Peer invariants: every 0→1 dirty transition is guarded by a Type-1
/// checkpoint whose snapshot is clean; checkpoint actions always precede
/// the delivery in the same action list; `msg_sn` never decreases.
#[test]
fn peer_engine_invariants() {
    let mut rng = DetRng::new(0xE1).stream("peer-invariants");
    for case in 0..200 {
        let stims = random_stims(&mut rng, 60);
        let mut engine = PeerEngine::new(MdcdConfig::modified(), PEER, ACT, SDW);
        let mut driver = Driver::new();
        let mut last_sn = 0u64;
        for stim in &stims {
            let Some(event) = driver.event(stim, ACT) else {
                continue;
            };
            let dirty_before = engine.dirty_bit();
            let actions = engine.handle(event);
            // Dirty transition 0 -> 1 must produce a clean Type-1 snapshot.
            if !dirty_before && engine.dirty_bit() {
                let ckpt = actions.iter().find_map(|a| match a {
                    Action::TakeCheckpoint {
                        kind: CheckpointKind::Type1,
                        engine,
                    } => Some(engine),
                    _ => None,
                });
                let snap = ckpt.unwrap_or_else(|| {
                    panic!("case={case}: contamination must be guarded by a Type-1 checkpoint")
                });
                assert!(!snap.dirty, "case={case}: Type-1 snapshot must be clean");
            }
            // A Type-1 checkpoint is always immediately followed by the
            // delivery it guards (also inside batched BlockingEnded
            // releases).
            for (i, a) in actions.iter().enumerate() {
                if matches!(
                    a,
                    Action::TakeCheckpoint {
                        kind: CheckpointKind::Type1,
                        ..
                    }
                ) {
                    assert!(
                        matches!(actions.get(i + 1), Some(Action::DeliverToApp(_))),
                        "case={case}: Type-1 checkpoint must guard the next delivery"
                    );
                }
            }
            let sn = engine.snapshot().msg_sn.0;
            assert!(sn >= last_sn, "case={case}: msg_sn must be monotone");
            last_sn = sn;
        }
    }
}

/// Shadow invariants: nothing is ever sent before promotion; the log
/// never contains validated entries; takeover re-sends exactly the
/// unvalidated suffix.
#[test]
fn shadow_engine_invariants() {
    let mut rng = DetRng::new(0xE1).stream("shadow-invariants");
    for case in 0..200 {
        let stims = random_stims(&mut rng, 60);
        let mut engine = ShadowEngine::new(MdcdConfig::modified(), SDW, PEER);
        let mut driver = Driver::new();
        for stim in &stims {
            let Some(event) = driver.event(stim, PEER) else {
                continue;
            };
            let actions = engine.handle(event);
            for a in &actions {
                assert!(
                    !a.is_send(),
                    "case={case}: un-promoted shadow must stay silent: {a:?}"
                );
            }
        }
        let vr = engine.vr_act();
        let plan = engine.take_over();
        for env in &plan.resend {
            assert!(
                env.id.seq > vr,
                "case={case}: validated entries must not be re-sent"
            );
        }
    }
}

/// Active invariants: a pseudo checkpoint appears exactly when the
/// pseudo bit transitions 0→1, and its snapshot predates the send.
#[test]
fn active_engine_invariants() {
    let mut rng = DetRng::new(0xE1).stream("active-invariants");
    for case in 0..200 {
        let stims = random_stims(&mut rng, 60);
        let mut engine = ActiveEngine::new(MdcdConfig::modified(), ACT, SDW, PEER);
        let mut driver = Driver::new();
        for stim in &stims {
            let Some(event) = driver.event(stim, PEER) else {
                continue;
            };
            let batched = matches!(event, Event::BlockingEnded);
            let pseudo_before = engine.pseudo_dirty_bit();
            let halted_before = engine.is_halted();
            let actions = engine.handle(event);
            if halted_before {
                assert!(
                    actions.is_empty(),
                    "case={case}: halted engine must be inert"
                );
                continue;
            }
            let has_pseudo_ckpt = actions.iter().any(|a| {
                matches!(
                    a,
                    Action::TakeCheckpoint {
                        kind: CheckpointKind::Pseudo,
                        ..
                    }
                )
            });
            let transitioned = !pseudo_before && engine.pseudo_dirty_bit();
            if !batched {
                // A batched BlockingEnded release can both set and clear the
                // pseudo bit; the iff relation holds per held event, not for
                // the batch's endpoints.
                assert_eq!(
                    has_pseudo_ckpt, transitioned,
                    "case={case}: pseudo checkpoint iff pseudo bit transition"
                );
            }
            if let Some(Action::TakeCheckpoint { engine: snap, .. }) =
                actions.iter().find(|a| a.is_checkpoint())
            {
                assert_eq!(
                    snap.pseudo_dirty,
                    Some(false),
                    "case={case}: snapshot predates the send"
                );
            }
            assert!(engine.dirty_bit(), "case={case}: P1act is constantly dirty");
        }
    }
}

/// Blocking never drops traffic: everything held during a blocking
/// period is released, in order, at BlockingEnded.
#[test]
fn blocking_preserves_all_deliveries() {
    let mut rng = DetRng::new(0xE1).stream("blocking-preserves");
    for case in 0..100 {
        let n = rng.gen_range(1u64..20) as usize;
        let mut engine = PeerEngine::new(MdcdConfig::modified(), PEER, ACT, SDW);
        engine.handle(Event::BlockingStarted);
        for seq in 1..=n as u64 {
            let held = engine.handle(Event::Deliver(Envelope::new(
                MsgId {
                    from: ACT,
                    seq: MsgSeqNo(seq),
                },
                PEER,
                MessageBody::Application {
                    payload: vec![0],
                    dirty: true,
                },
            )));
            assert!(held.is_empty(), "case={case}");
        }
        let released = engine.handle(Event::BlockingEnded);
        let delivered: Vec<u64> = released
            .iter()
            .filter_map(|a| match a {
                Action::DeliverToApp(env) => Some(env.id.seq.0),
                _ => None,
            })
            .collect();
        let expected: Vec<u64> = (1..=n as u64).collect();
        assert_eq!(delivered, expected, "case={case}");
    }
}
