//! Property tests for the generalized (N-component) containment layer.

use proptest::prelude::*;
use synergy_mdcd::general::{GeneralProcess, GeneralRecovery, SourceId, Taint};
use synergy_net::ProcessId;

#[derive(Clone, Debug)]
enum Op {
    Receive { source: u32, watermark_bump: u64 },
    Validate { source: u32, sn: u64 },
    Send,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..4, 1u64..5).prop_map(|(source, watermark_bump)| Op::Receive {
            source,
            watermark_bump
        }),
        (0u32..4, 0u64..20).prop_map(|(source, sn)| Op::Validate { source, sn }),
        Just(Op::Send),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 300, ..ProptestConfig::default() })]

    /// Dirty-set truthfulness holds by construction under any op sequence:
    /// `s ∈ dirty ⟺ seen[s] > validated[s]`, and validation horizons only
    /// grow.
    #[test]
    fn dirty_set_is_derived_truthfully(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut p = GeneralProcess::new(ProcessId(1), 8);
        let mut seen: std::collections::BTreeMap<u32, u64> = Default::default();
        let mut validated: std::collections::BTreeMap<u32, u64> = Default::default();
        for op in &ops {
            match op {
                Op::Receive { source, watermark_bump } => {
                    let w = seen.get(source).copied().unwrap_or(0) + watermark_bump;
                    seen.insert(*source, w);
                    p.on_receive(&Taint::of(SourceId(*source), w), Vec::new);
                }
                Op::Validate { source, sn } => {
                    let before = p.validated(SourceId(*source));
                    p.on_validation(SourceId(*source), *sn);
                    prop_assert!(p.validated(SourceId(*source)) >= before, "horizon monotone");
                    let e = validated.entry(*source).or_insert(0);
                    *e = (*e).max(*sn);
                }
                Op::Send => {
                    let (sn, taint) = p.on_send(None);
                    prop_assert!(sn >= 1);
                    // Piggybacked taint equals the current exposure.
                    for (s, w) in &seen {
                        prop_assert_eq!(taint.watermark(SourceId(*s)), *w);
                    }
                }
            }
            let expected: Vec<SourceId> = seen
                .iter()
                .filter(|(s, w)| **w > validated.get(*s).copied().unwrap_or(0))
                .map(|(s, _)| SourceId(*s))
                .collect();
            prop_assert_eq!(p.dirty_set(), expected);
        }
    }

    /// Recovery plans never return a checkpoint that still reflects the
    /// faulty source beyond the horizon, and roll-forward is chosen exactly
    /// when the current state is within the horizon.
    #[test]
    fn recovery_plans_are_sound(
        ops in proptest::collection::vec(op_strategy(), 1..60),
        faulty in 0u32..4,
        horizon in 0u64..20,
    ) {
        let mut p = GeneralProcess::new(ProcessId(1), 8);
        let mut seen: std::collections::BTreeMap<u32, u64> = Default::default();
        for op in &ops {
            match op {
                Op::Receive { source, watermark_bump } => {
                    let w = seen.get(source).copied().unwrap_or(0) + watermark_bump;
                    seen.insert(*source, w);
                    p.on_receive(&Taint::of(SourceId(*source), w), Vec::new);
                }
                Op::Validate { source, sn } => p.on_validation(SourceId(*source), *sn),
                Op::Send => {
                    p.on_send(None);
                }
            }
        }
        let s = SourceId(faulty);
        let current = seen.get(&faulty).copied().unwrap_or(0);
        match p.recovery_plan(s, horizon) {
            GeneralRecovery::RollForward => prop_assert!(current <= horizon),
            GeneralRecovery::RollBackTo(c) => {
                prop_assert!(current > horizon);
                prop_assert!(c.seen.watermark(s) <= horizon,
                    "restored state must be within the horizon");
            }
            GeneralRecovery::Unrecoverable => prop_assert!(current > horizon),
        }
    }

    /// The checkpoint stack never exceeds its configured depth.
    #[test]
    fn stack_depth_is_bounded(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        depth in 1usize..6,
    ) {
        let mut p = GeneralProcess::new(ProcessId(1), depth);
        let mut next = 0u64;
        for op in &ops {
            if let Op::Receive { source, watermark_bump } = op {
                next += watermark_bump;
                p.on_receive(&Taint::of(SourceId(*source), next), Vec::new);
            }
            prop_assert!(p.checkpoints() <= depth);
        }
    }
}
