//! Property tests for the generalized (N-component) containment layer.
//!
//! Random op sequences come from the workspace's deterministic RNG
//! ([`DetRng`]); failures print their `case` index and replay identically.

use synergy_des::DetRng;
use synergy_mdcd::general::{GeneralProcess, GeneralRecovery, SourceId, Taint};
use synergy_net::ProcessId;

#[derive(Clone, Debug)]
enum Op {
    Receive { source: u32, watermark_bump: u64 },
    Validate { source: u32, sn: u64 },
    Send,
}

fn random_op(rng: &mut DetRng) -> Op {
    match rng.gen_range(0u64..3) {
        0 => Op::Receive {
            source: rng.gen_range(0u64..4) as u32,
            watermark_bump: rng.gen_range(1u64..5),
        },
        1 => Op::Validate {
            source: rng.gen_range(0u64..4) as u32,
            sn: rng.gen_range(0u64..20),
        },
        _ => Op::Send,
    }
}

fn random_ops(rng: &mut DetRng, max_len: u64) -> Vec<Op> {
    let len = rng.gen_range(1..max_len);
    (0..len).map(|_| random_op(rng)).collect()
}

/// Dirty-set truthfulness holds by construction under any op sequence:
/// `s ∈ dirty ⟺ seen[s] > validated[s]`, and validation horizons only
/// grow.
#[test]
fn dirty_set_is_derived_truthfully() {
    let mut rng = DetRng::new(0x6E).stream("dirty-set-truthful");
    for case in 0..300 {
        let ops = random_ops(&mut rng, 80);
        let mut p = GeneralProcess::new(ProcessId(1), 8);
        let mut seen: std::collections::BTreeMap<u32, u64> = Default::default();
        let mut validated: std::collections::BTreeMap<u32, u64> = Default::default();
        for op in &ops {
            match op {
                Op::Receive {
                    source,
                    watermark_bump,
                } => {
                    let w = seen.get(source).copied().unwrap_or(0) + watermark_bump;
                    seen.insert(*source, w);
                    p.on_receive(&Taint::of(SourceId(*source), w), Vec::new);
                }
                Op::Validate { source, sn } => {
                    let before = p.validated(SourceId(*source));
                    p.on_validation(SourceId(*source), *sn);
                    assert!(
                        p.validated(SourceId(*source)) >= before,
                        "case={case}: horizon monotone"
                    );
                    let e = validated.entry(*source).or_insert(0);
                    *e = (*e).max(*sn);
                }
                Op::Send => {
                    let (sn, taint) = p.on_send(None);
                    assert!(sn >= 1, "case={case}");
                    // Piggybacked taint equals the current exposure.
                    for (s, w) in &seen {
                        assert_eq!(taint.watermark(SourceId(*s)), *w, "case={case}");
                    }
                }
            }
            let expected: Vec<SourceId> = seen
                .iter()
                .filter(|(s, w)| **w > validated.get(*s).copied().unwrap_or(0))
                .map(|(s, _)| SourceId(*s))
                .collect();
            assert_eq!(p.dirty_set(), expected, "case={case}");
        }
    }
}

/// Recovery plans never return a checkpoint that still reflects the
/// faulty source beyond the horizon, and roll-forward is chosen exactly
/// when the current state is within the horizon.
#[test]
fn recovery_plans_are_sound() {
    let mut rng = DetRng::new(0x6E).stream("recovery-plans-sound");
    for case in 0..300 {
        let ops = random_ops(&mut rng, 60);
        let faulty = rng.gen_range(0u64..4) as u32;
        let horizon = rng.gen_range(0u64..20);
        let mut p = GeneralProcess::new(ProcessId(1), 8);
        let mut seen: std::collections::BTreeMap<u32, u64> = Default::default();
        for op in &ops {
            match op {
                Op::Receive {
                    source,
                    watermark_bump,
                } => {
                    let w = seen.get(source).copied().unwrap_or(0) + watermark_bump;
                    seen.insert(*source, w);
                    p.on_receive(&Taint::of(SourceId(*source), w), Vec::new);
                }
                Op::Validate { source, sn } => p.on_validation(SourceId(*source), *sn),
                Op::Send => {
                    p.on_send(None);
                }
            }
        }
        let s = SourceId(faulty);
        let current = seen.get(&faulty).copied().unwrap_or(0);
        match p.recovery_plan(s, horizon) {
            GeneralRecovery::RollForward => assert!(current <= horizon, "case={case}"),
            GeneralRecovery::RollBackTo(c) => {
                assert!(current > horizon, "case={case}");
                assert!(
                    c.seen.watermark(s) <= horizon,
                    "case={case}: restored state must be within the horizon"
                );
            }
            GeneralRecovery::Unrecoverable => assert!(current > horizon, "case={case}"),
        }
    }
}

/// The checkpoint stack never exceeds its configured depth.
#[test]
fn stack_depth_is_bounded() {
    let mut rng = DetRng::new(0x6E).stream("stack-depth-bounded");
    for case in 0..300 {
        let ops = random_ops(&mut rng, 100);
        let depth = rng.gen_range(1u64..6) as usize;
        let mut p = GeneralProcess::new(ProcessId(1), depth);
        let mut next = 0u64;
        for op in &ops {
            if let Op::Receive {
                source,
                watermark_bump,
            } = op
            {
                next += watermark_bump;
                p.on_receive(&Taint::of(SourceId(*source), next), Vec::new);
            }
            assert!(p.checkpoints() <= depth, "case={case}");
        }
    }
}
