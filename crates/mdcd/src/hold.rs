//! Blocking-period hold queue shared by the engines.

use std::collections::VecDeque;

use crate::events::Event;

/// Queues events that may not be processed during a TB blocking period and
/// releases them in arrival order when the period ends.
#[derive(Clone, Debug, Default)]
pub(crate) struct HoldQueue {
    blocking: bool,
    held: VecDeque<Event>,
}

impl HoldQueue {
    pub fn new() -> Self {
        HoldQueue::default()
    }

    pub fn is_blocking(&self) -> bool {
        self.blocking
    }

    pub fn start(&mut self) {
        self.blocking = true;
    }

    /// Ends the period and drains everything that was held.
    pub fn end(&mut self) -> Vec<Event> {
        self.blocking = false;
        self.held.drain(..).collect()
    }

    pub fn hold(&mut self, event: Event) {
        debug_assert!(self.blocking, "holding outside a blocking period");
        self.held.push_back(event);
    }

    /// Drops all held events (process restart).
    pub fn reset(&mut self) {
        self.blocking = false;
        self.held.clear();
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.held.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn holds_and_releases_in_order() {
        let mut h = HoldQueue::new();
        h.start();
        assert!(h.is_blocking());
        h.hold(Event::BlockingStarted); // any events; variants are arbitrary here
        h.hold(Event::BlockingEnded);
        assert_eq!(h.len(), 2);
        let out = h.end();
        assert!(!h.is_blocking());
        assert_eq!(out, vec![Event::BlockingStarted, Event::BlockingEnded]);
    }

    #[test]
    fn reset_discards_held_events() {
        let mut h = HoldQueue::new();
        h.start();
        h.hold(Event::BlockingStarted);
        h.reset();
        assert!(!h.is_blocking());
        assert!(h.end().is_empty());
    }
}
