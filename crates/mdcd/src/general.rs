//! Generalized message-driven confidence-driven error containment for
//! arbitrary process topologies.
//!
//! The paper retains a three-process architecture "for simplicity and
//! clarity" and cites its companion work (reference [5], unpublished at the
//! time) for the removal of that restriction. This module is our own
//! generalization in that direction, preserving the protocol's defining
//! ideas and extending the bookkeeping to many components and many
//! low-confidence sources:
//!
//! * **taint watermarks** instead of one dirty bit — each process tracks,
//!   per low-confidence *source*, the highest message sequence number its
//!   state (transitively) reflects, and every outgoing message piggybacks
//!   that map (generalizing the piggybacked dirty bit);
//! * **per-source validation horizons** — a broadcast `passed_AT(s, n)`
//!   raises the validated watermark of source `s`; the *dirty set* is
//!   derived, not stored: `{s : seen[s] > validated[s]}`, which makes
//!   dirty-bit truthfulness hold by construction;
//! * **a bounded checkpoint stack** instead of a single checkpoint — a
//!   snapshot is pushed whenever a delivery is about to expose the state to
//!   a *new* unvalidated source, so recovery from a fault in source `s`
//!   can roll back to the most recent state not reflecting `s`, leaving
//!   exposure to other sources intact (confidence-adaptive recovery per
//!   source).
//!
//! The module is topology-agnostic and sans-io like the rest of the crate;
//! it is exercised by its own multi-component harness tests. The
//! three-process engines remain the faithful reproduction of the paper; use
//! this layer when exploring beyond it.

use std::collections::{BTreeMap, VecDeque};

use synergy_codec::{codec_newtype, codec_struct};
use synergy_net::ProcessId;

/// Identifies a low-confidence component (a contamination source).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SourceId(pub u32);

codec_newtype!(SourceId);

impl core::fmt::Display for SourceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Per-source high-watermarks carried by a message: "this message's causal
/// past includes source `s` up to sequence number `n`".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Taint {
    marks: BTreeMap<SourceId, u64>,
}

codec_struct!(Taint { marks });

impl Taint {
    /// The empty (fully trusted) taint.
    pub fn clean() -> Self {
        Taint::default()
    }

    /// A taint naming a single source watermark.
    pub fn of(source: SourceId, watermark: u64) -> Self {
        let mut marks = BTreeMap::new();
        marks.insert(source, watermark);
        Taint { marks }
    }

    /// Merges another taint into this one (pointwise max).
    pub fn absorb(&mut self, other: &Taint) {
        for (s, w) in &other.marks {
            let e = self.marks.entry(*s).or_insert(0);
            *e = (*e).max(*w);
        }
    }

    /// The watermark recorded for `source` (0 when untouched).
    pub fn watermark(&self, source: SourceId) -> u64 {
        self.marks.get(&source).copied().unwrap_or(0)
    }

    /// Iterates over the recorded `(source, watermark)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SourceId, u64)> + '_ {
        self.marks.iter().map(|(s, w)| (*s, *w))
    }

    /// Whether no source is recorded.
    pub fn is_clean(&self) -> bool {
        self.marks.is_empty()
    }
}

/// A checkpoint pushed on the bounded stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GeneralCheckpoint {
    /// Opaque application snapshot provided by the host at push time.
    pub app: Vec<u8>,
    /// The taint watermarks the snapshot reflects.
    pub seen: Taint,
    /// Monotone checkpoint counter.
    pub seq: u64,
}

codec_struct!(GeneralCheckpoint { app, seen, seq });

/// What the host must do next.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneralAction {
    /// Push a checkpoint of the current application state *before*
    /// delivering the message that triggered it.
    TakeCheckpoint,
    /// Deliver the message to the application.
    Deliver,
}

/// A per-source recovery decision.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GeneralRecovery {
    /// Current state does not reflect unvalidated data from the source.
    RollForward,
    /// Restore this checkpoint (the newest not reflecting the source beyond
    /// the validated horizon).
    RollBackTo(GeneralCheckpoint),
    /// No retained checkpoint predates the exposure: restart from the
    /// initial state (the stack depth was too small).
    Unrecoverable,
}

/// Generalized error-containment state for one process.
///
/// # Example
///
/// ```rust
/// use synergy_mdcd::general::{GeneralProcess, SourceId, Taint};
/// use synergy_net::ProcessId;
///
/// let mut p = GeneralProcess::new(ProcessId(7), 4);
/// let s = SourceId(1);
/// // A message tainted by unvalidated source S1 arrives: checkpoint first.
/// let actions = p.on_receive(&Taint::of(s, 3), || vec![0xAA]);
/// assert_eq!(actions.len(), 2, "checkpoint + deliver");
/// assert!(p.dirty_set().contains(&s));
/// // S1's output up to sn3 passes an acceptance test somewhere:
/// p.on_validation(s, 3);
/// assert!(p.dirty_set().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct GeneralProcess {
    id: ProcessId,
    seen: Taint,
    validated: BTreeMap<SourceId, u64>,
    ckpts: VecDeque<GeneralCheckpoint>,
    depth: usize,
    ckpt_seq: u64,
    msg_sn: u64,
}

impl GeneralProcess {
    /// Creates a process retaining at most `depth` checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(id: ProcessId, depth: usize) -> Self {
        assert!(depth > 0, "checkpoint depth must be positive");
        GeneralProcess {
            id,
            seen: Taint::clean(),
            validated: BTreeMap::new(),
            ckpts: VecDeque::new(),
            depth,
            ckpt_seq: 0,
            msg_sn: 0,
        }
    }

    /// This process's id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// The validated horizon of `source`.
    pub fn validated(&self, source: SourceId) -> u64 {
        self.validated.get(&source).copied().unwrap_or(0)
    }

    /// The derived dirty set: sources whose unvalidated data the state
    /// reflects. Truthful by construction.
    pub fn dirty_set(&self) -> Vec<SourceId> {
        self.seen
            .iter()
            .filter(|(s, w)| *w > self.validated(*s))
            .map(|(s, _)| s)
            .collect()
    }

    /// Whether the state reflects any unvalidated data.
    pub fn is_dirty(&self) -> bool {
        !self.dirty_set().is_empty()
    }

    /// Number of retained checkpoints.
    pub fn checkpoints(&self) -> usize {
        self.ckpts.len()
    }

    /// Prepares an outgoing message: returns `(sequence, taint to
    /// piggyback)`. A guarded active passes its own source so receivers see
    /// its output as unvalidated data from that source.
    pub fn on_send(&mut self, own_source: Option<SourceId>) -> (u64, Taint) {
        self.msg_sn += 1;
        let mut taint = self.seen.clone();
        if let Some(s) = own_source {
            taint.absorb(&Taint::of(s, self.msg_sn));
        }
        (self.msg_sn, taint)
    }

    /// Handles an incoming message's taint. `snapshot` is invoked exactly
    /// when a checkpoint must be pushed (before delivery). Returns the
    /// action sequence for the host ([`TakeCheckpoint`]? then [`Deliver`]).
    ///
    /// [`TakeCheckpoint`]: GeneralAction::TakeCheckpoint
    /// [`Deliver`]: GeneralAction::Deliver
    pub fn on_receive(
        &mut self,
        taint: &Taint,
        snapshot: impl FnOnce() -> Vec<u8>,
    ) -> Vec<GeneralAction> {
        // Does the message expose the state to a source it is not already
        // exposed to (beyond that source's validated horizon)?
        let dirty_before = self.dirty_set();
        let exposes_new = taint.iter().any(|(s, w)| {
            w > self.validated(s) && w > self.seen.watermark(s) && !dirty_before.contains(&s)
        });
        let mut actions = Vec::new();
        if exposes_new {
            self.push_checkpoint(snapshot());
            actions.push(GeneralAction::TakeCheckpoint);
        }
        self.seen.absorb(taint);
        actions.push(GeneralAction::Deliver);
        actions
    }

    fn push_checkpoint(&mut self, app: Vec<u8>) {
        self.ckpt_seq += 1;
        self.ckpts.push_back(GeneralCheckpoint {
            app,
            seen: self.seen.clone(),
            seq: self.ckpt_seq,
        });
        while self.ckpts.len() > self.depth {
            self.ckpts.pop_front();
        }
    }

    /// Records a validation broadcast: source `s`'s output up to `sn` is
    /// known correct. Obsolete checkpoints (older than every remaining
    /// exposure) are reclaimed.
    pub fn on_validation(&mut self, source: SourceId, sn: u64) {
        let e = self.validated.entry(source).or_insert(0);
        *e = (*e).max(sn);
        // Reclaim checkpoints that no longer guard anything: a checkpoint
        // is useful only while it is a rollback target for some source the
        // state is still dirty with respect to.
        let dirty = self.dirty_set();
        if dirty.is_empty() {
            self.ckpts.clear();
        } else {
            let validated = self.validated.clone();
            self.ckpts.retain(|c| {
                dirty
                    .iter()
                    .any(|s| c.seen.watermark(*s) <= validated.get(s).copied().unwrap_or(0))
            });
        }
    }

    /// The recovery decision when a software error is detected in `source`,
    /// given the system-wide validated horizon for it (the local horizon is
    /// a lower bound; pass the local one for a purely local decision).
    pub fn recovery_plan(&self, source: SourceId, horizon: u64) -> GeneralRecovery {
        if self.seen.watermark(source) <= horizon {
            return GeneralRecovery::RollForward;
        }
        // Newest checkpoint whose exposure to the faulty source is within
        // the validated horizon.
        for c in self.ckpts.iter().rev() {
            if c.seen.watermark(source) <= horizon {
                return GeneralRecovery::RollBackTo(c.clone());
            }
        }
        GeneralRecovery::Unrecoverable
    }

    /// Applies a rollback: restores watermarks to the checkpoint's and
    /// drops newer checkpoints. Returns the application snapshot to restore.
    pub fn apply_rollback(&mut self, ckpt: &GeneralCheckpoint) -> Vec<u8> {
        self.seen = ckpt.seen.clone();
        self.ckpts.retain(|c| c.seq <= ckpt.seq);
        ckpt.app.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: SourceId = SourceId(1);
    const S2: SourceId = SourceId(2);

    fn proc(id: u32) -> GeneralProcess {
        GeneralProcess::new(ProcessId(id), 8)
    }

    fn snap(n: u8) -> impl FnOnce() -> Vec<u8> {
        move || vec![n]
    }

    #[test]
    fn taint_absorb_is_pointwise_max() {
        let mut t = Taint::of(S1, 3);
        t.absorb(&Taint::of(S1, 7));
        t.absorb(&Taint::of(S2, 2));
        assert_eq!(t.watermark(S1), 7);
        assert_eq!(t.watermark(S2), 2);
        let mut u = Taint::of(S1, 9);
        u.absorb(&t);
        assert_eq!(u.watermark(S1), 9);
    }

    #[test]
    fn first_exposure_takes_a_checkpoint_subsequent_do_not() {
        let mut p = proc(10);
        let a1 = p.on_receive(&Taint::of(S1, 1), snap(1));
        assert_eq!(
            a1,
            vec![GeneralAction::TakeCheckpoint, GeneralAction::Deliver]
        );
        let a2 = p.on_receive(&Taint::of(S1, 2), snap(2));
        assert_eq!(a2, vec![GeneralAction::Deliver], "already exposed to S1");
        assert_eq!(p.checkpoints(), 1);
    }

    #[test]
    fn independent_sources_checkpoint_independently() {
        let mut p = proc(10);
        p.on_receive(&Taint::of(S1, 1), snap(1));
        let a = p.on_receive(&Taint::of(S2, 1), snap(2));
        assert_eq!(
            a,
            vec![GeneralAction::TakeCheckpoint, GeneralAction::Deliver],
            "new source S2 needs its own guard point"
        );
        assert_eq!(p.dirty_set(), vec![S1, S2]);
    }

    #[test]
    fn validation_clears_the_derived_dirty_set() {
        let mut p = proc(10);
        p.on_receive(&Taint::of(S1, 4), snap(1));
        assert!(p.is_dirty());
        p.on_validation(S1, 3);
        assert!(p.is_dirty(), "watermark 4 > horizon 3");
        p.on_validation(S1, 4);
        assert!(!p.is_dirty());
    }

    #[test]
    fn recovery_rolls_back_past_faulty_source_only() {
        let mut p = proc(10);
        // Exposure order: S1 then S2.
        p.on_receive(&Taint::of(S1, 1), snap(1));
        p.on_receive(&Taint::of(S2, 1), snap(2));
        // A fault in S2: the newest checkpoint free of S2 was pushed before
        // S2's first message (snapshot 2 captures the pre-S2 state).
        match p.recovery_plan(S2, 0) {
            GeneralRecovery::RollBackTo(c) => {
                assert_eq!(c.app, vec![2]);
                assert_eq!(c.seen.watermark(S2), 0, "restored state is S2-free");
                assert_eq!(c.seen.watermark(S1), 1, "S1 exposure is preserved");
            }
            other => panic!("expected rollback, got {other:?}"),
        }
        // A fault in S1 must roll back further, to the pre-S1 snapshot.
        match p.recovery_plan(S1, 0) {
            GeneralRecovery::RollBackTo(c) => assert_eq!(c.app, vec![1]),
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    fn validated_exposure_rolls_forward() {
        let mut p = proc(10);
        p.on_receive(&Taint::of(S1, 5), snap(1));
        assert_eq!(p.recovery_plan(S1, 5), GeneralRecovery::RollForward);
        assert_eq!(p.recovery_plan(S1, 9), GeneralRecovery::RollForward);
    }

    #[test]
    fn exhausted_stack_is_unrecoverable() {
        let mut p = GeneralProcess::new(ProcessId(10), 1);
        p.on_receive(&Taint::of(S1, 1), snap(1));
        p.on_receive(&Taint::of(S2, 1), snap(2)); // evicts the S1 guard
        assert_eq!(p.checkpoints(), 1);
        assert_eq!(p.recovery_plan(S1, 0), GeneralRecovery::Unrecoverable);
    }

    #[test]
    fn apply_rollback_restores_watermarks_and_prunes() {
        let mut p = proc(10);
        p.on_receive(&Taint::of(S1, 1), snap(1));
        p.on_receive(&Taint::of(S2, 1), snap(2));
        let ckpt = match p.recovery_plan(S2, 0) {
            GeneralRecovery::RollBackTo(c) => c,
            other => panic!("expected rollback, got {other:?}"),
        };
        let app = p.apply_rollback(&ckpt);
        assert_eq!(app, vec![2]);
        assert_eq!(p.seen.watermark(S2), 0);
        assert_eq!(p.seen.watermark(S1), 1);
    }

    #[test]
    fn taint_propagates_transitively_through_chains() {
        // S1's active -> A -> B: B becomes dirty w.r.t. S1 without ever
        // talking to the source.
        let mut active = proc(1);
        let mut a = proc(2);
        let mut b = proc(3);
        let (sn, taint) = active.on_send(Some(S1));
        assert_eq!(sn, 1);
        a.on_receive(&taint, snap(1));
        let (_, taint_a) = a.on_send(None);
        b.on_receive(&taint_a, snap(2));
        assert_eq!(b.dirty_set(), vec![S1]);
        // Validation anywhere clears the whole chain.
        for p in [&mut a, &mut b] {
            p.on_validation(S1, 1);
            assert!(!p.is_dirty());
        }
    }

    #[test]
    fn multi_source_chain_recovers_per_source() {
        // Two guarded components feeding one consumer: a fault in one must
        // not cost the consumer its exposure to the other.
        let mut act1 = proc(1);
        let mut act2 = proc(2);
        let mut consumer = proc(3);
        let (_, t1) = act1.on_send(Some(S1));
        consumer.on_receive(&t1, snap(1));
        let (_, t2) = act2.on_send(Some(S2));
        consumer.on_receive(&t2, snap(2));
        let (_, t1b) = act1.on_send(Some(S1));
        consumer.on_receive(&t1b, snap(3));
        // S1 validated through sn1 only; its sn2 output is faulty.
        consumer.on_validation(S1, 1);
        match consumer.recovery_plan(S1, 1) {
            GeneralRecovery::RollBackTo(c) => {
                assert_eq!(c.seen.watermark(S1), 1, "keeps validated S1 exposure");
                // The restored state predates the S2 message (stack rollback
                // cannot skip over it); S2's message is re-deliverable from
                // its sender's log, so nothing validated is lost. The guard
                // point is the checkpoint pushed before S2's first exposure
                // (snapshot 2) — S1 was already dirty when its faulty sn2
                // arrived, so no newer guard exists.
                assert_eq!(c.seen.watermark(S2), 0);
                assert_eq!(c.app, vec![2]);
            }
            other => panic!("expected rollback, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "depth must be positive")]
    fn zero_depth_rejected() {
        GeneralProcess::new(ProcessId(1), 0);
    }
}
