//! The shadow's suppressed-message log.

use std::collections::BTreeMap;

use synergy_codec::codec_struct;
use synergy_net::{Envelope, MsgSeqNo};

/// Ordered log of the shadow process's suppressed outgoing messages.
///
/// On a `passed_AT` notification the log is reclaimed up to the reported
/// valid sequence number (`memory_reclamation(msg_log)` in Appendix A); on
/// takeover the remaining entries — exactly the messages sent by `P1act`
/// after its last validation — are re-sent.
///
/// # Example
///
/// ```rust
/// use synergy_mdcd::MessageLog;
/// use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
///
/// let mut log = MessageLog::new();
/// for seq in 1..=3 {
///     let id = MsgId { from: ProcessId(1), seq: MsgSeqNo(seq) };
///     log.push(Envelope::new(id, ProcessId(2), MessageBody::Application {
///         payload: vec![],
///         dirty: true,
///     }));
/// }
/// log.reclaim_up_to(MsgSeqNo(2));
/// let remaining: Vec<u64> = log.entries_after(MsgSeqNo(0)).map(|e| e.id.seq.0).collect();
/// assert_eq!(remaining, vec![3]);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MessageLog {
    entries: BTreeMap<MsgSeqNo, Envelope>,
}

codec_struct!(MessageLog { entries });

impl MessageLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        MessageLog::default()
    }

    /// Appends a suppressed message (keyed by its sequence number).
    pub fn push(&mut self, envelope: Envelope) {
        self.entries.insert(envelope.id.seq, envelope);
    }

    /// Drops all entries with sequence number `<= upto` (they are known
    /// valid and will never need re-sending).
    pub fn reclaim_up_to(&mut self, upto: MsgSeqNo) {
        self.entries = self.entries.split_off(&upto.next());
    }

    /// Entries with sequence number `> after`, in order.
    pub fn entries_after(&self, after: MsgSeqNo) -> impl Iterator<Item = &Envelope> {
        self.entries.range(after.next()..).map(|(_, e)| e)
    }

    /// All entries in order.
    pub fn entries(&self) -> impl Iterator<Item = &Envelope> {
        self.entries.values()
    }

    /// Number of logged messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replaces the log contents (restore from a checkpoint).
    pub fn restore(&mut self, entries: impl IntoIterator<Item = Envelope>) {
        self.entries = entries.into_iter().map(|e| (e.id.seq, e)).collect();
    }

    /// Copies the log out for inclusion in a checkpoint.
    pub fn to_vec(&self) -> Vec<Envelope> {
        self.entries.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::{MessageBody, MsgId, ProcessId};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![seq as u8],
                dirty: true,
            },
        )
    }

    #[test]
    fn reclaim_drops_validated_prefix() {
        let mut log = MessageLog::new();
        for s in 1..=5 {
            log.push(env(s));
        }
        log.reclaim_up_to(MsgSeqNo(3));
        let left: Vec<u64> = log.entries().map(|e| e.id.seq.0).collect();
        assert_eq!(left, vec![4, 5]);
    }

    #[test]
    fn reclaim_past_end_empties_log() {
        let mut log = MessageLog::new();
        log.push(env(1));
        log.reclaim_up_to(MsgSeqNo(100));
        assert!(log.is_empty());
    }

    #[test]
    fn reclaim_zero_keeps_everything() {
        let mut log = MessageLog::new();
        log.push(env(1));
        log.push(env(2));
        log.reclaim_up_to(MsgSeqNo(0));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn entries_after_is_exclusive() {
        let mut log = MessageLog::new();
        for s in 1..=4 {
            log.push(env(s));
        }
        let after2: Vec<u64> = log.entries_after(MsgSeqNo(2)).map(|e| e.id.seq.0).collect();
        assert_eq!(after2, vec![3, 4]);
    }

    #[test]
    fn restore_roundtrips_through_vec() {
        let mut log = MessageLog::new();
        log.push(env(7));
        log.push(env(9));
        let copy = log.to_vec();
        let mut restored = MessageLog::new();
        restored.restore(copy);
        assert_eq!(restored, log);
    }
}
