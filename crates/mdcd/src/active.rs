//! The error-containment engine of `P1act` (Appendix A, Fig. 8).

use synergy_net::{CkptSeqNo, Endpoint, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};

use crate::actions::Action;
use crate::events::{Event, OutboundMessage};
use crate::hold::HoldQueue;
use crate::snapshot::EngineSnapshot;
use crate::types::{CheckpointKind, MdcdConfig, Variant};

/// Sequence-number namespace for control messages (`passed_AT`), disjoint
/// from the application message counter so [`MsgId`]s stay unique without
/// perturbing the replica-aligned application sequence.
pub(crate) const CTRL_SEQ_BASE: u64 = 1 << 63;

/// The engine hosted next to the low-confidence active version `P1act`.
///
/// `P1act`'s dirty bit is constantly 1 during guarded operation; under the
/// modified protocol it additionally maintains a *pseudo dirty bit* that is
/// cleared on every validation and set right before the first internal send
/// after a validation, driving its *pseudo checkpoints* (paper §3).
///
/// # Example
///
/// ```rust
/// use synergy_mdcd::{Action, ActiveEngine, Event, MdcdConfig, OutboundMessage};
/// use synergy_net::{DeviceId, Endpoint, ProcessId};
///
/// let mut p1 = ActiveEngine::new(
///     MdcdConfig::modified(),
///     ProcessId(1), // self
///     ProcessId(2), // shadow
///     ProcessId(3), // peer
/// );
/// // First internal send after a validation point: pseudo checkpoint first.
/// let actions = p1.handle(Event::AppSend(OutboundMessage {
///     to: Endpoint::Process(ProcessId(3)),
///     payload: vec![1],
///     external: false,
///     at_pass: true,
/// }));
/// assert!(actions[0].is_checkpoint());
/// assert!(actions[1].is_send());
/// ```
#[derive(Clone, Debug)]
pub struct ActiveEngine {
    cfg: MdcdConfig,
    id: ProcessId,
    shadow: ProcessId,
    peer: ProcessId,
    /// Constantly 1 during guarded operation (paper §3).
    pseudo_dirty: bool,
    msg_sn: MsgSeqNo,
    ctrl_sn: u64,
    ndc: CkptSeqNo,
    hold: HoldQueue,
    halted: bool,
    at_runs: u64,
}

impl ActiveEngine {
    /// Creates the engine for process `id`, escorted by `shadow`, talking to
    /// `peer`.
    pub fn new(cfg: MdcdConfig, id: ProcessId, shadow: ProcessId, peer: ProcessId) -> Self {
        ActiveEngine {
            cfg,
            id,
            shadow,
            peer,
            pseudo_dirty: false,
            msg_sn: MsgSeqNo(0),
            ctrl_sn: 0,
            ndc: CkptSeqNo(0),
            hold: HoldQueue::new(),
            halted: false,
            at_runs: 0,
        }
    }

    /// `P1act`'s dirty bit: constantly 1 during guarded operation.
    pub fn dirty_bit(&self) -> bool {
        true
    }

    /// The pseudo dirty bit (meaningful under [`Variant::Modified`] only).
    pub fn pseudo_dirty_bit(&self) -> bool {
        self.pseudo_dirty
    }

    /// The bit the adapted TB protocol consults when choosing checkpoint
    /// contents for this process (paper §4.2, footnote 2: `P1act` uses its
    /// pseudo dirty bit).
    pub fn checkpoint_bit(&self) -> bool {
        match self.cfg.variant {
            Variant::Modified => self.pseudo_dirty,
            Variant::Original => true,
        }
    }

    /// Current outgoing application sequence number.
    pub fn msg_sn(&self) -> MsgSeqNo {
        self.msg_sn
    }

    /// Whether the engine stopped after a detected software error.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of acceptance tests executed.
    pub fn at_runs(&self) -> u64 {
        self.at_runs
    }

    /// Captures the engine control state for a checkpoint.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            dirty: true,
            pseudo_dirty: Some(self.pseudo_dirty),
            msg_sn: self.msg_sn,
            vr_act: MsgSeqNo(0),
            ndc: self.ndc,
            log: Vec::new(),
            promoted: false,
        }
    }

    /// Restores control state from a checkpoint (`ndc` is deliberately not
    /// restored — see [`EngineSnapshot`]). Blocking context and held traffic
    /// are discarded; the engine resumes un-halted.
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        self.pseudo_dirty = snapshot.pseudo_dirty.unwrap_or(false);
        self.msg_sn = snapshot.msg_sn;
        self.hold.reset();
        self.halted = false;
    }

    /// Feeds one event, returning the actions for the driver to execute in
    /// order.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        if self.halted {
            return Vec::new();
        }
        match event {
            Event::AppSend(m) => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::AppSend(m));
                    Vec::new()
                } else if m.external {
                    self.send_external(m)
                } else {
                    self.send_internal(m)
                }
            }
            Event::Deliver(envelope) => self.deliver(envelope),
            Event::BlockingStarted => {
                self.hold.start();
                Vec::new()
            }
            Event::BlockingEnded => {
                let mut out = Vec::new();
                for held in self.hold.end() {
                    out.extend(self.handle(held));
                }
                out
            }
            Event::StableCheckpointCommitted(seq) => {
                self.ndc = seq;
                Vec::new()
            }
        }
    }

    fn send_external(&mut self, m: OutboundMessage) -> Vec<Action> {
        let mut out = Vec::new();
        self.at_runs += 1;
        out.push(Action::AtPerformed { pass: m.at_pass });
        if !m.at_pass {
            // `error_recovery(P1sdw, P2); exit(error)`
            self.halted = true;
            out.push(Action::SoftwareErrorDetected);
            return out;
        }
        if self.cfg.variant == Variant::Modified {
            self.pseudo_dirty = false;
        } else if self.cfg.active_type2 {
            // Write-through baseline: P1act takes a Type-2 checkpoint on its
            // own validation so it, too, has something to persist.
            out.push(Action::TakeCheckpoint {
                kind: CheckpointKind::Type2,
                engine: self.snapshot(),
            });
        }
        self.msg_sn = self.msg_sn.next();
        out.push(Action::Send(Envelope::new(
            MsgId {
                from: self.id,
                seq: self.msg_sn,
            },
            m.to,
            MessageBody::External { payload: m.payload },
        )));
        // Broadcast `passed_AT` with the validated sequence number and the
        // local Ndc.
        for dest in [self.shadow, self.peer] {
            out.push(Action::Send(self.passed_at(dest)));
        }
        out
    }

    fn send_internal(&mut self, m: OutboundMessage) -> Vec<Action> {
        let mut out = Vec::new();
        if self.cfg.variant == Variant::Modified && !self.pseudo_dirty {
            // First internal message since the last validation: establish the
            // pseudo checkpoint *before* the send so it is consistent with
            // the Type-1 checkpoint the receiver takes before reading it.
            out.push(Action::TakeCheckpoint {
                kind: CheckpointKind::Pseudo,
                engine: self.snapshot(),
            });
            self.pseudo_dirty = true;
        }
        self.msg_sn = self.msg_sn.next();
        out.push(Action::Send(Envelope::new(
            MsgId {
                from: self.id,
                seq: self.msg_sn,
            },
            m.to,
            MessageBody::Application {
                payload: m.payload,
                // `m = append(m, dirty_bit)` — constantly 1 for P1act.
                dirty: true,
            },
        )));
        out
    }

    fn deliver(&mut self, envelope: Envelope) -> Vec<Action> {
        match &envelope.body {
            MessageBody::PassedAt { ndc, .. } => {
                match self.cfg.variant {
                    Variant::Modified => {
                        if *ndc == self.ndc || (*ndc > self.ndc && !self.hold.is_blocking()) {
                            // Same epoch, or an early notification from a
                            // sender that already committed while we are
                            // idle: knowledge update only, nothing to
                            // wrongly adjust.
                            self.pseudo_dirty = false;
                        } else if *ndc > self.ndc {
                            // Early notification during our blocking period:
                            // it belongs to the next epoch — defer past the
                            // commit rather than losing the validation.
                            self.hold.hold(Event::Deliver(envelope));
                        }
                        // *ndc < self.ndc: a stale in-transit notification
                        // (the Fig. 4(b) hazard) — dropped.
                    }
                    Variant::Original => {
                        if self.hold.is_blocking() {
                            self.hold.hold(Event::Deliver(envelope));
                            return Vec::new();
                        }
                        if self.cfg.active_type2 {
                            return vec![Action::TakeCheckpoint {
                                kind: CheckpointKind::Type2,
                                engine: self.snapshot(),
                            }];
                        }
                    }
                }
                Vec::new()
            }
            MessageBody::Application { .. } => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::Deliver(envelope));
                    Vec::new()
                } else {
                    // P1act is permanently dirty; reception never changes
                    // confidence, so no checkpoint is needed.
                    vec![Action::DeliverToApp(envelope)]
                }
            }
            MessageBody::External { .. } | MessageBody::Ack { .. } => {
                debug_assert!(false, "driver must not route {envelope} to an MDCD engine");
                Vec::new()
            }
        }
    }

    fn passed_at(&mut self, to: ProcessId) -> Envelope {
        self.ctrl_sn += 1;
        Envelope::new(
            MsgId {
                from: self.id,
                seq: MsgSeqNo(CTRL_SEQ_BASE + self.ctrl_sn),
            },
            Endpoint::Process(to),
            MessageBody::PassedAt {
                msg_sn: self.msg_sn,
                ndc: self.ndc,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SELF: ProcessId = ProcessId(1);
    const SHADOW: ProcessId = ProcessId(2);
    const PEER: ProcessId = ProcessId(3);

    fn engine(cfg: MdcdConfig) -> ActiveEngine {
        ActiveEngine::new(cfg, SELF, SHADOW, PEER)
    }

    fn internal(payload: u8) -> Event {
        Event::AppSend(OutboundMessage {
            to: Endpoint::Process(PEER),
            payload: vec![payload],
            external: false,
            at_pass: true,
        })
    }

    fn external(pass: bool) -> Event {
        Event::AppSend(OutboundMessage {
            to: Endpoint::Device(synergy_net::DeviceId(0)),
            payload: vec![0xEE],
            external: true,
            at_pass: pass,
        })
    }

    fn passed_at(ndc: u64, sn: u64) -> Event {
        Event::Deliver(Envelope::new(
            MsgId {
                from: PEER,
                seq: MsgSeqNo(CTRL_SEQ_BASE + 99),
            },
            SELF,
            MessageBody::PassedAt {
                msg_sn: MsgSeqNo(sn),
                ndc: CkptSeqNo(ndc),
            },
        ))
    }

    #[test]
    fn pseudo_checkpoint_only_before_first_internal_send() {
        let mut e = engine(MdcdConfig::modified());
        assert!(!e.pseudo_dirty_bit());
        let first = e.handle(internal(1));
        assert!(matches!(
            first[0],
            Action::TakeCheckpoint {
                kind: CheckpointKind::Pseudo,
                ..
            }
        ));
        assert!(e.pseudo_dirty_bit());
        // Second internal send: no new checkpoint.
        let second = e.handle(internal(2));
        assert_eq!(second.len(), 1);
        assert!(second[0].is_send());
    }

    #[test]
    fn pseudo_checkpoint_snapshot_predates_the_send() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(internal(1));
        match &actions[0] {
            Action::TakeCheckpoint { engine, .. } => {
                assert_eq!(engine.pseudo_dirty, Some(false), "snapshot is pre-send");
                assert_eq!(engine.msg_sn, MsgSeqNo(0));
            }
            other => panic!("expected checkpoint, got {other:?}"),
        }
        assert_eq!(e.msg_sn(), MsgSeqNo(1));
    }

    #[test]
    fn at_pass_resets_pseudo_bit_and_broadcasts() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(internal(1));
        assert!(e.pseudo_dirty_bit());
        let actions = e.handle(external(true));
        assert!(matches!(actions[0], Action::AtPerformed { pass: true }));
        assert!(!e.pseudo_dirty_bit());
        let sends: Vec<&Envelope> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(env) => Some(env),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 3, "device message + 2 passed_AT");
        let passed: Vec<_> = sends.iter().filter(|s| s.body.is_passed_at()).collect();
        assert_eq!(passed.len(), 2);
        // passed_AT carries the post-increment msg_SN covering the external
        // message just validated.
        for p in passed {
            match p.body {
                MessageBody::PassedAt { msg_sn, ndc } => {
                    assert_eq!(msg_sn, MsgSeqNo(2));
                    assert_eq!(ndc, CkptSeqNo(0));
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn at_failure_halts_and_reports() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(external(false));
        assert!(actions.contains(&Action::SoftwareErrorDetected));
        assert!(e.is_halted());
        assert!(e.handle(internal(1)).is_empty(), "halted engine is inert");
    }

    #[test]
    fn passed_at_with_matching_ndc_resets_pseudo_bit() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(internal(1));
        assert!(e.pseudo_dirty_bit());
        e.handle(passed_at(0, 1));
        assert!(!e.pseudo_dirty_bit());
    }

    #[test]
    fn passed_at_with_stale_ndc_is_ignored() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(2)));
        e.handle(internal(1));
        e.handle(passed_at(1, 1)); // stale epoch
        assert!(e.pseudo_dirty_bit());
        e.handle(passed_at(2, 1)); // current epoch
        assert!(!e.pseudo_dirty_bit());
    }

    #[test]
    fn app_messages_held_during_blocking_passed_at_processed() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(internal(1));
        e.handle(Event::BlockingStarted);
        let app = Envelope::new(
            MsgId {
                from: PEER,
                seq: MsgSeqNo(1),
            },
            SELF,
            MessageBody::Application {
                payload: vec![7],
                dirty: false,
            },
        );
        assert!(e.handle(Event::Deliver(app.clone())).is_empty(), "held");
        // passed_AT flows through the blockade (Table 1: all but passed_AT).
        e.handle(passed_at(0, 1));
        assert!(!e.pseudo_dirty_bit());
        let released = e.handle(Event::BlockingEnded);
        assert_eq!(released, vec![Action::DeliverToApp(app)]);
    }

    #[test]
    fn original_variant_blocks_even_passed_at() {
        let mut e = engine(MdcdConfig::write_through());
        e.handle(Event::BlockingStarted);
        assert!(
            e.handle(passed_at(0, 1)).is_empty(),
            "held under original TB"
        );
        let released = e.handle(Event::BlockingEnded);
        assert!(
            matches!(
                released[0],
                Action::TakeCheckpoint {
                    kind: CheckpointKind::Type2,
                    ..
                }
            ),
            "write-through P1act takes a Type-2 checkpoint once unblocked"
        );
    }

    #[test]
    fn original_variant_never_takes_pseudo_checkpoints() {
        let mut e = engine(MdcdConfig::original());
        let actions = e.handle(internal(1));
        assert_eq!(actions.len(), 1);
        assert!(actions[0].is_send());
        assert!(e.checkpoint_bit(), "original P1act is always dirty for TB");
    }

    #[test]
    fn sequence_numbers_count_internal_and_external_sends() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(internal(1));
        e.handle(external(true));
        e.handle(internal(2));
        assert_eq!(e.msg_sn(), MsgSeqNo(3));
        assert_eq!(e.at_runs(), 1);
    }

    #[test]
    fn restore_resets_control_state_but_not_ndc() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(5)));
        let actions = e.handle(internal(1));
        let snap = match &actions[0] {
            Action::TakeCheckpoint { engine, .. } => engine.clone(),
            _ => panic!("expected checkpoint"),
        };
        e.handle(internal(2));
        e.restore(&snap);
        assert!(!e.pseudo_dirty_bit());
        assert_eq!(e.msg_sn(), MsgSeqNo(0));
        // Ndc survives the rollback: next matching passed_AT still works.
        e.handle(internal(1));
        e.handle(passed_at(5, 1));
        assert!(!e.pseudo_dirty_bit());
    }

    #[test]
    fn dirty_bit_is_constant_one() {
        let mut e = engine(MdcdConfig::modified());
        assert!(e.dirty_bit());
        e.handle(passed_at(0, 1));
        assert!(e.dirty_bit(), "validation clears pseudo bit, not dirty bit");
    }
}
