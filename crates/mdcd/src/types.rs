//! Shared vocabulary types of the MDCD protocol.

use core::fmt;

/// Which MDCD algorithm variant an engine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The original protocol (paper §2.1): Type-2 checkpoints on
    /// validation, no pseudo dirty bit, no `Ndc` matching, no blocking
    /// awareness.
    Original,
    /// The modified protocol (paper §3, Appendix A), ready for coordination
    /// with the adapted TB protocol.
    Modified,
}

/// The role a process plays in the guarded configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProcessRole {
    /// `P1act`: active low-confidence version.
    Active,
    /// `P1sdw`: shadow high-confidence version.
    Shadow,
    /// `P2`: the second (high-confidence) application component.
    Peer,
}

impl fmt::Display for ProcessRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessRole::Active => write!(f, "P1act"),
            ProcessRole::Shadow => write!(f, "P1sdw"),
            ProcessRole::Peer => write!(f, "P2"),
        }
    }
}

/// Why a volatile checkpoint is being established.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckpointKind {
    /// Immediately before a process state becomes potentially contaminated.
    Type1,
    /// Right after a potentially contaminated state is validated (original
    /// protocol only).
    Type2,
    /// `P1act`'s checkpoint driven by its pseudo dirty bit (modified
    /// protocol only, paper §3).
    Pseudo,
}

impl fmt::Display for CheckpointKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointKind::Type1 => write!(f, "type-1"),
            CheckpointKind::Type2 => write!(f, "type-2"),
            CheckpointKind::Pseudo => write!(f, "pseudo"),
        }
    }
}

/// A process's local recovery decision after a software error is detected
/// (paper §2.1): roll back to the most recent volatile checkpoint when the
/// state is potentially contaminated, roll forward otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryDecision {
    /// Restore the most recent volatile checkpoint.
    RollBack,
    /// Continue from the current state.
    RollForward,
}

impl fmt::Display for RecoveryDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryDecision::RollBack => write!(f, "roll-back"),
            RecoveryDecision::RollForward => write!(f, "roll-forward"),
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MdcdConfig {
    /// Algorithm variant.
    pub variant: Variant,
    /// Whether `P1act` emits Type-2 checkpoints on validation events. The
    /// original protocol exempts `P1act` from checkpointing; the
    /// *write-through* baseline of paper §3 re-enables it so every process
    /// can persist a Type-2 checkpoint to stable storage.
    pub active_type2: bool,
}

impl MdcdConfig {
    /// The original protocol as published.
    pub fn original() -> Self {
        MdcdConfig {
            variant: Variant::Original,
            active_type2: false,
        }
    }

    /// The original protocol with `P1act` Type-2 checkpoints, as required by
    /// the write-through baseline.
    pub fn write_through() -> Self {
        MdcdConfig {
            variant: Variant::Original,
            active_type2: true,
        }
    }

    /// The modified, coordination-ready protocol.
    pub fn modified() -> Self {
        MdcdConfig {
            variant: Variant::Modified,
            active_type2: false,
        }
    }
}

impl Default for MdcdConfig {
    fn default() -> Self {
        MdcdConfig::modified()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_match_paper() {
        assert_eq!(ProcessRole::Active.to_string(), "P1act");
        assert_eq!(ProcessRole::Shadow.to_string(), "P1sdw");
        assert_eq!(ProcessRole::Peer.to_string(), "P2");
        assert_eq!(CheckpointKind::Type1.to_string(), "type-1");
        assert_eq!(RecoveryDecision::RollForward.to_string(), "roll-forward");
    }

    #[test]
    fn config_presets() {
        assert_eq!(MdcdConfig::original().variant, Variant::Original);
        assert!(!MdcdConfig::original().active_type2);
        assert!(MdcdConfig::write_through().active_type2);
        assert_eq!(MdcdConfig::default(), MdcdConfig::modified());
    }
}
