//! The message-driven confidence-driven (MDCD) error containment and
//! recovery protocol.
//!
//! MDCD (Tai et al., ICDCS 2000) mitigates *software design faults* in a
//! distributed system built from one low-confidence component (an upgraded
//! version) escorted by a high-confidence shadow, interacting with a second
//! high-confidence component:
//!
//! * `P1act` — the **active** process running the low-confidence version; it
//!   drives the external world and is always considered potentially
//!   contaminated (its dirty bit is constantly 1);
//! * `P1sdw` — the **shadow** process running the high-confidence version on
//!   the same inputs; its outgoing messages are suppressed and logged so it
//!   can take over when an acceptance test fails;
//! * `P2` — the **peer** process (second application component).
//!
//! Checkpoints are established in volatile storage *only* when a
//! message-passing event changes our confidence in a process state: right
//! before a state becomes potentially contaminated (**Type-1**) or right
//! after it is validated (**Type-2**, original protocol only). Acceptance
//! tests run on *external* messages only.
//!
//! This crate implements both algorithm variants as sans-io engines — pure
//! state machines consuming [`Event`]s and emitting [`Action`]s:
//!
//! * [`Variant::Original`] — the protocol of §2.1 of the DSN 2001 paper;
//! * [`Variant::Modified`] — the coordination-ready protocol of §3 and
//!   Appendix A: `P1act` gains a pseudo dirty bit and pseudo checkpoints,
//!   Type-2 checkpoints are eliminated, `passed_AT` notifications carry and
//!   match the stable-checkpoint sequence number `Ndc`, and application
//!   messages are held (not delivered) during a TB blocking period while
//!   `passed_AT` notifications are still monitored.
//!
//! Engines are deliberately free of time, randomness and I/O; the DES driver
//! in the `synergy` crate and the threaded runtime in `synergy-middleware`
//! both host the same engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod general;

mod actions;
mod active;
mod events;
mod hold;
mod log;
mod peer;
mod shadow;
mod snapshot;
mod types;

pub use actions::Action;
pub use active::ActiveEngine;
pub use events::{Event, OutboundMessage};
pub use log::MessageLog;
pub use peer::PeerEngine;
pub use shadow::{ShadowEngine, TakeoverPlan};
pub use snapshot::EngineSnapshot;
pub use types::{CheckpointKind, MdcdConfig, ProcessRole, RecoveryDecision, Variant};
