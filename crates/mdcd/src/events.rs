//! Inputs consumed by the MDCD engines.

use synergy_net::{CkptSeqNo, Endpoint, Envelope};

/// An application-level request to send one message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutboundMessage {
    /// Destination endpoint (a process for internal messages, a device for
    /// external ones).
    pub to: Endpoint,
    /// Opaque application payload.
    pub payload: Vec<u8>,
    /// Whether this is an external message (subject to acceptance testing).
    pub external: bool,
    /// The acceptance-test verdict *if* the engine decides to run the test.
    /// The hosting driver evaluates the application's acceptance test ahead
    /// of time; the engine consults the verdict only on the algorithm paths
    /// that call `AT(m)` and reports actual executions via
    /// [`Action::AtPerformed`](crate::Action::AtPerformed).
    pub at_pass: bool,
}

/// One input to an MDCD engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// The hosted application produced an outgoing message
    /// (`outgoing_message_m_ready` in Appendix A).
    AppSend(OutboundMessage),
    /// The transport delivered an envelope
    /// (`incoming_message_queue_nonempty` in Appendix A).
    Deliver(Envelope),
    /// The adapted TB protocol entered its blocking period on this node:
    /// hold application messages, keep monitoring `passed_AT`.
    BlockingStarted,
    /// The blocking period ended: release held traffic.
    BlockingEnded,
    /// The adapted TB protocol committed a stable checkpoint; the local
    /// `Ndc` becomes `seq`.
    StableCheckpointCommitted(CkptSeqNo),
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::{DeviceId, ProcessId};

    #[test]
    fn outbound_message_construction() {
        let m = OutboundMessage {
            to: Endpoint::Device(DeviceId(0)),
            payload: vec![1, 2, 3],
            external: true,
            at_pass: true,
        };
        assert!(m.external);
        assert_eq!(m.payload.len(), 3);
    }

    #[test]
    fn event_variants_are_distinguishable() {
        let a = Event::BlockingStarted;
        let b = Event::BlockingEnded;
        assert_ne!(a, b);
        let c = Event::StableCheckpointCommitted(CkptSeqNo(1));
        let d = Event::StableCheckpointCommitted(CkptSeqNo(2));
        assert_ne!(c, d);
        let _ = Endpoint::Process(ProcessId(1)); // vocabulary sanity
    }
}
