//! The error-containment engine of `P2` (Appendix A, Fig. 10).

use synergy_net::{CkptSeqNo, Endpoint, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};

use crate::actions::Action;
use crate::active::CTRL_SEQ_BASE;
use crate::events::{Event, OutboundMessage};
use crate::hold::HoldQueue;
use crate::snapshot::EngineSnapshot;
use crate::types::{CheckpointKind, MdcdConfig, RecoveryDecision, Variant};

/// The engine hosted next to the second application component `P2`.
///
/// `P2` broadcasts its internal messages to both replicas of `P1` (so active
/// and shadow compute on identical inputs), runs an acceptance test on its
/// external messages only while potentially contaminated, and tracks
/// `msg_SN_P1act` — the last message received from `P1act` — so its own
/// validations can vouch for those messages too.
///
/// # Example
///
/// ```rust
/// use synergy_mdcd::{Event, MdcdConfig, PeerEngine};
/// use synergy_net::{Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};
///
/// let mut p2 = PeerEngine::new(MdcdConfig::modified(), ProcessId(3), ProcessId(1), ProcessId(2));
/// // A (dirty) message from P1act contaminates P2: Type-1 checkpoint first.
/// let actions = p2.handle(Event::Deliver(Envelope::new(
///     MsgId { from: ProcessId(1), seq: MsgSeqNo(1) },
///     ProcessId(3),
///     MessageBody::Application { payload: vec![1], dirty: true },
/// )));
/// assert!(actions[0].is_checkpoint());
/// assert!(p2.dirty_bit());
/// ```
#[derive(Clone, Debug)]
pub struct PeerEngine {
    cfg: MdcdConfig,
    id: ProcessId,
    active: ProcessId,
    shadow: ProcessId,
    dirty: bool,
    msg_sn: MsgSeqNo,
    ctrl_sn: u64,
    /// `msg_SN_P1act`: last message sequence number received from (or
    /// validated for) the active process.
    vr_act: MsgSeqNo,
    ndc: CkptSeqNo,
    hold: HoldQueue,
    at_runs: u64,
}

impl PeerEngine {
    /// Creates the engine for process `id`, interacting with the `active`
    /// process and its `shadow`.
    pub fn new(cfg: MdcdConfig, id: ProcessId, active: ProcessId, shadow: ProcessId) -> Self {
        PeerEngine {
            cfg,
            id,
            active,
            shadow,
            dirty: false,
            msg_sn: MsgSeqNo(0),
            ctrl_sn: 0,
            vr_act: MsgSeqNo(0),
            ndc: CkptSeqNo(0),
            hold: HoldQueue::new(),
            at_runs: 0,
        }
    }

    /// `P2`'s dirty bit.
    pub fn dirty_bit(&self) -> bool {
        self.dirty
    }

    /// The bit the adapted TB protocol consults for checkpoint contents.
    pub fn checkpoint_bit(&self) -> bool {
        self.dirty
    }

    /// `msg_SN_P1act`: the peer's record of the active process's sequence.
    pub fn vr_act(&self) -> MsgSeqNo {
        self.vr_act
    }

    /// Number of acceptance tests executed.
    pub fn at_runs(&self) -> u64 {
        self.at_runs
    }

    /// Retargets the engine at a new active process (shadow takeover): the
    /// promoted shadow becomes the active endpoint and no shadow remains.
    pub fn retarget_active(&mut self, new_active: ProcessId) {
        self.active = new_active;
        self.shadow = new_active;
    }

    /// The local recovery decision when a software error is detected.
    pub fn recovery_decision(&self) -> RecoveryDecision {
        if self.dirty {
            RecoveryDecision::RollBack
        } else {
            RecoveryDecision::RollForward
        }
    }

    /// Captures the engine control state for a checkpoint.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            dirty: self.dirty,
            pseudo_dirty: None,
            msg_sn: self.msg_sn,
            vr_act: self.vr_act,
            ndc: self.ndc,
            log: Vec::new(),
            promoted: false,
        }
    }

    /// Restores control state from a checkpoint (`ndc` excluded; see
    /// [`EngineSnapshot`]).
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        self.dirty = snapshot.dirty;
        self.msg_sn = snapshot.msg_sn;
        self.vr_act = snapshot.vr_act;
        self.hold.reset();
    }

    /// Feeds one event, returning the actions to execute in order.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        match event {
            Event::AppSend(m) => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::AppSend(m));
                    Vec::new()
                } else if m.external {
                    self.send_external(m)
                } else {
                    self.send_internal(m)
                }
            }
            Event::Deliver(envelope) => self.deliver(envelope),
            Event::BlockingStarted => {
                self.hold.start();
                Vec::new()
            }
            Event::BlockingEnded => {
                let mut out = Vec::new();
                for held in self.hold.end() {
                    out.extend(self.handle(held));
                }
                out
            }
            Event::StableCheckpointCommitted(seq) => {
                self.ndc = seq;
                Vec::new()
            }
        }
    }

    fn send_external(&mut self, m: OutboundMessage) -> Vec<Action> {
        let mut out = Vec::new();
        if self.dirty {
            self.at_runs += 1;
            out.push(Action::AtPerformed { pass: m.at_pass });
            if !m.at_pass {
                out.push(Action::SoftwareErrorDetected);
                return out;
            }
            self.dirty = false;
            if self.cfg.variant == Variant::Original {
                // Original protocol: validation establishes a Type-2
                // checkpoint at the validating process too.
                out.push(Action::TakeCheckpoint {
                    kind: CheckpointKind::Type2,
                    engine: self.snapshot(),
                });
            }
            self.msg_sn = self.msg_sn.next();
            out.push(Action::Send(Envelope::new(
                MsgId {
                    from: self.id,
                    seq: self.msg_sn,
                },
                m.to,
                MessageBody::External { payload: m.payload },
            )));
            // Broadcast passed_AT carrying *P1act's* validated sequence
            // number: P2 passing its AT vouches for every message it has
            // received from P1act (key assumption, paper §2.1).
            let recipients: Vec<ProcessId> = if self.active == self.shadow {
                vec![self.active]
            } else {
                vec![self.active, self.shadow]
            };
            for dest in recipients {
                self.ctrl_sn += 1;
                out.push(Action::Send(Envelope::new(
                    MsgId {
                        from: self.id,
                        seq: MsgSeqNo(CTRL_SEQ_BASE + self.ctrl_sn),
                    },
                    Endpoint::Process(dest),
                    MessageBody::PassedAt {
                        msg_sn: self.vr_act,
                        ndc: self.ndc,
                    },
                )));
            }
        } else {
            // Outgoing message from a clean state: no AT needed.
            self.msg_sn = self.msg_sn.next();
            out.push(Action::Send(Envelope::new(
                MsgId {
                    from: self.id,
                    seq: self.msg_sn,
                },
                m.to,
                MessageBody::External { payload: m.payload },
            )));
        }
        out
    }

    fn send_internal(&mut self, m: OutboundMessage) -> Vec<Action> {
        // Internal messages are broadcast to both replicas so active and
        // shadow compute on identical inputs; each copy gets its own
        // sequence number for independent ack tracking.
        let mut out = Vec::new();
        let recipients: Vec<ProcessId> = if self.active == self.shadow {
            vec![self.active]
        } else {
            vec![self.active, self.shadow]
        };
        for dest in recipients {
            self.msg_sn = self.msg_sn.next();
            out.push(Action::Send(Envelope::new(
                MsgId {
                    from: self.id,
                    seq: self.msg_sn,
                },
                Endpoint::Process(dest),
                MessageBody::Application {
                    payload: m.payload.clone(),
                    dirty: self.dirty,
                },
            )));
        }
        out
    }

    fn deliver(&mut self, envelope: Envelope) -> Vec<Action> {
        match &envelope.body {
            MessageBody::PassedAt { msg_sn, ndc } => {
                if self.cfg.variant == Variant::Original {
                    if self.hold.is_blocking() {
                        self.hold.hold(Event::Deliver(envelope));
                        return Vec::new();
                    }
                    self.vr_act = *msg_sn;
                    self.dirty = false;
                    return vec![Action::TakeCheckpoint {
                        kind: CheckpointKind::Type2,
                        engine: self.snapshot(),
                    }];
                }
                // Same-epoch or early-while-idle notifications are
                // accepted; early-while-blocking ones are deferred past the
                // commit; stale ones (Fig. 4(b)) are dropped.
                if *ndc == self.ndc || (*ndc > self.ndc && !self.hold.is_blocking()) {
                    self.vr_act = *msg_sn;
                    self.dirty = false;
                } else if *ndc > self.ndc {
                    self.hold.hold(Event::Deliver(envelope));
                }
                Vec::new()
            }
            MessageBody::Application { dirty: m_dirty, .. } => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::Deliver(envelope));
                    return Vec::new();
                }
                let mut out = Vec::new();
                self.vr_act = envelope.id.seq;
                // Fig. 10 tests only `dirty_bit == 0` because P1act's
                // piggybacked bit is constantly 1; we also honour the
                // piggybacked bit so a promoted (clean) shadow does not
                // re-contaminate the peer.
                if *m_dirty && !self.dirty {
                    out.push(Action::TakeCheckpoint {
                        kind: CheckpointKind::Type1,
                        engine: self.snapshot(),
                    });
                    self.dirty = true;
                }
                out.push(Action::DeliverToApp(envelope));
                out
            }
            MessageBody::External { .. } | MessageBody::Ack { .. } => {
                debug_assert!(false, "driver must not route {envelope} to an MDCD engine");
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::DeviceId;

    const SELF: ProcessId = ProcessId(3);
    const ACT: ProcessId = ProcessId(1);
    const SDW: ProcessId = ProcessId(2);

    fn engine(cfg: MdcdConfig) -> PeerEngine {
        PeerEngine::new(cfg, SELF, ACT, SDW)
    }

    fn from_active(seq: u64) -> Event {
        Event::Deliver(Envelope::new(
            MsgId {
                from: ACT,
                seq: MsgSeqNo(seq),
            },
            SELF,
            MessageBody::Application {
                payload: vec![9],
                dirty: true,
            },
        ))
    }

    fn external(pass: bool) -> Event {
        Event::AppSend(OutboundMessage {
            to: Endpoint::Device(DeviceId(0)),
            payload: vec![0xAA],
            external: true,
            at_pass: pass,
        })
    }

    fn internal(payload: u8) -> Event {
        Event::AppSend(OutboundMessage {
            to: Endpoint::Process(ACT),
            payload: vec![payload],
            external: false,
            at_pass: true,
        })
    }

    fn passed_at(sn: u64, ndc: u64) -> Event {
        Event::Deliver(Envelope::new(
            MsgId {
                from: ACT,
                seq: MsgSeqNo(CTRL_SEQ_BASE + 1),
            },
            SELF,
            MessageBody::PassedAt {
                msg_sn: MsgSeqNo(sn),
                ndc: CkptSeqNo(ndc),
            },
        ))
    }

    #[test]
    fn internal_sends_broadcast_to_both_replicas() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(internal(1));
        let dests: Vec<Endpoint> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(env) => Some(env.to),
                _ => None,
            })
            .collect();
        assert_eq!(
            dests,
            vec![Endpoint::Process(ACT), Endpoint::Process(SDW)],
            "both replicas must see identical inputs"
        );
    }

    #[test]
    fn first_dirty_reception_takes_type1_and_tracks_sn() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(from_active(4));
        assert!(actions[0].is_checkpoint());
        assert!(e.dirty_bit());
        assert_eq!(e.vr_act(), MsgSeqNo(4));
    }

    #[test]
    fn clean_external_send_skips_at() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(external(true));
        assert_eq!(actions.len(), 1);
        assert!(actions[0].is_send());
        assert_eq!(e.at_runs(), 0);
    }

    #[test]
    fn dirty_external_send_runs_at_and_vouches_for_active() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_active(7));
        let actions = e.handle(external(true));
        assert!(matches!(actions[0], Action::AtPerformed { pass: true }));
        assert!(!e.dirty_bit());
        let passed: Vec<&Envelope> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send(env) if env.body.is_passed_at() => Some(env),
                _ => None,
            })
            .collect();
        assert_eq!(passed.len(), 2);
        for p in &passed {
            match p.body {
                MessageBody::PassedAt { msg_sn, .. } => {
                    assert_eq!(msg_sn, MsgSeqNo(7), "vouches for P1act's messages");
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn at_failure_reports_software_error() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_active(1));
        let actions = e.handle(external(false));
        assert!(actions.contains(&Action::SoftwareErrorDetected));
        assert!(e.dirty_bit(), "failed AT leaves the state contaminated");
    }

    #[test]
    fn passed_at_ndc_guard_drops_stale_accepts_current_and_early() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(2)));
        e.handle(from_active(1));
        // Stale epoch: dropped (Fig. 4(b) protection).
        e.handle(passed_at(3, 1));
        assert!(e.dirty_bit());
        // Current epoch: accepted.
        e.handle(passed_at(3, 2));
        assert!(!e.dirty_bit());
        assert_eq!(e.vr_act(), MsgSeqNo(3));
        // Early epoch while idle: accepted (knowledge update only).
        e.handle(from_active(4));
        e.handle(passed_at(4, 5));
        assert!(!e.dirty_bit());
    }

    #[test]
    fn early_passed_at_during_blocking_is_deferred() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_active(1));
        e.handle(Event::BlockingStarted);
        e.handle(passed_at(1, 1));
        assert!(e.dirty_bit(), "in-flight epoch must not be adjusted");
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(1)));
        e.handle(Event::BlockingEnded);
        assert!(!e.dirty_bit());
    }

    #[test]
    fn original_variant_type2_on_passed_at() {
        let mut e = engine(MdcdConfig::original());
        e.handle(from_active(1));
        let actions = e.handle(passed_at(1, 42));
        assert!(matches!(
            actions[0],
            Action::TakeCheckpoint {
                kind: CheckpointKind::Type2,
                ..
            }
        ));
        assert!(!e.dirty_bit());
    }

    #[test]
    fn original_variant_type2_on_own_at_pass() {
        let mut e = engine(MdcdConfig::original());
        e.handle(from_active(1));
        let actions = e.handle(external(true));
        assert!(
            actions.iter().any(|a| matches!(
                a,
                Action::TakeCheckpoint {
                    kind: CheckpointKind::Type2,
                    ..
                }
            )),
            "own validation also checkpoints under the original protocol"
        );
    }

    #[test]
    fn blocking_holds_app_messages() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::BlockingStarted);
        assert!(e.handle(from_active(1)).is_empty());
        assert!(!e.dirty_bit(), "held message has not contaminated yet");
        let released = e.handle(Event::BlockingEnded);
        assert_eq!(released.len(), 2);
        assert!(e.dirty_bit());
    }

    #[test]
    fn passed_at_during_blocking_prevents_wrong_contamination_view() {
        // Fig. 6(b): dirty P2 blocking; a passed_AT from the current epoch
        // arrives inside the blocking period and must reset the dirty bit so
        // the TB driver can switch checkpoint contents.
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_active(1));
        e.handle(Event::BlockingStarted);
        assert!(e.dirty_bit());
        e.handle(passed_at(1, 0));
        assert!(!e.dirty_bit());
    }

    #[test]
    fn retarget_active_after_takeover_sends_single_copy() {
        let mut e = engine(MdcdConfig::modified());
        e.retarget_active(SDW);
        let actions = e.handle(internal(1));
        let sends = actions.iter().filter(|a| a.is_send()).count();
        assert_eq!(sends, 1, "no shadow remains after takeover");
    }

    #[test]
    fn promoted_clean_sender_does_not_recontaminate() {
        let mut e = engine(MdcdConfig::modified());
        e.retarget_active(SDW);
        let clean = Event::Deliver(Envelope::new(
            MsgId {
                from: SDW,
                seq: MsgSeqNo(1),
            },
            SELF,
            MessageBody::Application {
                payload: vec![1],
                dirty: false,
            },
        ));
        let actions = e.handle(clean);
        assert_eq!(actions.len(), 1, "no checkpoint for a clean message");
        assert!(!e.dirty_bit());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_active(5));
        let snap = e.snapshot();
        let mut other = engine(MdcdConfig::modified());
        other.restore(&snap);
        assert_eq!(other.dirty_bit(), e.dirty_bit());
        assert_eq!(other.vr_act(), e.vr_act());
    }

    #[test]
    fn recovery_decision_follows_dirty_bit() {
        let mut e = engine(MdcdConfig::modified());
        assert_eq!(e.recovery_decision(), RecoveryDecision::RollForward);
        e.handle(from_active(1));
        assert_eq!(e.recovery_decision(), RecoveryDecision::RollBack);
    }
}
