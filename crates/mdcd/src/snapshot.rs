//! Serializable engine control state.

use synergy_codec::codec_struct;
use synergy_net::{CkptSeqNo, Envelope, MsgSeqNo};

/// The control-state portion of a checkpoint.
///
/// A checkpoint must capture the *protocol* state alongside the application
/// state: rolling an application back without its dirty bit, message
/// sequence counter and (for the shadow) message log would desynchronize the
/// replicas. Engines embed a snapshot in every
/// [`TakeCheckpoint`](crate::Action::TakeCheckpoint) action and accept one
/// back through their `restore` methods.
///
/// `ndc` is recorded for diagnosis but deliberately **not** restored: the
/// stable-checkpoint epoch counter tracks stable storage, which neither a
/// software rollback nor a hardware recovery rewinds. Drivers realign it
/// explicitly with
/// [`Event::StableCheckpointCommitted`](crate::Event::StableCheckpointCommitted).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// The dirty bit (for `P1act` this is the constant 1).
    pub dirty: bool,
    /// `P1act`'s pseudo dirty bit (modified protocol only).
    pub pseudo_dirty: Option<bool>,
    /// The per-process outgoing message sequence counter.
    pub msg_sn: MsgSeqNo,
    /// The shadow's / peer's record of `P1act`'s last valid message
    /// (`VR_act` / `msg_SN_P1act`).
    pub vr_act: MsgSeqNo,
    /// Local stable-checkpoint sequence number at snapshot time (not
    /// restored; see type docs).
    pub ndc: CkptSeqNo,
    /// The shadow's suppressed-message log (empty for other roles).
    pub log: Vec<Envelope>,
    /// Whether the shadow has taken over the active role.
    pub promoted: bool,
}

codec_struct!(EngineSnapshot {
    dirty,
    pseudo_dirty,
    msg_sn,
    vr_act,
    ndc,
    log,
    promoted
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean_state() {
        let s = EngineSnapshot::default();
        assert!(!s.dirty);
        assert_eq!(s.pseudo_dirty, None);
        assert_eq!(s.msg_sn, MsgSeqNo(0));
        assert!(s.log.is_empty());
        assert!(!s.promoted);
    }

    #[test]
    fn snapshot_is_serializable() {
        let s = EngineSnapshot {
            dirty: true,
            pseudo_dirty: Some(false),
            msg_sn: MsgSeqNo(9),
            vr_act: MsgSeqNo(7),
            ndc: CkptSeqNo(2),
            log: vec![],
            promoted: false,
        };
        let bytes = synergy_storage::codec::to_bytes(&s).unwrap();
        let back: EngineSnapshot = synergy_storage::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }
}
