//! Outputs emitted by the MDCD engines.

use synergy_net::Envelope;

use crate::snapshot::EngineSnapshot;
use crate::types::CheckpointKind;

/// One instruction from an engine to its hosting driver.
///
/// Order matters: the driver must execute actions in the order they appear
/// in the returned vector. In particular a
/// [`TakeCheckpoint`](Action::TakeCheckpoint) preceding a
/// [`DeliverToApp`](Action::DeliverToApp) is the paper's "checkpoint
/// *immediately before* the state becomes potentially contaminated".
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Hand `envelope` to the transport.
    Send(Envelope),
    /// Snapshot the application state *now*, together with the provided
    /// engine snapshot, into volatile storage.
    TakeCheckpoint {
        /// Why the checkpoint is taken.
        kind: CheckpointKind,
        /// The engine's control state as of this instant (captured by the
        /// engine itself so later mutations in the same event cannot leak
        /// into the snapshot).
        engine: EngineSnapshot,
    },
    /// Pass `envelope` to the hosted application (it may mutate app state).
    DeliverToApp(Envelope),
    /// An acceptance test was executed (overhead accounting).
    AtPerformed {
        /// The verdict.
        pass: bool,
    },
    /// An acceptance test failed: the driver must initiate system-wide
    /// software error recovery (`error_recovery(P1sdw, P2)`).
    SoftwareErrorDetected,
}

impl Action {
    /// Whether this action sends a message.
    pub fn is_send(&self) -> bool {
        matches!(self, Action::Send(_))
    }

    /// Whether this action establishes a checkpoint.
    pub fn is_checkpoint(&self) -> bool {
        matches!(self, Action::TakeCheckpoint { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::{MessageBody, MsgId, MsgSeqNo, ProcessId};

    #[test]
    fn predicates() {
        let send = Action::Send(Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(0),
            },
            ProcessId(2),
            MessageBody::Application {
                payload: vec![],
                dirty: true,
            },
        ));
        assert!(send.is_send());
        assert!(!send.is_checkpoint());
        let at = Action::AtPerformed { pass: true };
        assert!(!at.is_send());
    }
}
