//! The error-containment engine of `P1sdw` (Appendix A, Fig. 9).

use synergy_net::{CkptSeqNo, Endpoint, Envelope, MessageBody, MsgId, MsgSeqNo, ProcessId};

use crate::actions::Action;
use crate::active::CTRL_SEQ_BASE;
use crate::events::{Event, OutboundMessage};
use crate::hold::HoldQueue;
use crate::log::MessageLog;
use crate::snapshot::EngineSnapshot;
use crate::types::{CheckpointKind, MdcdConfig, RecoveryDecision, Variant};

/// The shadow's takeover output.
#[derive(Clone, Debug, PartialEq)]
pub struct TakeoverPlan {
    /// Messages to (re-)send now that the shadow is active: the logged
    /// messages beyond the last validated sequence number.
    pub resend: Vec<Envelope>,
}

/// The engine hosted next to the high-confidence shadow version `P1sdw`.
///
/// During guarded operation every outgoing message of the shadow is
/// suppressed and logged; on an acceptance-test failure elsewhere the shadow
/// [`take_over`](ShadowEngine::take_over)s the active role, re-sending the
/// suppressed messages that were never validated.
///
/// # Example
///
/// ```rust
/// use synergy_mdcd::{Event, MdcdConfig, OutboundMessage, RecoveryDecision, ShadowEngine};
/// use synergy_net::{Endpoint, ProcessId};
///
/// let mut sdw = ShadowEngine::new(MdcdConfig::modified(), ProcessId(2), ProcessId(3));
/// // Shadow computes the same outputs as P1act, but they are suppressed:
/// let actions = sdw.handle(Event::AppSend(OutboundMessage {
///     to: Endpoint::Process(ProcessId(3)),
///     payload: vec![1],
///     external: false,
///     at_pass: true,
/// }));
/// assert!(actions.is_empty());
/// assert_eq!(sdw.logged(), 1);
/// // An error is detected; the clean shadow rolls forward and takes over:
/// assert_eq!(sdw.recovery_decision(), RecoveryDecision::RollForward);
/// let plan = sdw.take_over();
/// assert_eq!(plan.resend.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ShadowEngine {
    cfg: MdcdConfig,
    id: ProcessId,
    peer: ProcessId,
    dirty: bool,
    msg_sn: MsgSeqNo,
    ctrl_sn: u64,
    /// `VR_act`: the last message sequence number of `P1act` known valid.
    vr_act: MsgSeqNo,
    ndc: CkptSeqNo,
    log: MessageLog,
    hold: HoldQueue,
    promoted: bool,
    at_runs: u64,
}

impl ShadowEngine {
    /// Creates the engine for shadow process `id`, interacting with `peer`.
    pub fn new(cfg: MdcdConfig, id: ProcessId, peer: ProcessId) -> Self {
        ShadowEngine {
            cfg,
            id,
            peer,
            dirty: false,
            msg_sn: MsgSeqNo(0),
            ctrl_sn: 0,
            vr_act: MsgSeqNo(0),
            ndc: CkptSeqNo(0),
            log: MessageLog::new(),
            hold: HoldQueue::new(),
            promoted: false,
            at_runs: 0,
        }
    }

    /// The shadow's dirty bit.
    pub fn dirty_bit(&self) -> bool {
        self.dirty
    }

    /// The bit the adapted TB protocol consults for checkpoint contents.
    pub fn checkpoint_bit(&self) -> bool {
        self.dirty
    }

    /// `VR_act`: last known-valid message sequence number of `P1act`.
    pub fn vr_act(&self) -> MsgSeqNo {
        self.vr_act
    }

    /// Number of suppressed messages currently logged.
    pub fn logged(&self) -> usize {
        self.log.len()
    }

    /// Whether the shadow has taken over the active role.
    pub fn is_promoted(&self) -> bool {
        self.promoted
    }

    /// Number of acceptance tests executed (only after promotion).
    pub fn at_runs(&self) -> u64 {
        self.at_runs
    }

    /// The local recovery decision when a software error is detected
    /// (paper §2.1): dirty → roll back, clean → roll forward.
    pub fn recovery_decision(&self) -> RecoveryDecision {
        if self.dirty {
            RecoveryDecision::RollBack
        } else {
            RecoveryDecision::RollForward
        }
    }

    /// Promotes the shadow to the active role, returning the suppressed
    /// messages to re-send (those not yet covered by a validation).
    ///
    /// Call **after** any rollback decided by
    /// [`recovery_decision`](Self::recovery_decision) has been applied via
    /// [`restore`](Self::restore), so the plan reflects the recovered state.
    pub fn take_over(&mut self) -> TakeoverPlan {
        self.promoted = true;
        self.hold.reset();
        let resend = self.log.entries_after(self.vr_act).cloned().collect();
        self.log = MessageLog::new();
        TakeoverPlan { resend }
    }

    /// Captures the engine control state for a checkpoint.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            dirty: self.dirty,
            pseudo_dirty: None,
            msg_sn: self.msg_sn,
            vr_act: self.vr_act,
            ndc: self.ndc,
            log: self.log.to_vec(),
            promoted: self.promoted,
        }
    }

    /// Restores control state from a checkpoint (`ndc` excluded; see
    /// [`EngineSnapshot`]).
    pub fn restore(&mut self, snapshot: &EngineSnapshot) {
        self.dirty = snapshot.dirty;
        self.msg_sn = snapshot.msg_sn;
        self.vr_act = snapshot.vr_act;
        self.log.restore(snapshot.log.iter().cloned());
        self.promoted = snapshot.promoted;
        self.hold.reset();
    }

    /// Feeds one event, returning the actions to execute in order.
    pub fn handle(&mut self, event: Event) -> Vec<Action> {
        match event {
            Event::AppSend(m) => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::AppSend(m));
                    Vec::new()
                } else if self.promoted {
                    self.send_promoted(m)
                } else {
                    // Suppress and log (Fig. 9): no network traffic.
                    self.msg_sn = self.msg_sn.next();
                    let body = if m.external {
                        MessageBody::External { payload: m.payload }
                    } else {
                        MessageBody::Application {
                            payload: m.payload,
                            dirty: self.dirty,
                        }
                    };
                    self.log.push(Envelope::new(
                        MsgId {
                            from: self.id,
                            seq: self.msg_sn,
                        },
                        m.to,
                        body,
                    ));
                    Vec::new()
                }
            }
            Event::Deliver(envelope) => self.deliver(envelope),
            Event::BlockingStarted => {
                self.hold.start();
                Vec::new()
            }
            Event::BlockingEnded => {
                let mut out = Vec::new();
                for held in self.hold.end() {
                    out.extend(self.handle(held));
                }
                out
            }
            Event::StableCheckpointCommitted(seq) => {
                self.ndc = seq;
                Vec::new()
            }
        }
    }

    fn deliver(&mut self, envelope: Envelope) -> Vec<Action> {
        match &envelope.body {
            MessageBody::PassedAt { msg_sn, ndc } => {
                if self.cfg.variant == Variant::Original {
                    if self.hold.is_blocking() {
                        self.hold.hold(Event::Deliver(envelope));
                        return Vec::new();
                    }
                    // Original protocol: no Ndc guard, Type-2 checkpoint on
                    // validation.
                    self.vr_act = *msg_sn;
                    self.log.reclaim_up_to(self.vr_act);
                    self.dirty = false;
                    return vec![Action::TakeCheckpoint {
                        kind: CheckpointKind::Type2,
                        engine: self.snapshot(),
                    }];
                }
                // Modified protocol: processed even inside a blocking period,
                // guarded by the Ndc comparison (paper §3). An *early*
                // notification (sender already committed the next epoch)
                // is deferred past our own commit instead of dropped; only
                // stale (past-epoch, Fig. 4(b)) notifications are discarded.
                if *ndc == self.ndc || (*ndc > self.ndc && !self.hold.is_blocking()) {
                    self.vr_act = *msg_sn;
                    self.log.reclaim_up_to(self.vr_act);
                    self.dirty = false;
                } else if *ndc > self.ndc {
                    self.hold.hold(Event::Deliver(envelope));
                }
                Vec::new()
            }
            MessageBody::Application { dirty: m_dirty, .. } => {
                if self.hold.is_blocking() {
                    self.hold.hold(Event::Deliver(envelope));
                    return Vec::new();
                }
                let mut out = Vec::new();
                if *m_dirty && !self.dirty {
                    // Type-1: checkpoint immediately before contamination.
                    out.push(Action::TakeCheckpoint {
                        kind: CheckpointKind::Type1,
                        engine: self.snapshot(),
                    });
                    self.dirty = true;
                }
                out.push(Action::DeliverToApp(envelope));
                out
            }
            MessageBody::External { .. } | MessageBody::Ack { .. } => {
                debug_assert!(false, "driver must not route {envelope} to an MDCD engine");
                Vec::new()
            }
        }
    }

    /// After takeover the shadow is the (high-confidence) active `P1`; it
    /// follows `P2`'s algorithm shape: AT on external sends only while
    /// dirty, `passed_AT` broadcast to the peer.
    fn send_promoted(&mut self, m: OutboundMessage) -> Vec<Action> {
        let mut out = Vec::new();
        if m.external {
            if self.dirty {
                self.at_runs += 1;
                out.push(Action::AtPerformed { pass: m.at_pass });
                if !m.at_pass {
                    out.push(Action::SoftwareErrorDetected);
                    return out;
                }
                self.dirty = false;
                self.msg_sn = self.msg_sn.next();
                out.push(Action::Send(Envelope::new(
                    MsgId {
                        from: self.id,
                        seq: self.msg_sn,
                    },
                    m.to,
                    MessageBody::External { payload: m.payload },
                )));
                self.ctrl_sn += 1;
                out.push(Action::Send(Envelope::new(
                    MsgId {
                        from: self.id,
                        seq: MsgSeqNo(CTRL_SEQ_BASE + self.ctrl_sn),
                    },
                    Endpoint::Process(self.peer),
                    MessageBody::PassedAt {
                        msg_sn: self.msg_sn,
                        ndc: self.ndc,
                    },
                )));
            } else {
                self.msg_sn = self.msg_sn.next();
                out.push(Action::Send(Envelope::new(
                    MsgId {
                        from: self.id,
                        seq: self.msg_sn,
                    },
                    m.to,
                    MessageBody::External { payload: m.payload },
                )));
            }
        } else {
            self.msg_sn = self.msg_sn.next();
            out.push(Action::Send(Envelope::new(
                MsgId {
                    from: self.id,
                    seq: self.msg_sn,
                },
                m.to,
                MessageBody::Application {
                    payload: m.payload,
                    dirty: self.dirty,
                },
            )));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::DeviceId;

    const SELF: ProcessId = ProcessId(2);
    const ACT: ProcessId = ProcessId(1);
    const PEER: ProcessId = ProcessId(3);

    fn engine(cfg: MdcdConfig) -> ShadowEngine {
        ShadowEngine::new(cfg, SELF, PEER)
    }

    fn app_send(payload: u8, external: bool) -> Event {
        Event::AppSend(OutboundMessage {
            to: if external {
                Endpoint::Device(DeviceId(0))
            } else {
                Endpoint::Process(PEER)
            },
            payload: vec![payload],
            external,
            at_pass: true,
        })
    }

    fn from_peer(seq: u64, dirty: bool) -> Event {
        Event::Deliver(Envelope::new(
            MsgId {
                from: PEER,
                seq: MsgSeqNo(seq),
            },
            SELF,
            MessageBody::Application {
                payload: vec![0],
                dirty,
            },
        ))
    }

    fn passed_at(sn: u64, ndc: u64) -> Event {
        Event::Deliver(Envelope::new(
            MsgId {
                from: ACT,
                seq: MsgSeqNo(CTRL_SEQ_BASE + 1),
            },
            SELF,
            MessageBody::PassedAt {
                msg_sn: MsgSeqNo(sn),
                ndc: CkptSeqNo(ndc),
            },
        ))
    }

    #[test]
    fn outgoing_messages_are_suppressed_and_logged() {
        let mut e = engine(MdcdConfig::modified());
        assert!(e.handle(app_send(1, false)).is_empty());
        assert!(e.handle(app_send(2, true)).is_empty());
        assert_eq!(e.logged(), 2);
    }

    #[test]
    fn dirty_message_triggers_type1_checkpoint_once() {
        let mut e = engine(MdcdConfig::modified());
        let first = e.handle(from_peer(1, true));
        assert!(matches!(
            first[0],
            Action::TakeCheckpoint {
                kind: CheckpointKind::Type1,
                ..
            }
        ));
        assert!(matches!(first[1], Action::DeliverToApp(_)));
        assert!(e.dirty_bit());
        let second = e.handle(from_peer(2, true));
        assert_eq!(second.len(), 1, "already dirty: no second checkpoint");
    }

    #[test]
    fn type1_snapshot_is_clean() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(from_peer(1, true));
        match &actions[0] {
            Action::TakeCheckpoint { engine, .. } => assert!(!engine.dirty),
            other => panic!("expected checkpoint, got {other:?}"),
        }
    }

    #[test]
    fn clean_message_does_not_contaminate() {
        let mut e = engine(MdcdConfig::modified());
        let actions = e.handle(from_peer(1, false));
        assert_eq!(actions.len(), 1);
        assert!(!e.dirty_bit());
    }

    #[test]
    fn passed_at_resets_dirty_updates_vr_and_reclaims_log() {
        let mut e = engine(MdcdConfig::modified());
        for p in 1..=3 {
            e.handle(app_send(p, false));
        }
        e.handle(from_peer(1, true));
        assert!(e.dirty_bit());
        e.handle(passed_at(2, 0));
        assert!(!e.dirty_bit());
        assert_eq!(e.vr_act(), MsgSeqNo(2));
        assert_eq!(e.logged(), 1, "entries <= VR reclaimed");
    }

    #[test]
    fn stale_passed_at_is_dropped_early_one_deferred_or_accepted() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(3)));
        e.handle(from_peer(1, true));
        // Stale (past-epoch) notification: the Fig. 4(b) hazard — dropped.
        e.handle(passed_at(1, 2));
        assert!(e.dirty_bit(), "stale Ndc must not reset the dirty bit");
        // Early (future-epoch) notification while idle: knowledge update.
        e.handle(passed_at(1, 4));
        assert!(!e.dirty_bit());
    }

    #[test]
    fn early_passed_at_during_blocking_is_deferred_past_commit() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(from_peer(1, true));
        e.handle(Event::BlockingStarted);
        // The sender already committed epoch 1; we are still writing ours.
        e.handle(passed_at(1, 1));
        assert!(e.dirty_bit(), "must not adjust the in-flight epoch");
        e.handle(Event::StableCheckpointCommitted(CkptSeqNo(1)));
        e.handle(Event::BlockingEnded);
        assert!(!e.dirty_bit(), "deferred validation applies after commit");
        assert_eq!(e.vr_act(), MsgSeqNo(1));
    }

    #[test]
    fn original_variant_takes_type2_and_ignores_ndc() {
        let mut e = engine(MdcdConfig::original());
        e.handle(from_peer(1, true));
        let actions = e.handle(passed_at(1, 99));
        assert!(matches!(
            actions[0],
            Action::TakeCheckpoint {
                kind: CheckpointKind::Type2,
                ..
            }
        ));
        assert!(!e.dirty_bit());
    }

    #[test]
    fn takeover_resends_only_unvalidated_entries() {
        let mut e = engine(MdcdConfig::modified());
        for p in 1..=4 {
            e.handle(app_send(p, false));
        }
        e.handle(passed_at(2, 0)); // entries 1,2 validated
        let plan = e.take_over();
        let seqs: Vec<u64> = plan.resend.iter().map(|m| m.id.seq.0).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert!(e.is_promoted());
    }

    #[test]
    fn recovery_decision_follows_dirty_bit() {
        let mut e = engine(MdcdConfig::modified());
        assert_eq!(e.recovery_decision(), RecoveryDecision::RollForward);
        e.handle(from_peer(1, true));
        assert_eq!(e.recovery_decision(), RecoveryDecision::RollBack);
    }

    #[test]
    fn rollback_then_takeover_uses_restored_log() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(app_send(1, false));
        // Contamination point: Type-1 checkpoint with 1 logged entry.
        let ckpt = e.handle(from_peer(1, true));
        let snap = match &ckpt[0] {
            Action::TakeCheckpoint { engine, .. } => engine.clone(),
            _ => panic!("expected checkpoint"),
        };
        // More suppressed messages while dirty.
        e.handle(app_send(2, false));
        e.handle(app_send(3, false));
        assert_eq!(e.recovery_decision(), RecoveryDecision::RollBack);
        e.restore(&snap);
        let plan = e.take_over();
        let seqs: Vec<u64> = plan.resend.iter().map(|m| m.id.seq.0).collect();
        assert_eq!(seqs, vec![1], "post-checkpoint sends are not replayed");
    }

    #[test]
    fn promoted_shadow_sends_directly() {
        let mut e = engine(MdcdConfig::modified());
        e.take_over();
        let actions = e.handle(app_send(1, false));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Send(env) => match &env.body {
                MessageBody::Application { dirty, .. } => assert!(!dirty),
                other => panic!("expected application body, got {other:?}"),
            },
            other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn promoted_clean_shadow_skips_at_on_external() {
        let mut e = engine(MdcdConfig::modified());
        e.take_over();
        let actions = e.handle(app_send(1, true));
        assert_eq!(actions.len(), 1, "no AT, no passed_AT while clean");
        assert!(actions[0].is_send());
        assert_eq!(e.at_runs(), 0);
    }

    #[test]
    fn promoted_dirty_shadow_runs_at_and_broadcasts() {
        let mut e = engine(MdcdConfig::modified());
        e.take_over();
        e.handle(from_peer(1, true)); // becomes dirty again
        let actions = e.handle(app_send(1, true));
        assert!(matches!(actions[0], Action::AtPerformed { pass: true }));
        let passed: usize = actions
            .iter()
            .filter(|a| matches!(a, Action::Send(env) if env.body.is_passed_at()))
            .count();
        assert_eq!(passed, 1);
        assert!(!e.dirty_bit());
    }

    #[test]
    fn blocking_holds_app_but_not_passed_at_in_modified() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(Event::BlockingStarted);
        assert!(e.handle(from_peer(1, true)).is_empty());
        e.handle(passed_at(1, 0));
        assert!(!e.dirty_bit(), "passed_AT processed during blocking");
        let released = e.handle(Event::BlockingEnded);
        // The held dirty message now contaminates: Type-1 + delivery.
        assert_eq!(released.len(), 2);
        assert!(released[0].is_checkpoint());
    }

    #[test]
    fn snapshot_roundtrip_preserves_log() {
        let mut e = engine(MdcdConfig::modified());
        e.handle(app_send(1, false));
        e.handle(from_peer(1, true));
        let snap = e.snapshot();
        let mut other = engine(MdcdConfig::modified());
        other.restore(&snap);
        assert_eq!(other.dirty_bit(), e.dirty_bit());
        assert_eq!(other.logged(), e.logged());
        assert_eq!(other.vr_act(), e.vr_act());
    }
}
