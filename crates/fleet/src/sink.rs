//! Device sinks: where the fleet's external (device-bound) messages go.
//!
//! The simulator's device is an in-process log; a fleet multiplexes
//! thousands of tenants' device streams into one shared consumer, so the
//! consumer can push back. Sinks speak the transport's own error type —
//! [`SendError::Backpressure`] — so the fleet's stall/retry path exercises
//! exactly the contract the live reactor imposes on senders.

use std::collections::VecDeque;
use std::net::{IpAddr, Ipv4Addr, SocketAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use synergy_net::{Envelope, SendError};

/// The address a [`BoundedSink`] reports in its backpressure errors: the
/// sink is in-process, so there is no socket behind it.
pub const SINK_ADDR: SocketAddr = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0);

/// A consumer of tenant device streams.
pub trait DeviceSink: Send + Sync {
    /// Accepts one device envelope, or pushes back.
    fn deliver(&self, env: &Envelope) -> Result<(), SendError>;
}

/// Counts deliveries and never pushes back — the sink for throughput
/// drivers, where the device side must not be the bottleneck.
#[derive(Debug, Default)]
pub struct NullSink {
    delivered: AtomicU64,
}

impl NullSink {
    /// Creates a zeroed sink.
    pub fn new() -> NullSink {
        NullSink::default()
    }

    /// Envelopes accepted so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }
}

impl DeviceSink for NullSink {
    fn deliver(&self, _env: &Envelope) -> Result<(), SendError> {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// A fixed-capacity queue that must be drained by a consumer; a full
/// queue answers [`SendError::Backpressure`], making tenants stall and
/// retry exactly as they would against a saturated reactor ring.
#[derive(Debug)]
pub struct BoundedSink {
    capacity: usize,
    queue: Mutex<VecDeque<Envelope>>,
}

impl BoundedSink {
    /// Creates a sink holding at most `capacity` undrained envelopes.
    pub fn new(capacity: usize) -> BoundedSink {
        BoundedSink {
            capacity,
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Takes every queued envelope, freeing the whole capacity.
    pub fn drain(&self) -> Vec<Envelope> {
        self.queue
            .lock()
            .expect("sink poisoned")
            .drain(..)
            .collect()
    }

    /// Envelopes currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().expect("sink poisoned").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl DeviceSink for BoundedSink {
    fn deliver(&self, env: &Envelope) -> Result<(), SendError> {
        let mut queue = self.queue.lock().expect("sink poisoned");
        if queue.len() >= self.capacity {
            return Err(SendError::Backpressure {
                to: env.to,
                addr: SINK_ADDR,
                queued_bytes: queue.len(),
                capacity: self.capacity,
            });
        }
        queue.push_back(env.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synergy_net::{DeviceId, MessageBody, MsgId, MsgSeqNo, ProcessId};

    fn env(seq: u64) -> Envelope {
        Envelope::new(
            MsgId {
                from: ProcessId(1),
                seq: MsgSeqNo(seq),
            },
            DeviceId(0),
            MessageBody::External {
                payload: vec![seq as u8],
            },
        )
    }

    #[test]
    fn bounded_sink_pushes_back_at_capacity_and_recovers_on_drain() {
        let sink = BoundedSink::new(2);
        sink.deliver(&env(0)).unwrap();
        sink.deliver(&env(1)).unwrap();
        match sink.deliver(&env(2)) {
            Err(SendError::Backpressure {
                queued_bytes,
                capacity,
                ..
            }) => {
                assert_eq!(queued_bytes, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        assert_eq!(sink.drain().len(), 2);
        sink.deliver(&env(2)).unwrap();
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn null_sink_only_counts() {
        let sink = NullSink::new();
        for seq in 0..1000 {
            sink.deliver(&env(seq)).unwrap();
        }
        assert_eq!(sink.delivered(), 1000);
    }
}
