//! The fleet driver: attaches `--tenants` independent missions, runs them
//! all to completion over the shared scheduler, and dumps the fleet's
//! metrics registry as JSON.
//!
//! ```text
//! synergy-fleet [--tenants <n>] [--workers <n>] [--slots <n>]
//!               [--seed <u64>] [--duration-secs <f64>] [--quantum <n>]
//!               [--fault-every <n>] [--sw-fault-every <n>]
//!               [--sink null|bounded:<cap>] [--verify <k>]
//!               [--tenant-rows <n>] [--delta-k <k>]
//! ```
//!
//! A fraction of tenants carry scheduled hardware faults (every
//! `--fault-every`-th) and activated design faults (every
//! `--sw-fault-every`-th), so the fleet exercises rollbacks, not just the
//! fault-free path. `--verify <k>` re-runs `k` sampled tenants as
//! standalone simulator missions and diffs device streams and full run
//! metrics byte-for-byte — exit status is nonzero on any divergence.
//! `--delta-k <k>` turns on incremental-checkpoint byte accounting (full
//! image every `k` stable commits) for every tenant; the solo side of
//! `--verify` runs with the same setting, so the metric diff covers the
//! byte counters too.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use synergy::{Scheme, System, SystemConfig};
use synergy_fleet::{
    device_payloads, BoundedSink, DeviceSink, FleetConfig, FleetManager, MissionId, NullSink,
};

struct Args {
    tenants: u64,
    workers: usize,
    slots: Option<usize>,
    seed: u64,
    duration_secs: f64,
    quantum: usize,
    fault_every: u64,
    sw_fault_every: u64,
    sink: SinkChoice,
    verify: u64,
    tenant_rows: usize,
    delta_k: u32,
}

enum SinkChoice {
    Null,
    Bounded(usize),
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        tenants: 10_000,
        workers: FleetConfig::default().workers,
        slots: None,
        seed: 1,
        duration_secs: 60.0,
        quantum: 256,
        fault_every: 7,
        sw_fault_every: 11,
        sink: SinkChoice::Null,
        verify: 0,
        tenant_rows: 20,
        delta_k: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--tenants" => out.tenants = value()?.parse().map_err(|e| format!("{e}"))?,
            "--workers" => out.workers = value()?.parse().map_err(|e| format!("{e}"))?,
            "--slots" => out.slots = Some(value()?.parse().map_err(|e| format!("{e}"))?),
            "--seed" => out.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--duration-secs" => {
                out.duration_secs = value()?.parse().map_err(|e| format!("{e}"))?
            }
            "--quantum" => out.quantum = value()?.parse().map_err(|e| format!("{e}"))?,
            "--fault-every" => out.fault_every = value()?.parse().map_err(|e| format!("{e}"))?,
            "--sw-fault-every" => {
                out.sw_fault_every = value()?.parse().map_err(|e| format!("{e}"))?
            }
            "--sink" => {
                let v = value()?;
                out.sink = match v.as_str() {
                    "null" => SinkChoice::Null,
                    bounded => match bounded.strip_prefix("bounded:") {
                        Some(cap) => SinkChoice::Bounded(cap.parse().map_err(|e| format!("{e}"))?),
                        None => {
                            return Err(format!("--sink must be null or bounded:<cap>, got {v}"))
                        }
                    },
                };
            }
            "--verify" => out.verify = value()?.parse().map_err(|e| format!("{e}"))?,
            "--tenant-rows" => out.tenant_rows = value()?.parse().map_err(|e| format!("{e}"))?,
            "--delta-k" => out.delta_k = value()?.parse().map_err(|e| format!("{e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if out.tenants == 0 {
        return Err("--tenants must be at least 1".to_string());
    }
    Ok(out)
}

/// The mission config of tenant `i` — shared with `--verify`, which
/// rebuilds the identical mission as a standalone (SOLO) simulator run.
fn tenant_config(args: &Args, i: u64, mission: MissionId) -> SystemConfig {
    let mut builder = SystemConfig::builder()
        .scheme(Scheme::Coordinated)
        .mission(mission)
        .seed(args.seed.wrapping_add(i))
        .duration_secs(args.duration_secs)
        .internal_rate_per_min(60.0)
        .external_rate_per_min(6.0)
        .trace(false);
    if args.fault_every > 0 && i.is_multiple_of(args.fault_every) {
        builder = builder.hardware_fault_at_secs(args.duration_secs * 0.5);
    }
    if args.sw_fault_every > 0 && i.is_multiple_of(args.sw_fault_every) {
        builder = builder.software_fault_at_secs(args.duration_secs * 0.33);
    }
    if args.delta_k > 0 {
        builder = builder.checkpoint_delta_k(args.delta_k);
    }
    builder.build()
}

/// Re-runs tenant `i` as a standalone simulator mission and diffs it
/// against the fleet tenant's captured device stream and harvested
/// metrics.
fn verify_tenant(args: &Args, i: u64, report: &synergy_fleet::TenantReport) -> Result<(), String> {
    let solo_cfg = tenant_config(args, i, MissionId::SOLO);
    let mut solo = System::new(solo_cfg);
    solo.run();
    let solo_stream = device_payloads(&solo);
    if report.captured != solo_stream {
        let first_diff = report
            .captured
            .iter()
            .zip(&solo_stream)
            .position(|(a, b)| a != b);
        return Err(format!(
            "tenant {} device stream diverged from solo run: {} vs {} payloads, first diff {:?}",
            report.mission,
            report.captured.len(),
            solo_stream.len(),
            first_diff
        ));
    }
    if &report.metrics != solo.metrics() {
        return Err(format!(
            "tenant {} run metrics diverged from solo run",
            report.mission
        ));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("synergy-fleet: {e}");
            return ExitCode::from(2);
        }
    };

    let bounded = match args.sink {
        SinkChoice::Bounded(cap) => Some(Arc::new(BoundedSink::new(cap))),
        SinkChoice::Null => None,
    };
    let sink: Arc<dyn DeviceSink> = match &bounded {
        Some(b) => Arc::clone(b) as Arc<dyn DeviceSink>,
        None => Arc::new(NullSink::new()),
    };
    let mut fleet_cfg = FleetConfig::default()
        .with_slots(args.slots.unwrap_or(args.tenants as usize))
        .with_workers(args.workers)
        .with_quantum(args.quantum);
    if args.verify > 0 {
        fleet_cfg = fleet_cfg.with_capture();
    }
    let fleet = FleetManager::new(fleet_cfg, sink);

    let attach_started = Instant::now();
    for i in 1..=args.tenants {
        let mission = MissionId(i);
        if let Err(e) = fleet.attach(tenant_config(&args, i, mission)) {
            eprintln!("synergy-fleet: attach {mission}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "fleet: attached {} tenants in {:.2}s ({} workers, quantum {})",
        args.tenants,
        attach_started.elapsed().as_secs_f64(),
        fleet.config().workers,
        fleet.config().quantum_events,
    );

    // A bounded sink needs a live consumer, or every tenant stalls and
    // eventually sheds its stream.
    let stop_drain = AtomicBool::new(false);
    let drained = AtomicU64::new(0);
    let completed = std::thread::scope(|scope| {
        if let Some(b) = &bounded {
            let stop = &stop_drain;
            let drained = &drained;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    drained.fetch_add(b.drain().len() as u64, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(500));
                }
                drained.fetch_add(b.drain().len() as u64, Ordering::Relaxed);
            });
        }
        let run_started = Instant::now();
        let completed = fleet.run_until_idle();
        let wall = run_started.elapsed();
        stop_drain.store(true, Ordering::Relaxed);
        println!(
            "fleet: completed {completed}/{} missions in {:.2}s ({:.0} missions/s)",
            args.tenants,
            wall.as_secs_f64(),
            completed as f64 / wall.as_secs_f64().max(1e-9),
        );
        completed
    });

    let stats = Arc::clone(fleet.stats());
    let (sw, hw) = stats.rollbacks();
    println!(
        "fleet: latency p50 {:.1} ms, p99 {:.1} ms; rollbacks sw={sw} hw={hw}; stalls={} drops={}",
        stats.latency_percentile_ms(50.0).unwrap_or(0.0),
        stats.latency_percentile_ms(99.0).unwrap_or(0.0),
        stats.stalls(),
        stats.drops(),
    );
    if bounded.is_some() {
        println!(
            "fleet: drained {} device messages",
            drained.load(Ordering::Relaxed)
        );
    }
    if args.delta_k > 0 {
        let (bytes_full, bytes_delta) = stats.stable_bytes();
        println!(
            "fleet: stable bytes full-image={bytes_full} delta-chain={bytes_delta} (k={}, {:.1}x smaller)",
            args.delta_k,
            bytes_full as f64 / (bytes_delta.max(1)) as f64,
        );
    }

    // Verify a sample of tenants against standalone simulator runs, then
    // detach everything (sampled tenants via their detach reports).
    let mut verify_failures = 0u64;
    let step = (args.tenants / args.verify.max(1)).max(1);
    for i in 1..=args.tenants {
        let mission = MissionId(i);
        match fleet.detach(mission) {
            Ok(report) => {
                if args.verify > 0 && i % step == 0 && (i / step) <= args.verify {
                    match verify_tenant(&args, i, &report) {
                        Ok(()) => println!("fleet: verify {mission}: byte-identical to solo run"),
                        Err(e) => {
                            verify_failures += 1;
                            eprintln!("fleet: verify FAILED: {e}");
                        }
                    }
                }
            }
            Err(e) => eprintln!("synergy-fleet: detach {mission}: {e}"),
        }
    }

    println!("{}", stats.to_json(args.tenant_rows));
    if verify_failures > 0 || completed < args.tenants {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
