//! One resident tenant: a complete guarded-system mission plus the
//! bookkeeping the fleet scheduler needs around it.

use std::time::Instant;

use synergy::{RunMetrics, System, SystemConfig};
use synergy_net::retry::Backoff;
use synergy_net::{MessageBody, MissionId};

use crate::error::FleetError;
use crate::lifecycle::{transition, TenantState};
use crate::sink::DeviceSink;
use crate::stats::{FleetStats, TenantStats};

/// What one scheduler visit to a tenant accomplished.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Visit {
    /// Events fired and/or device messages moved.
    Progress,
    /// Stalled on backpressure with the retry deadline still in the
    /// future; nothing to do yet.
    Waiting,
    /// The mission reached its end of simulated time on this visit.
    CompletedNow,
    /// Not in a runnable state.
    Idle,
}

/// Everything harvested from a tenant when it completes or detaches.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant's mission id.
    pub mission: MissionId,
    /// Full protocol metrics of the underlying mission (a snapshot taken
    /// mid-flight if the tenant detached before completing).
    pub metrics: RunMetrics,
    /// Whether the paper's correctness verdicts held.
    pub verdicts_hold: bool,
    /// External payload stream, in device order — recorded only when the
    /// fleet runs with device capture on.
    pub captured: Vec<Vec<u8>>,
    /// The tenant's scheduler-side counters.
    pub stats: TenantStats,
}

/// A resident tenant. Owned by exactly one shard slot; the manager takes
/// it out of the slot to operate on it, so `&mut` access never crosses
/// threads unsynchronized.
pub(crate) struct Tenant {
    pub(crate) mission: MissionId,
    pub(crate) state: TenantState,
    /// The config the mission was built from; restarts rebuild from it.
    template: SystemConfig,
    /// The live engine; dropped at completion to keep a 10k-tenant fleet's
    /// footprint bounded by *running* missions only.
    system: Option<Box<System>>,
    /// Index of the next device-log entry not yet offered to the sink.
    device_cursor: usize,
    capture: bool,
    captured: Vec<Vec<u8>>,
    backoff: Backoff,
    stalled_until: Option<Instant>,
    attached_at: Instant,
    report: Option<TenantReport>,
    pub(crate) stats: TenantStats,
    /// Scheduler pass of the last visit (0 = never visited).
    pub(crate) last_pass: u64,
    /// Largest observed gap between consecutive visits, in passes.
    pub(crate) max_pass_gap: u64,
}

impl Tenant {
    /// Builds a tenant from its mission config and activates it.
    pub(crate) fn new(cfg: SystemConfig, capture: bool, backoff: Backoff) -> Tenant {
        let mission = cfg.mission;
        let mut tenant = Tenant {
            mission,
            state: TenantState::Attaching,
            system: Some(Box::new(System::new(cfg.clone()))),
            template: cfg,
            device_cursor: 0,
            capture,
            captured: Vec::new(),
            backoff,
            stalled_until: None,
            attached_at: Instant::now(),
            report: None,
            stats: TenantStats::default(),
            last_pass: 0,
            max_pass_gap: 0,
        };
        transition(mission, &mut tenant.state, TenantState::Active)
            .expect("Attaching -> Active is always legal");
        tenant
    }

    /// One scheduler visit: step up to `quantum` simulator events, then
    /// move freshly produced device messages into the sink.
    pub(crate) fn visit(
        &mut self,
        quantum: usize,
        sink: &dyn DeviceSink,
        fleet: &FleetStats,
    ) -> Visit {
        match self.state {
            TenantState::Stalled => {
                if let Some(deadline) = self.stalled_until {
                    if Instant::now() < deadline {
                        return Visit::Waiting;
                    }
                }
                self.drain(sink, fleet);
                if self.state == TenantState::Stalled {
                    Visit::Waiting
                } else {
                    // Drained (or dropped) our way back to Active; the next
                    // pass resumes stepping.
                    Visit::Progress
                }
            }
            TenantState::Active => {
                let fired = {
                    let system = self.system.as_mut().expect("active tenant has a system");
                    let fired = system.step_events(quantum);
                    self.stats.events += fired as u64;
                    self.stats.quanta += 1;
                    fired
                };
                self.drain(sink, fleet);
                if self.state == TenantState::Active
                    && self.system.as_ref().is_some_and(|s| s.finished())
                    && self.fully_drained()
                {
                    self.complete(fleet);
                    return Visit::CompletedNow;
                }
                if fired == 0 && self.state == TenantState::Active {
                    // Finished but still backpressured mid-drain, or an
                    // empty schedule; either way nothing fired.
                    Visit::Waiting
                } else {
                    Visit::Progress
                }
            }
            _ => Visit::Idle,
        }
    }

    /// Offers every not-yet-delivered device-log entry to the sink.
    /// Backpressure stalls the tenant with exponential backoff; an
    /// exhausted retry budget drops the entry (with accounting) so one
    /// slow consumer can never wedge the tenant forever.
    fn drain(&mut self, sink: &dyn DeviceSink, fleet: &FleetStats) {
        loop {
            let Some(system) = self.system.as_ref() else {
                return;
            };
            let log = system.device_log();
            let Some((_, env)) = log.get(self.device_cursor) else {
                break;
            };
            match sink.deliver(env) {
                Ok(()) => {
                    let captured = self.capture.then(|| env.body.clone());
                    self.stats.device_msgs += 1;
                    if let Some(MessageBody::External { payload }) = captured {
                        self.captured.push(payload);
                    }
                    self.device_cursor += 1;
                    self.unstall();
                }
                Err(_backpressure) => {
                    self.stats.stalls += 1;
                    fleet.note_stall();
                    match self.backoff.next_delay() {
                        Some(delay) => {
                            if self.state == TenantState::Active {
                                transition(self.mission, &mut self.state, TenantState::Stalled)
                                    .expect("Active -> Stalled is always legal");
                            }
                            self.stalled_until = Some(Instant::now() + delay);
                            return;
                        }
                        None => {
                            // Retry budget exhausted: shed this message.
                            // The capture still records it — the capture
                            // is the stream the tenant *produced*, which
                            // is what determinism checks diff.
                            let captured = self.capture.then(|| env.body.clone());
                            self.stats.drops += 1;
                            fleet.note_drops(1);
                            if let Some(MessageBody::External { payload }) = captured {
                                self.captured.push(payload);
                            }
                            self.device_cursor += 1;
                            self.unstall();
                        }
                    }
                }
            }
        }
        self.unstall();
    }

    fn unstall(&mut self) {
        self.backoff.reset();
        self.stalled_until = None;
        if self.state == TenantState::Stalled {
            transition(self.mission, &mut self.state, TenantState::Active)
                .expect("Stalled -> Active is always legal");
        }
    }

    fn fully_drained(&self) -> bool {
        self.system
            .as_ref()
            .is_none_or(|s| self.device_cursor >= s.device_log().len())
    }

    /// Finishes the mission: harvests its report, records it in the fleet
    /// registry and drops the engine.
    fn complete(&mut self, fleet: &FleetStats) {
        transition(self.mission, &mut self.state, TenantState::Completed)
            .expect("Active -> Completed is always legal");
        let system = self.system.take().expect("completing tenant has a system");
        self.stats.latency_ms = self.attached_at.elapsed().as_secs_f64() * 1000.0;
        self.stats.verdicts_hold = system.verdicts().all_hold();
        self.stats.software_rollbacks = system.metrics().software_recoveries;
        self.stats.hardware_rollbacks = system.metrics().hardware_recoveries;
        self.stats.stable_bytes_full = system.metrics().stable_bytes_full;
        self.stats.stable_bytes_delta = system.metrics().stable_bytes_delta;
        self.stats.max_pass_gap = self.max_pass_gap;
        self.report = Some(TenantReport {
            mission: self.mission,
            metrics: system.metrics().clone(),
            verdicts_hold: self.stats.verdicts_hold,
            captured: std::mem::take(&mut self.captured),
            stats: self.stats.clone(),
        });
        fleet.record_tenant(self.mission, self.stats.clone());
    }

    /// Tears the mission down and rebuilds it from the config template.
    pub(crate) fn restart(&mut self) -> Result<(), FleetError> {
        transition(self.mission, &mut self.state, TenantState::Restarting)?;
        self.system = Some(Box::new(System::new(self.template.clone())));
        self.device_cursor = 0;
        self.captured.clear();
        self.backoff.reset();
        self.stalled_until = None;
        self.report = None;
        self.stats.restarts += 1;
        transition(self.mission, &mut self.state, TenantState::Active)
            .expect("Restarting -> Active is always legal");
        Ok(())
    }

    /// The tenant's report, snapshotting a still-running mission if it has
    /// not completed. Used by detach.
    pub(crate) fn harvest_report(&mut self) -> TenantReport {
        if let Some(report) = self.report.take() {
            return report;
        }
        self.stats.max_pass_gap = self.max_pass_gap;
        if let Some(system) = self.system.as_ref() {
            self.stats.stable_bytes_full = system.metrics().stable_bytes_full;
            self.stats.stable_bytes_delta = system.metrics().stable_bytes_delta;
        }
        match self.system.as_ref() {
            Some(system) => TenantReport {
                mission: self.mission,
                metrics: system.metrics().clone(),
                verdicts_hold: system.verdicts().all_hold(),
                captured: std::mem::take(&mut self.captured),
                stats: self.stats.clone(),
            },
            None => TenantReport {
                mission: self.mission,
                metrics: RunMetrics::default(),
                verdicts_hold: self.stats.verdicts_hold,
                captured: std::mem::take(&mut self.captured),
                stats: self.stats.clone(),
            },
        }
    }
}
