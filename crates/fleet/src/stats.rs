//! The fleet-wide metrics registry.
//!
//! One [`FleetStats`] is shared (via `Arc`) between the manager, its
//! worker threads and the driver. Fleet-level counters are atomics so the
//! hot path never takes a lock; the per-tenant table is a mutex-guarded
//! map written only at tenant completion/detach (cold events). The whole
//! registry dumps as hand-rolled JSON — same house rule as the bench
//! record: no JSON library, so no dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use synergy_net::MissionId;

/// Counters harvested from one tenant, keyed by mission id in
/// [`FleetStats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Simulator events fired for this tenant.
    pub events: u64,
    /// Scheduler quanta granted.
    pub quanta: u64,
    /// Device messages delivered to the sink.
    pub device_msgs: u64,
    /// MDCD (software) recoveries completed.
    pub software_rollbacks: u64,
    /// Global hardware rollbacks completed.
    pub hardware_rollbacks: u64,
    /// Times the device sink pushed back on this tenant.
    pub stalls: u64,
    /// Device messages dropped after the retry budget ran out.
    pub drops: u64,
    /// Times this tenant was torn down and rebuilt.
    pub restarts: u64,
    /// Stable-storage bytes a full-image-per-commit scheme would write for
    /// this tenant (zero unless the mission enables delta accounting).
    pub stable_bytes_full: u64,
    /// Stable-storage bytes the incremental chain format writes for the
    /// same commits (zero unless delta accounting is enabled).
    pub stable_bytes_delta: u64,
    /// Wall-clock milliseconds from attach to mission completion
    /// (0 until the mission completes).
    pub latency_ms: f64,
    /// Whether the paper's correctness verdicts held at completion.
    pub verdicts_hold: bool,
    /// Largest gap, in scheduler passes, between two consecutive visits —
    /// the per-tenant isolation measure (1 = visited every pass).
    pub max_pass_gap: u64,
}

/// Fleet-wide counters plus the per-tenant table.
#[derive(Debug, Default)]
pub struct FleetStats {
    attached: AtomicU64,
    detached: AtomicU64,
    restarted: AtomicU64,
    admission_rejections: AtomicU64,
    completed: AtomicU64,
    stalls: AtomicU64,
    drops: AtomicU64,
    events: AtomicU64,
    device_msgs: AtomicU64,
    software_rollbacks: AtomicU64,
    hardware_rollbacks: AtomicU64,
    stable_bytes_full: AtomicU64,
    stable_bytes_delta: AtomicU64,
    latencies_ms: Mutex<Vec<f64>>,
    tenants: Mutex<BTreeMap<u64, TenantStats>>,
}

impl FleetStats {
    /// Creates a zeroed registry.
    pub fn new() -> FleetStats {
        FleetStats::default()
    }

    pub(crate) fn note_attached(&self) {
        self.attached.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_detached(&self) {
        self.detached.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_restarted(&self) {
        self.restarted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_admission_rejected(&self) {
        self.admission_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_drops(&self, n: u64) {
        self.drops.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds a tenant's harvested counters into the registry. Called at
    /// mission completion and at detach; the per-tenant row is replaced,
    /// fleet totals only ever grow by the delta the caller accounts.
    pub(crate) fn record_tenant(&self, mission: MissionId, stats: TenantStats) {
        let mut tenants = self.tenants.lock().expect("fleet stats poisoned");
        let prev = tenants.insert(mission.0, stats.clone()).unwrap_or_default();
        drop(tenants);
        let delta = |new: u64, old: u64| new.saturating_sub(old);
        self.events
            .fetch_add(delta(stats.events, prev.events), Ordering::Relaxed);
        self.device_msgs.fetch_add(
            delta(stats.device_msgs, prev.device_msgs),
            Ordering::Relaxed,
        );
        self.software_rollbacks.fetch_add(
            delta(stats.software_rollbacks, prev.software_rollbacks),
            Ordering::Relaxed,
        );
        self.hardware_rollbacks.fetch_add(
            delta(stats.hardware_rollbacks, prev.hardware_rollbacks),
            Ordering::Relaxed,
        );
        self.stable_bytes_full.fetch_add(
            delta(stats.stable_bytes_full, prev.stable_bytes_full),
            Ordering::Relaxed,
        );
        self.stable_bytes_delta.fetch_add(
            delta(stats.stable_bytes_delta, prev.stable_bytes_delta),
            Ordering::Relaxed,
        );
        if stats.latency_ms > 0.0 && prev.latency_ms == 0.0 {
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.latencies_ms
                .lock()
                .expect("fleet stats poisoned")
                .push(stats.latency_ms);
        }
    }

    /// Tenants attached over the fleet's lifetime.
    pub fn attached(&self) -> u64 {
        self.attached.load(Ordering::Relaxed)
    }

    /// Tenants detached.
    pub fn detached(&self) -> u64 {
        self.detached.load(Ordering::Relaxed)
    }

    /// Tenant restarts performed.
    pub fn restarted(&self) -> u64 {
        self.restarted.load(Ordering::Relaxed)
    }

    /// Attaches rejected at the slot budget.
    pub fn admission_rejections(&self) -> u64 {
        self.admission_rejections.load(Ordering::Relaxed)
    }

    /// Missions run to completion.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Backpressure stalls across all tenants.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Device messages dropped after exhausted retry budgets.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Simulator events fired across all harvested tenants.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Device messages delivered across all harvested tenants.
    pub fn device_msgs(&self) -> u64 {
        self.device_msgs.load(Ordering::Relaxed)
    }

    /// Software and hardware rollback totals across all harvested tenants.
    pub fn rollbacks(&self) -> (u64, u64) {
        (
            self.software_rollbacks.load(Ordering::Relaxed),
            self.hardware_rollbacks.load(Ordering::Relaxed),
        )
    }

    /// Stable-write byte totals across all harvested tenants, as
    /// `(full_image_bytes, delta_chain_bytes)`. Both zero unless missions
    /// run with delta accounting enabled.
    pub fn stable_bytes(&self) -> (u64, u64) {
        (
            self.stable_bytes_full.load(Ordering::Relaxed),
            self.stable_bytes_delta.load(Ordering::Relaxed),
        )
    }

    /// The harvested counters of one tenant, if any were recorded.
    pub fn tenant(&self, mission: MissionId) -> Option<TenantStats> {
        self.tenants
            .lock()
            .expect("fleet stats poisoned")
            .get(&mission.0)
            .cloned()
    }

    /// The given percentile (0–100) of mission attach→completion latency,
    /// in milliseconds; `None` until a mission completes.
    pub fn latency_percentile_ms(&self, p: f64) -> Option<f64> {
        let mut lat = self
            .latencies_ms
            .lock()
            .expect("fleet stats poisoned")
            .clone();
        if lat.is_empty() {
            return None;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).expect("latency is finite"));
        let idx = ((p / 100.0) * (lat.len() - 1) as f64).round() as usize;
        Some(lat[idx.min(lat.len() - 1)])
    }

    /// Renders the registry as JSON. At most `tenant_limit` per-tenant
    /// rows are included (lowest mission ids first); the aggregate
    /// counters always cover every tenant.
    pub fn to_json(&self, tenant_limit: usize) -> String {
        let (sw, hw) = self.rollbacks();
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"attached\": {},", self.attached());
        let _ = writeln!(out, "  \"detached\": {},", self.detached());
        let _ = writeln!(out, "  \"restarted\": {},", self.restarted());
        let _ = writeln!(
            out,
            "  \"admission_rejections\": {},",
            self.admission_rejections()
        );
        let _ = writeln!(out, "  \"completed\": {},", self.completed());
        let _ = writeln!(out, "  \"stalls\": {},", self.stalls());
        let _ = writeln!(out, "  \"drops\": {},", self.drops());
        let _ = writeln!(out, "  \"events\": {},", self.events());
        let _ = writeln!(out, "  \"device_msgs\": {},", self.device_msgs());
        let _ = writeln!(out, "  \"software_rollbacks\": {sw},");
        let _ = writeln!(out, "  \"hardware_rollbacks\": {hw},");
        let (bytes_full, bytes_delta) = self.stable_bytes();
        let _ = writeln!(out, "  \"stable_bytes_full\": {bytes_full},");
        let _ = writeln!(out, "  \"stable_bytes_delta\": {bytes_delta},");
        let _ = writeln!(
            out,
            "  \"latency_ms\": {{ \"p50\": {:.3}, \"p99\": {:.3} }},",
            self.latency_percentile_ms(50.0).unwrap_or(0.0),
            self.latency_percentile_ms(99.0).unwrap_or(0.0)
        );
        let tenants = self.tenants.lock().expect("fleet stats poisoned");
        let shown = tenants.len().min(tenant_limit);
        let _ = writeln!(out, "  \"tenants_recorded\": {},", tenants.len());
        let _ = writeln!(out, "  \"tenants_shown\": {shown},");
        out.push_str("  \"tenants\": [\n");
        for (i, (mission, t)) in tenants.iter().take(tenant_limit).enumerate() {
            let comma = if i + 1 < shown { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{ \"mission\": {mission}, \"events\": {}, \"quanta\": {}, \
                 \"device_msgs\": {}, \"software_rollbacks\": {}, \
                 \"hardware_rollbacks\": {}, \"stalls\": {}, \"drops\": {}, \
                 \"restarts\": {}, \"stable_bytes_full\": {}, \
                 \"stable_bytes_delta\": {}, \"latency_ms\": {:.3}, \
                 \"verdicts_hold\": {}, \"max_pass_gap\": {} }}{comma}",
                t.events,
                t.quanta,
                t.device_msgs,
                t.software_rollbacks,
                t.hardware_rollbacks,
                t.stalls,
                t.drops,
                t.restarts,
                t.stable_bytes_full,
                t.stable_bytes_delta,
                t.latency_ms,
                t.verdicts_hold,
                t.max_pass_gap
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn completed_tenant(events: u64, latency_ms: f64) -> TenantStats {
        TenantStats {
            events,
            latency_ms,
            verdicts_hold: true,
            ..TenantStats::default()
        }
    }

    #[test]
    fn record_tenant_replaces_rows_and_grows_totals_by_delta() {
        let stats = FleetStats::new();
        let m = MissionId(7);
        stats.record_tenant(m, completed_tenant(100, 0.0));
        stats.record_tenant(m, completed_tenant(250, 12.5));
        assert_eq!(stats.events(), 250, "totals grow by delta, not by sum");
        assert_eq!(stats.completed(), 1, "completion counted once");
        assert_eq!(stats.tenant(m).unwrap().events, 250);
        assert_eq!(stats.latency_percentile_ms(50.0), Some(12.5));
    }

    #[test]
    fn stable_byte_totals_fold_by_delta_and_render() {
        let stats = FleetStats::new();
        let m = MissionId(3);
        let mut t = completed_tenant(10, 0.0);
        t.stable_bytes_full = 1000;
        t.stable_bytes_delta = 100;
        stats.record_tenant(m, t.clone());
        t.stable_bytes_full = 4000;
        t.stable_bytes_delta = 250;
        t.latency_ms = 5.0;
        stats.record_tenant(m, t);
        assert_eq!(stats.stable_bytes(), (4000, 250), "fold by delta, not sum");
        let json = stats.to_json(5);
        assert!(json.contains("\"stable_bytes_full\": 4000"));
        assert!(json.contains("\"stable_bytes_delta\": 250"));
    }

    #[test]
    fn latency_percentiles_interpolate_over_completions() {
        let stats = FleetStats::new();
        for i in 1..=100u64 {
            stats.record_tenant(MissionId(i), completed_tenant(1, i as f64));
        }
        // Nearest-rank over [1, 100]: index round(p/100 * 99).
        assert_eq!(stats.latency_percentile_ms(50.0), Some(51.0));
        assert_eq!(stats.latency_percentile_ms(99.0), Some(99.0));
        assert_eq!(stats.completed(), 100);
    }

    #[test]
    fn json_dump_caps_rows_but_not_aggregates() {
        let stats = FleetStats::new();
        for i in 1..=5u64 {
            stats.note_attached();
            stats.record_tenant(MissionId(i), completed_tenant(10, 1.0));
        }
        let json = stats.to_json(2);
        assert!(json.contains("\"attached\": 5"));
        assert!(json.contains("\"events\": 50"));
        assert!(json.contains("\"tenants_recorded\": 5"));
        assert!(json.contains("\"tenants_shown\": 2"));
        assert!(json.contains("\"mission\": 1"));
        assert!(!json.contains("\"mission\": 3"));
    }
}
