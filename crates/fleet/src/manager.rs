//! The fleet manager: a sharded slot map of tenants, an admission budget,
//! and a cooperative scheduler that multiplexes every resident mission
//! over a fixed pool of workers.
//!
//! The slot map follows the take/put discipline of production tenant
//! managers: to operate on a tenant (step it, restart it, detach it) the
//! caller *takes* the tenant out of its slot — leaving an `InFlight`
//! marker — works on it without holding the shard lock, and puts it back.
//! Concurrent operations on the same tenant spin on the marker; operations
//! on different tenants never contend beyond the brief map access.
//!
//! Isolation is by construction: a scheduler pass grants each runnable
//! tenant at most [`FleetConfig::quantum_events`] simulator events, so a
//! tenant deep in crash recovery (or one stalled on a slow device
//! consumer) consumes its own quantum and nothing else — the pass reaches
//! every other tenant regardless. The per-tenant `max_pass_gap` counter
//! measures exactly this and is asserted by the isolation regression test.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use synergy::SystemConfig;
use synergy_net::retry::Backoff;
use synergy_net::MissionId;

use crate::error::FleetError;
use crate::lifecycle::{transition, TenantState};
use crate::sink::DeviceSink;
use crate::stats::FleetStats;
use crate::tenant::{Tenant, TenantReport, Visit};

/// Fleet-wide tuning knobs.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Admission budget: at most this many tenants resident at once.
    pub slots: usize,
    /// Worker threads (and slot-map shards) the scheduler runs on.
    pub workers: usize,
    /// Simulator events granted per tenant per scheduler pass — the
    /// isolation quantum.
    pub quantum_events: usize,
    /// Record every tenant's external payload stream in its report
    /// (memory-heavy; meant for determinism tests and audits).
    pub capture_devices: bool,
    /// First backpressure retry delay.
    pub retry_start: Duration,
    /// Backpressure retry delay cap.
    pub retry_cap: Duration,
    /// Backpressure retries before a device message is dropped; `None`
    /// retries forever (requires a consumer that eventually drains).
    pub retry_budget: Option<u32>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            slots: 1024,
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            quantum_events: 256,
            capture_devices: false,
            retry_start: Duration::from_micros(100),
            retry_cap: Duration::from_millis(5),
            retry_budget: Some(8),
        }
    }
}

impl FleetConfig {
    /// Sets the admission budget.
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Sets the worker/shard count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the per-pass event quantum.
    pub fn with_quantum(mut self, quantum_events: usize) -> Self {
        self.quantum_events = quantum_events.max(1);
        self
    }

    /// Enables device-stream capture.
    pub fn with_capture(mut self) -> Self {
        self.capture_devices = true;
        self
    }
}

/// A tenant slot: present, or temporarily taken by an operation.
enum Slot {
    Present(Box<Tenant>),
    InFlight,
}

#[derive(Default)]
struct Shard {
    /// Keyed by mission id; `BTreeMap` so every sweep visits tenants in
    /// the same order.
    slots: BTreeMap<u64, Slot>,
    /// This shard's scheduler pass counter.
    pass: u64,
}

/// What one scheduler pass over a shard (or the whole fleet) found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassOutcome {
    /// Runnable tenants visited.
    pub visited: usize,
    /// Visits that fired events or moved device messages.
    pub progressed: usize,
    /// Visits that found the tenant stalled with its deadline pending.
    pub waiting: usize,
    /// Missions that reached completion during the pass.
    pub completed_now: usize,
    /// Resident tenants in a non-runnable state (completed, mid-op).
    pub idle: usize,
}

/// The tenant manager. All methods take `&self`; the manager is meant to
/// be shared (`Arc` or scoped borrows) between a driver thread issuing
/// attach/detach/restart and the scheduler workers.
pub struct FleetManager {
    cfg: FleetConfig,
    shards: Vec<Mutex<Shard>>,
    occupied: AtomicUsize,
    shutting_down: AtomicBool,
    stats: Arc<FleetStats>,
    sink: Arc<dyn DeviceSink>,
}

impl FleetManager {
    /// Creates a fleet delivering device streams into `sink`.
    pub fn new(cfg: FleetConfig, sink: Arc<dyn DeviceSink>) -> FleetManager {
        let shard_count = cfg.workers.max(1);
        FleetManager {
            cfg,
            shards: (0..shard_count)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            occupied: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            stats: Arc::new(FleetStats::new()),
            sink,
        }
    }

    /// The shared metrics registry.
    pub fn stats(&self) -> &Arc<FleetStats> {
        &self.stats
    }

    /// The fleet's tuning knobs.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Tenants currently occupying slots.
    pub fn resident(&self) -> usize {
        self.occupied.load(Ordering::SeqCst)
    }

    fn shard_of(&self, mission: MissionId) -> &Mutex<Shard> {
        &self.shards[(mission.0 % self.shards.len() as u64) as usize]
    }

    /// Admits a new tenant built from `cfg` (whose `mission` field is the
    /// tenant's identity). Fails fast with
    /// [`FleetError::AdmissionRejected`] at the slot budget — the caller
    /// decides whether to retry after detaching something.
    pub fn attach(&self, cfg: SystemConfig) -> Result<MissionId, FleetError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(FleetError::ShuttingDown);
        }
        let mission = cfg.mission;
        let limit = self.cfg.slots;
        if self
            .occupied
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < limit).then_some(n + 1)
            })
            .is_err()
        {
            self.stats.note_admission_rejected();
            return Err(FleetError::AdmissionRejected { limit });
        }
        let backoff = Backoff::exponential(
            self.cfg.retry_start,
            self.cfg.retry_cap,
            self.cfg.retry_budget,
        )
        .with_jitter(mission.0);
        let mut shard = self.shard_of(mission).lock().expect("shard poisoned");
        if shard.slots.contains_key(&mission.0) {
            drop(shard);
            self.occupied.fetch_sub(1, Ordering::SeqCst);
            return Err(FleetError::AlreadyAttached(mission));
        }
        let tenant = Tenant::new(cfg, self.cfg.capture_devices, backoff);
        shard
            .slots
            .insert(mission.0, Slot::Present(Box::new(tenant)));
        drop(shard);
        self.stats.note_attached();
        Ok(mission)
    }

    /// Takes `mission`'s tenant out of its slot, runs `f`, puts it back.
    /// Spins (yielding) while another operation holds the tenant.
    fn with_tenant<R>(
        &self,
        mission: MissionId,
        f: impl FnOnce(&mut Tenant) -> R,
    ) -> Result<R, FleetError> {
        let shard = self.shard_of(mission);
        loop {
            let mut guard = shard.lock().expect("shard poisoned");
            let Some(slot) = guard.slots.get_mut(&mission.0) else {
                return Err(FleetError::UnknownMission(mission));
            };
            match std::mem::replace(slot, Slot::InFlight) {
                Slot::Present(mut tenant) => {
                    drop(guard);
                    let result = f(&mut tenant);
                    let mut guard = shard.lock().expect("shard poisoned");
                    if let Some(slot) = guard.slots.get_mut(&mission.0) {
                        *slot = Slot::Present(tenant);
                    }
                    return Ok(result);
                }
                Slot::InFlight => {
                    drop(guard);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// The tenant's current lifecycle state.
    pub fn state(&self, mission: MissionId) -> Result<TenantState, FleetError> {
        self.with_tenant(mission, |t| t.state)
    }

    /// Tears the tenant's mission down and rebuilds it from its config
    /// template; legal from `Active`, `Stalled` and `Completed`.
    pub fn restart(&self, mission: MissionId) -> Result<(), FleetError> {
        let restarted = self.with_tenant(mission, Tenant::restart)?;
        if restarted.is_ok() {
            self.stats.note_restarted();
        }
        restarted
    }

    /// Removes the tenant, releasing its slot, and returns its report
    /// (a mid-flight snapshot if the mission had not completed).
    pub fn detach(&self, mission: MissionId) -> Result<TenantReport, FleetError> {
        let shard = self.shard_of(mission);
        loop {
            let mut guard = shard.lock().expect("shard poisoned");
            let Some(slot) = guard.slots.get_mut(&mission.0) else {
                return Err(FleetError::UnknownMission(mission));
            };
            match std::mem::replace(slot, Slot::InFlight) {
                Slot::Present(mut tenant) => {
                    drop(guard);
                    if let Err(e) = transition(mission, &mut tenant.state, TenantState::Detaching) {
                        let mut guard = shard.lock().expect("shard poisoned");
                        if let Some(slot) = guard.slots.get_mut(&mission.0) {
                            *slot = Slot::Present(tenant);
                        }
                        return Err(e);
                    }
                    let report = tenant.harvest_report();
                    self.stats.record_tenant(mission, report.stats.clone());
                    transition(mission, &mut tenant.state, TenantState::Detached)
                        .expect("Detaching -> Detached is always legal");
                    let mut guard = shard.lock().expect("shard poisoned");
                    guard.slots.remove(&mission.0);
                    drop(guard);
                    self.occupied.fetch_sub(1, Ordering::SeqCst);
                    self.stats.note_detached();
                    return Ok(report);
                }
                Slot::InFlight => {
                    drop(guard);
                    std::thread::yield_now();
                }
            }
        }
    }

    /// One scheduler pass over one shard.
    fn step_shard(&self, index: usize, out: &mut PassOutcome) {
        let shard = &self.shards[index];
        let (pass, ids): (u64, Vec<u64>) = {
            let mut guard = shard.lock().expect("shard poisoned");
            guard.pass += 1;
            (guard.pass, guard.slots.keys().copied().collect())
        };
        for id in ids {
            let mut guard = shard.lock().expect("shard poisoned");
            let Some(slot) = guard.slots.get_mut(&id) else {
                continue;
            };
            let mut tenant = match std::mem::replace(slot, Slot::InFlight) {
                Slot::Present(tenant) => tenant,
                Slot::InFlight => continue,
            };
            drop(guard);
            if tenant.state.is_runnable() {
                out.visited += 1;
                if tenant.last_pass != 0 {
                    let gap = pass.saturating_sub(tenant.last_pass);
                    tenant.max_pass_gap = tenant.max_pass_gap.max(gap);
                }
                tenant.last_pass = pass;
                match tenant.visit(self.cfg.quantum_events, &*self.sink, &self.stats) {
                    Visit::Progress => out.progressed += 1,
                    Visit::Waiting => out.waiting += 1,
                    Visit::CompletedNow => {
                        out.progressed += 1;
                        out.completed_now += 1;
                    }
                    Visit::Idle => {}
                }
            } else {
                out.idle += 1;
            }
            let mut guard = shard.lock().expect("shard poisoned");
            if let Some(slot) = guard.slots.get_mut(&id) {
                *slot = Slot::Present(tenant);
            }
        }
    }

    /// One scheduler pass over the whole fleet, on the calling thread.
    /// Deterministic tests drive the fleet exclusively through this.
    pub fn step_pass(&self) -> PassOutcome {
        let mut out = PassOutcome::default();
        for index in 0..self.shards.len() {
            self.step_shard(index, &mut out);
        }
        out
    }

    /// Runs scheduler workers (one per shard) until every resident tenant
    /// has completed its mission. Returns the number of missions that
    /// completed during this call. Tenants stay resident (state
    /// `Completed`) until detached.
    pub fn run_until_idle(&self) -> u64 {
        let completed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for index in 0..self.shards.len() {
                let completed = &completed;
                scope.spawn(move || loop {
                    let mut out = PassOutcome::default();
                    self.step_shard(index, &mut out);
                    completed.fetch_add(out.completed_now, Ordering::Relaxed);
                    if out.visited == 0 {
                        break;
                    }
                    if out.progressed == 0 && out.waiting > 0 {
                        // Every runnable tenant is waiting out a backoff
                        // deadline; don't spin the lock.
                        std::thread::sleep(Duration::from_micros(200));
                    }
                });
            }
        });
        completed.load(Ordering::Relaxed) as u64
    }

    /// Rejects further attaches; resident tenants are unaffected.
    pub fn shut_down(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
    }

    /// Mission ids of every resident tenant, ascending.
    pub fn missions(&self) -> Vec<MissionId> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("shard poisoned");
            ids.extend(guard.slots.keys().map(|&id| MissionId(id)));
        }
        ids.sort_unstable();
        ids
    }
}
