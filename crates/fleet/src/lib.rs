//! Fleet multi-tenancy for the synergy-ft runtime: multiplex thousands of
//! independent guarded-system missions over one shared runtime.
//!
//! Each paper system is one *mission* — three guarded processes, MDCD +
//! adapted-TB coordination, a device. A fleet runs many of them at once
//! as *tenants* of a shared scheduler: every tenant owns a complete
//! sans-io [`System`](synergy::System) advanced cooperatively in bounded
//! event quanta on a fixed worker pool, and every tenant's traffic is
//! tagged with its [`MissionId`] end to end (envelope wire format,
//! process hosts, device streams).
//!
//! The design rests on three invariants:
//!
//! 1. **Identity is a tag, not an input.** A mission id never feeds a
//!    random stream, so a tenant's protocol behaviour is byte-identical
//!    to a standalone simulator run of the same seed — the determinism
//!    test diffs the two device streams and full run metrics.
//! 2. **Isolation is a quantum.** A scheduler pass grants each runnable
//!    tenant at most [`FleetConfig::quantum_events`] simulator events;
//!    a tenant mid-crash-recovery (or stalled on device backpressure)
//!    spends its own budget and nobody else's.
//! 3. **Admission is a budget.** The slot map admits at most
//!    [`FleetConfig::slots`] resident tenants and rejects the rest with
//!    [`FleetError::AdmissionRejected`], so a fleet's footprint is
//!    bounded by configuration, not by workload.
//!
//! # Quick start
//!
//! ```rust
//! use std::sync::Arc;
//! use synergy::{Scheme, SystemConfig};
//! use synergy_fleet::{FleetConfig, FleetManager, MissionId, NullSink};
//!
//! let fleet = FleetManager::new(
//!     FleetConfig::default().with_slots(16).with_workers(2),
//!     Arc::new(NullSink::new()),
//! );
//! for i in 1..=16u64 {
//!     let cfg = SystemConfig::builder()
//!         .scheme(Scheme::Coordinated)
//!         .mission(MissionId(i))
//!         .seed(i)
//!         .duration_secs(5.0)
//!         .trace(false)
//!         .build();
//!     fleet.attach(cfg).unwrap();
//! }
//! let completed = fleet.run_until_idle();
//! assert_eq!(completed, 16);
//! println!("{}", fleet.stats().to_json(16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod lifecycle;
pub mod manager;
pub mod sink;
pub mod stats;
mod tenant;

pub use error::FleetError;
pub use lifecycle::TenantState;
pub use manager::{FleetConfig, FleetManager, PassOutcome};
pub use sink::{BoundedSink, DeviceSink, NullSink, SINK_ADDR};
pub use stats::{FleetStats, TenantStats};
pub use synergy_net::MissionId;
pub use tenant::TenantReport;

use synergy::System;
use synergy_net::MessageBody;

/// The external payload stream a standalone simulator run delivered to
/// its device — the reference side of the fleet determinism checks.
pub fn device_payloads(system: &System) -> Vec<Vec<u8>> {
    system
        .device_log()
        .iter()
        .filter_map(|(_, env)| match &env.body {
            MessageBody::External { payload } => Some(payload.clone()),
            _ => None,
        })
        .collect()
}
