//! Typed errors of the fleet tenant manager.

use std::fmt;

use synergy_net::MissionId;

use crate::lifecycle::TenantState;

/// Everything that can go wrong while operating the fleet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The fleet is at its slot budget: attaching one more tenant would
    /// exceed the configured admission limit.
    AdmissionRejected {
        /// The configured slot budget the attach ran into.
        limit: usize,
    },
    /// No resident tenant carries this mission id.
    UnknownMission(MissionId),
    /// A tenant with this mission id is already resident.
    AlreadyAttached(MissionId),
    /// The requested lifecycle step is not a legal transition.
    IllegalTransition {
        /// The tenant whose transition was rejected.
        mission: MissionId,
        /// Its current state.
        from: TenantState,
        /// The state the caller asked for.
        to: TenantState,
    },
    /// The manager is shutting down and admits no new work.
    ShuttingDown,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::AdmissionRejected { limit } => {
                write!(f, "admission rejected: fleet is at its {limit}-slot budget")
            }
            FleetError::UnknownMission(m) => write!(f, "no tenant attached as {m}"),
            FleetError::AlreadyAttached(m) => write!(f, "tenant {m} is already attached"),
            FleetError::IllegalTransition { mission, from, to } => {
                write!(f, "tenant {mission}: illegal transition {from} -> {to}")
            }
            FleetError::ShuttingDown => write!(f, "fleet is shutting down"),
        }
    }
}

impl std::error::Error for FleetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let e = FleetError::AdmissionRejected { limit: 8 };
        assert!(e.to_string().contains("8-slot"));
        let e = FleetError::IllegalTransition {
            mission: MissionId(3),
            from: TenantState::Detached,
            to: TenantState::Active,
        };
        assert!(e.to_string().contains("M3"));
        assert!(e.to_string().contains("detached -> active"));
    }
}
