//! The tenant lifecycle state machine.
//!
//! Modeled on the slot-based tenant managers of multi-tenant storage
//! services (one slot per tenant, every state change a checked
//! transition): a tenant is **attached** into a slot, runs to
//! **completion** (or is restarted along the way), and is **detached**
//! when its slot is released. Illegal edges are rejected with
//! [`FleetError::IllegalTransition`] instead of silently corrupting the
//! slot map.
//!
//! ```text
//!            attach                    mission over
//! Attaching ────────► Active ───────────────────────► Completed
//!                      │  ▲ ▲                            │
//!           backpressure│  │ │ drained / dropped          │
//!                      ▼  │ │                            │
//!                    Stalled                             │
//!                      │  │                              │
//!              restart │  │ restart      restart         │
//!                      ▼  ▼                              │
//!                    Restarting ◄────────────────────────┤
//!                      │                                 │
//!                      ▼          detach                 ▼
//!                    Active ... ─────────► Detaching ► Detached
//! ```

use std::fmt;

use synergy_net::MissionId;

use crate::error::FleetError;

/// Where a tenant is in its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TenantState {
    /// Slot claimed, engines being built; not yet scheduled.
    Attaching,
    /// Runnable: the scheduler grants this tenant event quanta.
    Active,
    /// Device sink pushed back; the tenant retries with backoff and is
    /// skipped by the scheduler until its retry deadline.
    Stalled,
    /// Being torn down and rebuilt from its config template.
    Restarting,
    /// The mission ran to its end of simulated time; report harvested,
    /// engines dropped. The slot stays occupied until detach.
    Completed,
    /// Being removed from the slot map.
    Detaching,
    /// Gone; the slot has been released. Terminal.
    Detached,
}

impl TenantState {
    /// Whether `self -> to` is a legal lifecycle edge.
    pub fn may_transition(self, to: TenantState) -> bool {
        use TenantState::*;
        matches!(
            (self, to),
            (Attaching, Active)
                | (Active, Stalled | Restarting | Detaching | Completed)
                | (Stalled, Active | Restarting | Detaching)
                | (Restarting, Active)
                | (Completed, Restarting | Detaching)
                | (Detaching, Detached)
        )
    }

    /// Whether the scheduler still visits this tenant each pass — to step
    /// it (`Active`) or to retry its stalled device delivery (`Stalled`).
    pub fn is_runnable(self) -> bool {
        matches!(self, TenantState::Active | TenantState::Stalled)
    }

    /// Whether the tenant still occupies a slot.
    pub fn is_resident(self) -> bool {
        !matches!(self, TenantState::Detached)
    }
}

impl fmt::Display for TenantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TenantState::Attaching => "attaching",
            TenantState::Active => "active",
            TenantState::Stalled => "stalled",
            TenantState::Restarting => "restarting",
            TenantState::Completed => "completed",
            TenantState::Detaching => "detaching",
            TenantState::Detached => "detached",
        })
    }
}

/// Applies `to` to `state` if legal, or reports the rejected edge.
pub fn transition(
    mission: MissionId,
    state: &mut TenantState,
    to: TenantState,
) -> Result<(), FleetError> {
    if state.may_transition(to) {
        *state = to;
        Ok(())
    } else {
        Err(FleetError::IllegalTransition {
            mission,
            from: *state,
            to,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::TenantState::*;
    use super::*;

    #[test]
    fn the_happy_path_is_legal() {
        let mission = MissionId(1);
        let mut s = Attaching;
        for next in [Active, Completed, Detaching, Detached] {
            transition(mission, &mut s, next).unwrap();
        }
        assert_eq!(s, Detached);
        assert!(!s.is_resident());
    }

    #[test]
    fn stall_and_restart_loops_are_legal() {
        let mission = MissionId(2);
        let mut s = Active;
        transition(mission, &mut s, Stalled).unwrap();
        transition(mission, &mut s, Active).unwrap();
        transition(mission, &mut s, Restarting).unwrap();
        transition(mission, &mut s, Active).unwrap();
        // A completed tenant can be restarted for another round...
        transition(mission, &mut s, Completed).unwrap();
        transition(mission, &mut s, Restarting).unwrap();
        transition(mission, &mut s, Active).unwrap();
        // ...and a stalled one restarted out of its stall.
        transition(mission, &mut s, Stalled).unwrap();
        transition(mission, &mut s, Restarting).unwrap();
    }

    #[test]
    fn illegal_edges_are_rejected_without_moving() {
        let mission = MissionId(3);
        for (from, to) in [
            (Detached, Active),
            (Completed, Active),
            (Attaching, Completed),
            (Detaching, Active),
            (Stalled, Completed),
        ] {
            let mut s = from;
            let err = transition(mission, &mut s, to).unwrap_err();
            assert_eq!(
                err,
                FleetError::IllegalTransition { mission, from, to },
                "{from} -> {to}"
            );
            assert_eq!(s, from, "state must not move on a rejected edge");
        }
    }

    #[test]
    fn runnability_follows_state() {
        assert!(Active.is_runnable());
        assert!(Stalled.is_runnable());
        for s in [Attaching, Restarting, Completed, Detaching, Detached] {
            assert!(!s.is_runnable(), "{s}");
        }
    }
}
